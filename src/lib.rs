//! # up2p — facade crate
//!
//! Re-exports the whole U-P2P reproduction behind one dependency:
//!
//! * [`core`] — the framework (servent, communities, forms, stylesheets)
//! * [`xml`] — XML parser / DOM / XPath substrate
//! * [`schema`] — XML Schema subset
//! * [`xslt`] — XSLT engine
//! * [`store`] — repository, metadata index, query languages
//! * [`net`] — simulated P2P substrates (Napster / Gnutella / FastTrack)
//! * [`sim`] — corpora, workloads and the E1–E7 experiment scenarios
//!
//! See `examples/quickstart.rs` for the five-minute tour and DESIGN.md
//! for the paper-to-module map.

pub use up2p_core as core;
pub use up2p_net as net;
pub use up2p_schema as schema;
pub use up2p_sim as sim;
pub use up2p_store as store;
pub use up2p_xml as xml;
pub use up2p_xslt as xslt;

// The most-used types, flattened for convenience.
pub use up2p_core::{
    extract_metadata, Attachment, Community, CoreError, FormKind, FormModel, PayloadPlane,
    Servent, SharedObject, ROOT_COMMUNITY_ID, ROOT_SCHEMA_XSD,
};
pub use up2p_net::{build_network, PeerId, PeerNetwork, ProtocolKind};
pub use up2p_schema::{FieldKind, SchemaBuilder};
pub use up2p_store::Query;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compose() {
        let mut b = crate::SchemaBuilder::new("x");
        b.field(crate::FieldKind::text("name").searchable());
        let c = crate::Community::from_builder("x", "d", "k", "c", "", &b).unwrap();
        assert!(!c.id.is_empty());
    }
}
