//! # up2p — facade crate
//!
//! Re-exports the whole U-P2P reproduction behind one dependency:
//!
//! * [`core`] — the framework (servent, communities, forms, stylesheets)
//! * [`xml`] — XML parser / DOM / XPath substrate
//! * [`schema`] — XML Schema subset
//! * [`xslt`] — XSLT engine
//! * [`store`] — repository, metadata index, query languages
//! * [`net`] — simulated P2P substrates (Napster / Gnutella / FastTrack)
//! * [`sim`] — corpora, workloads and the E1–E8 experiment scenarios
//!
//! See `examples/quickstart.rs` for the five-minute tour and DESIGN.md
//! for the paper-to-module map.
//!
//! The flattened re-exports compose into the full publish → discover →
//! join → search → download lifecycle on any substrate:
//!
//! ```
//! use up2p::{
//!     build_network, Community, FieldKind, PayloadPlane, PeerId, ProtocolKind, Query,
//!     SchemaBuilder, Servent,
//! };
//!
//! let mut fields = SchemaBuilder::new("recipe");
//! fields.field(FieldKind::text("title").searchable());
//! let community = Community::from_builder("recipes", "d", "cooking", "c", "", &fields)?;
//!
//! let mut net = build_network(ProtocolKind::Gnutella, 16, 42);
//! let mut plane = PayloadPlane::new();
//! let mut alice = Servent::new(PeerId(3));
//! alice.publish_community(&mut *net, &mut plane, &community)?;
//! let obj = alice.create_object(&community.id, &[("title", "Mapo Tofu")])?;
//! alice.publish(&mut *net, &mut plane, &obj)?;
//!
//! let mut bob = Servent::new(PeerId(11));
//! let found = bob.discover_communities(&mut *net, &Query::any_keyword("cooking"))?;
//! let id = bob.join_from_hit(&mut *net, &mut plane, &found.hits[0])?;
//! let hits = bob.search(&mut *net, &id, &Query::keyword("title", "mapo"))?;
//! let downloaded = bob.download(&mut *net, &mut plane, &hits.hits[0])?;
//! assert_eq!(downloaded.key, obj.key);
//! # Ok::<(), up2p::CoreError>(())
//! ```

pub use up2p_core as core;
pub use up2p_net as net;
pub use up2p_schema as schema;
pub use up2p_sim as sim;
pub use up2p_store as store;
pub use up2p_xml as xml;
pub use up2p_xslt as xslt;

// The most-used types, flattened for convenience.
pub use up2p_core::{
    extract_metadata, Attachment, Community, CoreError, FormKind, FormModel, PayloadPlane,
    Servent, SharedObject, ROOT_COMMUNITY_ID, ROOT_SCHEMA_XSD,
};
pub use up2p_net::{build_network, PeerId, PeerNetwork, ProtocolKind};
pub use up2p_schema::{FieldKind, SchemaBuilder};
pub use up2p_store::Query;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compose() {
        let mut b = crate::SchemaBuilder::new("x");
        b.field(crate::FieldKind::text("name").searchable());
        let c = crate::Community::from_builder("x", "d", "k", "c", "", &b).unwrap();
        assert!(!c.id.is_empty());
    }
}
