//! Facade-level coverage for the interned metadata index: bulk loading
//! through `Repository::insert_batch`, the direct-lookup fast path for
//! exact field references, targeted removal, and index/scan agreement on
//! a corpus bigger than the unit-test samples.

use up2p::store::{MetadataIndex, Query, Repository, ResourceId, ValuePattern};
use up2p::xml::Document;
use std::collections::BTreeSet;

fn synthetic_xml(i: usize) -> String {
    let genres = ["rock", "jazz", "folk", "ambient"];
    format!(
        "<track><title>song number{} take{}</title><artist>artist{:02}</artist><genre>{}</genre></track>",
        i % 50,
        i,
        i % 20,
        genres[i % genres.len()]
    )
}

fn paths() -> Vec<String> {
    vec!["track/title".into(), "track/artist".into(), "track/genre".into()]
}

#[test]
fn batch_load_then_search_remove_reload() {
    let docs: Vec<Document> =
        (0..300).map(|i| Document::parse(&synthetic_xml(i)).unwrap()).collect();
    let mut repo = Repository::new();
    let ids = repo.insert_batch("tracks", docs, &paths());
    assert_eq!(ids.len(), 300);
    assert_eq!(repo.len(), 300, "synthetic corpus has no duplicate objects");

    // exact reference goes through the direct path lookup
    let jazz = repo.search(Some("tracks"), &Query::eq("track/genre", "jazz"));
    assert_eq!(jazz.len(), 75);
    // bare leaf reference resolves to the same field
    let jazz_leaf = repo.search(Some("tracks"), &Query::eq("genre", "jazz"));
    assert_eq!(jazz.len(), jazz_leaf.len());

    // boolean + keyword + wildcard through the facade
    let hits = repo
        .search_cmip(Some("tracks"), "(&(genre=rock)(title~=number8))")
        .unwrap();
    assert!(!hits.is_empty());
    for o in &hits {
        assert_eq!(o.field("genre"), Some("rock"));
    }
    let wild = repo.search_cmip(None, "(artist=artist0*)").unwrap();
    assert_eq!(wild.len(), 150, "artist00..artist09 is half the corpus");

    // targeted removal leaves the rest of the index intact
    let before = repo.index_stats();
    for id in ids.iter().take(100) {
        assert!(repo.remove(id).is_some());
    }
    let after = repo.index_stats();
    assert_eq!(after.objects, 200);
    assert!(after.token_postings < before.token_postings);
    for id in ids.iter().take(100) {
        assert!(repo.get(id).is_none());
        assert!(repo.remove(id).is_none(), "double remove is a no-op");
    }
    // remaining objects still searchable
    let jazz_after = repo.search(Some("tracks"), &Query::eq("genre", "jazz"));
    assert_eq!(jazz_after.len(), 50);
}

#[test]
fn index_agrees_with_linear_scan_at_scale() {
    let mut ix = MetadataIndex::new();
    let mut reference = Vec::new();
    for i in 0..500usize {
        let id = ResourceId::for_bytes(&(i as u64).to_le_bytes());
        let fields = vec![
            ("track/title".to_string(), format!("song number{} take{}", i % 50, i)),
            ("track/artist".to_string(), format!("artist{:02}", i % 20)),
            ("track/genre".to_string(), ["rock", "jazz", "folk"][i % 3].to_string()),
        ];
        ix.insert(id.clone(), fields.clone());
        reference.push((id, fields));
    }
    // remove a third to exercise doc-id recycling in query results
    for (id, _) in reference.iter().step_by(3) {
        ix.remove(id);
    }
    let live: Vec<_> = reference
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 != 0)
        .map(|(_, r)| r.clone())
        .collect();
    let queries = vec![
        Query::eq("track/genre", "jazz"),
        Query::eq("genre", "rock"),
        Query::keyword("title", "number7"),
        Query::any_keyword("artist05"),
        Query::and([Query::eq("genre", "folk"), Query::keyword("title", "number9")]),
        Query::or([Query::eq("genre", "jazz"), Query::eq("genre", "folk")]),
        Query::Not(Box::new(Query::eq("genre", "rock"))),
        Query::Match {
            field: "artist".to_string(),
            pattern: ValuePattern::from_wildcard("artist1*"),
        },
        Query::All,
    ];
    for q in queries {
        let via_index = ix.execute(&q);
        let via_scan: BTreeSet<ResourceId> = live
            .iter()
            .filter(|(_, fields)| q.matches_fields(fields))
            .map(|(id, _)| id.clone())
            .collect();
        assert_eq!(via_index, via_scan, "disagreement on {q}");
    }
}
