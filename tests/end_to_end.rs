//! Cross-crate integration tests: the complete U-P2P lifecycle
//! (bootstrap → publish community → discover → join → create → publish →
//! search → download → view) on every substrate, plus persistence and
//! query-surface equivalence.

use up2p::sim::corpus::{pattern_community, pattern_values, GOF_PATTERNS};
use up2p::{
    build_network, Community, FieldKind, PayloadPlane, PeerId, ProtocolKind, Query,
    SchemaBuilder, Servent, ROOT_COMMUNITY_ID,
};

fn all_protocols() -> [ProtocolKind; 3] {
    [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack]
}

#[test]
fn full_lifecycle_on_every_substrate() {
    for kind in all_protocols() {
        let mut net = build_network(kind, 48, 9);
        let mut plane = PayloadPlane::new();
        let community = pattern_community();

        // publisher shares the community and one pattern
        let mut publisher = Servent::new(PeerId(3));
        publisher.publish_community(&mut *net, &mut plane, &community).unwrap();
        let observer = &GOF_PATTERNS[18];
        let obj = publisher
            .create_object(&community.id, &pattern_values(observer))
            .unwrap();
        publisher.publish(&mut *net, &mut plane, &obj).unwrap();

        // seeker: discovery → join → search → download → view
        let mut seeker = Servent::new(PeerId(40));
        let found = seeker
            .discover_communities(&mut *net, &Query::any_keyword("patterns"))
            .unwrap();
        assert!(!found.hits.is_empty(), "{kind}: discovery");
        let id = seeker.join_from_hit(&mut *net, &mut plane, &found.hits[0]).unwrap();
        assert_eq!(id, community.id, "{kind}: identity is content-derived");

        let hits = seeker
            .search(&mut *net, &id, &Query::keyword("name", "observer"))
            .unwrap();
        assert!(!hits.hits.is_empty(), "{kind}: search");
        let downloaded = seeker.download(&mut *net, &mut plane, &hits.hits[0]).unwrap();
        assert_eq!(downloaded.key, obj.key, "{kind}: same object");

        let html = seeker.view_html(&downloaded).unwrap();
        assert!(html.contains("Observer"), "{kind}: view renders");
        assert!(
            html.contains("notified and updated automatically"),
            "{kind}: intent visible"
        );
    }
}

#[test]
fn downloaded_community_schema_validates_new_objects() {
    let mut net = build_network(ProtocolKind::Napster, 8, 1);
    let mut plane = PayloadPlane::new();
    let community = pattern_community();
    let mut publisher = Servent::new(PeerId(0));
    publisher.publish_community(&mut *net, &mut plane, &community).unwrap();

    let mut joiner = Servent::new(PeerId(1));
    let found = joiner.discover_communities(&mut *net, &Query::any_keyword("gof")).unwrap();
    let id = joiner.join_from_hit(&mut *net, &mut plane, &found.hits[0]).unwrap();

    // the joiner can now create valid objects and is rejected for bad ones
    let ok = joiner.create_object(&id, &pattern_values(&GOF_PATTERNS[0]));
    assert!(ok.is_ok());
    let bad = joiner.create_object(
        &id,
        &[("name", "X"), ("category", "no-such-category"), ("intent", "i"),
          ("applicability", "a"), ("participants", "p")],
    );
    assert!(bad.is_err(), "enumeration facet must travel with the schema");
}

#[test]
fn repository_persistence_round_trip() {
    let community = pattern_community();
    let mut net = build_network(ProtocolKind::Napster, 4, 2);
    let mut plane = PayloadPlane::new();
    let mut servent = Servent::new(PeerId(0));
    servent.join(community.clone());
    for p in &GOF_PATTERNS[..5] {
        let obj = servent.create_object(&community.id, &pattern_values(p)).unwrap();
        servent.publish(&mut *net, &mut plane, &obj).unwrap();
    }

    let dir = std::env::temp_dir().join(format!("up2p-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    servent.repository().save_dir(&dir).unwrap();
    let loaded = up2p::store::Repository::load_dir(&dir).unwrap();
    assert_eq!(loaded.len(), 5);
    // ids and search results survive the round trip
    let before: Vec<_> = servent
        .repository()
        .search(Some(&community.id), &Query::any_keyword("factory"))
        .iter()
        .map(|o| o.id.clone())
        .collect();
    let after: Vec<_> = loaded
        .search(Some(&community.id), &Query::any_keyword("factory"))
        .iter()
        .map(|o| o.id.clone())
        .collect();
    assert_eq!(before, after);
    assert!(!after.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn three_query_surfaces_agree() {
    // programmatic Query, CMIP filter text and XPath must select the same
    // objects from the same corpus
    let community = pattern_community();
    let mut repo = up2p::store::Repository::new();
    let form = up2p::FormModel::derive(&community, up2p::FormKind::Create);
    let paths = community.indexed_paths();
    for p in &GOF_PATTERNS {
        let doc = form.fill("pattern", &pattern_values(p)).unwrap();
        repo.insert_doc(&community.id, doc, &paths);
    }

    let via_query: Vec<_> = repo
        .search(None, &Query::eq("category", "creational"))
        .iter()
        .map(|o| o.id.clone())
        .collect();
    let via_cmip: Vec<_> = repo
        .search_cmip(None, "(category=creational)")
        .unwrap()
        .iter()
        .map(|o| o.id.clone())
        .collect();
    let via_xpath: Vec<_> = repo
        .xpath_search(None, "/pattern[category='creational']")
        .unwrap()
        .iter()
        .map(|o| o.id.clone())
        .collect();
    assert_eq!(via_query.len(), 5, "five creational GoF patterns");
    assert_eq!(via_query, via_cmip);
    assert_eq!(via_query, via_xpath);
}

#[test]
fn root_community_cannot_be_left_and_is_always_searchable() {
    let mut net = build_network(ProtocolKind::Gnutella, 16, 5);
    let mut plane = PayloadPlane::new();
    let mut s = Servent::new(PeerId(2));
    assert!(!s.leave(ROOT_COMMUNITY_ID));
    // searching an empty root community is fine (no communities yet)
    let out = s.discover_communities(&mut *net, &Query::any_keyword("anything")).unwrap();
    assert!(out.hits.is_empty());
    // after someone publishes, the same query finds it
    let mut b = SchemaBuilder::new("thing");
    b.field(FieldKind::text("name").searchable());
    let community =
        Community::from_builder("anything-goes", "anything", "anything", "misc", "", &b)
            .unwrap();
    let mut founder = Servent::new(PeerId(7));
    founder.publish_community(&mut *net, &mut plane, &community).unwrap();
    let out = s.discover_communities(&mut *net, &Query::any_keyword("anything")).unwrap();
    assert!(!out.hits.is_empty());
}

#[test]
fn communities_with_same_definition_converge_across_peers() {
    // two peers independently construct the same community: identical id,
    // so their objects land in the same community
    let mut net = build_network(ProtocolKind::Napster, 8, 3);
    let mut plane = PayloadPlane::new();
    let c1 = pattern_community();
    let c2 = pattern_community();
    assert_eq!(c1.id, c2.id);

    let mut a = Servent::new(PeerId(0));
    a.join(c1.clone());
    let obj = a.create_object(&c1.id, &pattern_values(&GOF_PATTERNS[4])).unwrap();
    a.publish(&mut *net, &mut plane, &obj).unwrap();

    let mut b = Servent::new(PeerId(1));
    b.join(c2);
    let out = b.search(&mut *net, &c1.id, &Query::keyword("name", "singleton")).unwrap();
    assert_eq!(out.hits.len(), 1);
}

#[test]
fn generated_forms_round_trip_into_valid_objects_for_all_corpora() {
    use up2p::sim::corpus;
    for community in [corpus::pattern_community(), corpus::mp3_community(), corpus::molecule_community()]
    {
        let create = up2p::FormModel::derive(&community, up2p::FormKind::Create);
        let search = up2p::FormModel::derive(&community, up2p::FormKind::Search);
        assert!(!create.fields.is_empty());
        assert!(!search.fields.is_empty());
        assert!(search.fields.len() <= create.fields.len());
        // HTML renders for both
        let html = up2p::core::stylesheets::render_form(&create.to_document(), None).unwrap();
        assert!(html.contains("up2p-create"));
        let html = up2p::core::stylesheets::render_form(&search.to_document(), None).unwrap();
        assert!(html.contains("up2p-search"));
    }
}
