//! Servent state persistence and stylesheet propagation: a servent saved
//! to disk comes back with its communities (schemas, custom stylesheets)
//! and repository intact; custom stylesheets travel to joining peers as
//! attachments.

use up2p::sim::corpus::{pattern_community, pattern_values, GOF_PATTERNS};
use up2p::{build_network, PayloadPlane, PeerId, ProtocolKind, Query, Servent};

const CUSTOM_VIEW: &str = r#"<xsl:stylesheet version="1.0"
    xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:output method="html"/>
  <xsl:template match="/"><h1 class="custom"><xsl:value-of select="//name"/></h1></xsl:template>
</xsl:stylesheet>"#;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("up2p-{name}-{}", std::process::id()))
}

#[test]
fn servent_state_round_trips() {
    let community = pattern_community().with_display_style(CUSTOM_VIEW);
    let mut net = build_network(ProtocolKind::Napster, 4, 1);
    let mut plane = PayloadPlane::new();
    let mut servent = Servent::new(PeerId(0));
    servent.join(community.clone());
    for p in &GOF_PATTERNS[..3] {
        let obj = servent.create_object(&community.id, &pattern_values(p)).unwrap();
        servent.publish(&mut *net, &mut plane, &obj).unwrap();
    }

    let dir = tmp("servent-state");
    let _ = std::fs::remove_dir_all(&dir);
    servent.save_state(&dir).unwrap();

    let restored = Servent::load_state(PeerId(0), &dir).unwrap();
    // same communities (root + patterns), same custom stylesheet
    let c = restored.community(&community.id).expect("community restored");
    assert_eq!(c.name, community.name);
    assert_eq!(c.display_style.as_deref(), Some(CUSTOM_VIEW));
    assert_eq!(c.schema_xsd, community.schema_xsd);
    // repository contents survive
    assert_eq!(restored.local_objects(&community.id).len(), 3);
    let hits = restored
        .repository()
        .search(Some(&community.id), &Query::any_keyword("factory"));
    assert!(!hits.is_empty());
    // and the restored servent can create new valid objects right away
    assert!(restored.create_object(&community.id, &pattern_values(&GOF_PATTERNS[5])).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn custom_stylesheets_propagate_to_joining_peers() {
    let community = pattern_community().with_display_style(CUSTOM_VIEW);
    let mut net = build_network(ProtocolKind::Napster, 8, 2);
    let mut plane = PayloadPlane::new();

    let mut founder = Servent::new(PeerId(1));
    founder.publish_community(&mut *net, &mut plane, &community).unwrap();
    let obj = founder
        .create_object(&community.id, &pattern_values(&GOF_PATTERNS[18]))
        .unwrap();
    founder.publish(&mut *net, &mut plane, &obj).unwrap();

    let mut joiner = Servent::new(PeerId(5));
    let found = joiner.discover_communities(&mut *net, &Query::any_keyword("gof")).unwrap();
    let id = joiner.join_from_hit(&mut *net, &mut plane, &found.hits[0]).unwrap();
    assert_eq!(id, community.id, "styled community keeps one identity everywhere");

    // the joiner renders objects with the founder's custom stylesheet
    let hits = joiner.search(&mut *net, &id, &Query::keyword("name", "observer")).unwrap();
    let downloaded = joiner.download(&mut *net, &mut plane, &hits.hits[0]).unwrap();
    let html = joiner.view_html(&downloaded).unwrap();
    assert_eq!(html, r#"<h1 class="custom">Observer</h1>"#);
}

#[test]
fn load_state_with_missing_dir_fails_cleanly() {
    let err = Servent::load_state(PeerId(0), &tmp("no-such-dir")).unwrap_err();
    assert!(matches!(err, up2p::CoreError::Store(_)));
}

#[test]
fn saved_state_loads_through_manifest_fast_path_without_retokenizing() {
    use up2p::store::{token_passes, Repository};
    let community = pattern_community();
    let mut servent = Servent::new(PeerId(0));
    servent.join(community.clone());
    let mut net = build_network(ProtocolKind::Napster, 2, 1);
    let mut plane = PayloadPlane::new();
    for p in &GOF_PATTERNS[..6] {
        let obj = servent.create_object(&community.id, &pattern_values(p)).unwrap();
        servent.publish(&mut *net, &mut plane, &obj).unwrap();
    }
    let dir = tmp("fast-path-state");
    let _ = std::fs::remove_dir_all(&dir);
    servent.save_state(&dir).unwrap();

    // save_state writes a durable snapshot: the repository directory is
    // manifest-committed, and loading it runs zero tokenization passes
    let repo_dir = dir.join("repository");
    let passes_before = token_passes();
    let (loaded, report) = Repository::load_dir_report(&repo_dir).unwrap();
    assert_eq!(token_passes() - passes_before, 0, "recovery must not re-tokenize");
    assert!(report.from_manifest, "manifest fast path must be taken");
    assert_eq!(report.objects, 6);
    let recovery = report.recovery.expect("fast path reports recovery detail");
    assert_eq!(recovery.segment_objects, 6);
    assert_eq!(recovery.torn_bytes, 0);

    // the recovered index answers queries identically to the original
    for q in [
        Query::any_keyword("factory"),
        Query::keyword("name", "observer"),
        Query::eq("category", "creational"),
    ] {
        let before: Vec<_> =
            servent.repository().search(None, &q).iter().map(|o| o.id.clone()).collect();
        let after: Vec<_> = loaded.search(None, &q).iter().map(|o| o.id.clone()).collect();
        assert_eq!(before, after, "on {q}");
    }

    // regression: re-saving over unchanged state and re-loading still
    // takes the fast path (no index rebuild from XML), just a newer
    // generation
    servent.save_state(&dir).unwrap();
    let (_, report2) = Repository::load_dir_report(&repo_dir).unwrap();
    assert!(report2.from_manifest);
    assert!(report2.recovery.expect("detail").generation > recovery.generation);

    // and the full servent restore path uses the same loader
    let restored = Servent::load_state(PeerId(0), &dir).unwrap();
    assert_eq!(restored.local_objects(&community.id).len(), 6);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn legacy_xml_directories_still_load_via_fallback() {
    use up2p::store::{Repository, StoredObject};
    let community = pattern_community();
    let mut servent = Servent::new(PeerId(0));
    servent.join(community.clone());
    let obj = servent.create_object(&community.id, &pattern_values(&GOF_PATTERNS[0])).unwrap();
    let mut net = build_network(ProtocolKind::Napster, 2, 1);
    let mut plane = PayloadPlane::new();
    servent.publish(&mut *net, &mut plane, &obj).unwrap();

    // write the pre-durable layout (one XML wrapper per object) directly
    let dir = tmp("legacy-xml");
    let _ = std::fs::remove_dir_all(&dir);
    servent.repository().save_dir(&dir).unwrap();
    let (loaded, report) = Repository::load_dir_report(&dir).unwrap();
    assert!(!report.from_manifest, "no manifest → legacy scan");
    assert!(report.recovery.is_none());
    let objects: Vec<StoredObject> = loaded.iter().cloned().collect();
    assert_eq!(objects.len(), 1);
    assert_eq!(objects[0].id.to_string(), obj.key);
    std::fs::remove_dir_all(&dir).unwrap();
}
