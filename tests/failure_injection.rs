//! Failure injection across crates: dead peers, orphaned super-peer
//! leaves, payload tampering, malformed inputs and TTL exhaustion.

use up2p::sim::corpus::{pattern_community, pattern_values, GOF_PATTERNS};
use up2p::{
    build_network, CoreError, PayloadPlane, PeerId, ProtocolKind, Query, Servent,
};
use up2p::net::{
    churn, ConstantLatency, FloodingConfig, FloodingNetwork, PeerNetwork, Topology,
};

fn seeded_world(
    kind: ProtocolKind,
) -> (Box<dyn PeerNetwork + Send>, PayloadPlane, Servent, Servent, String) {
    let mut net = build_network(kind, 24, 13);
    let mut plane = PayloadPlane::new();
    let community = pattern_community();
    let mut publisher = Servent::new(PeerId(2));
    publisher.join(community.clone());
    let obj = publisher
        .create_object(&community.id, &pattern_values(&GOF_PATTERNS[18]))
        .unwrap();
    publisher.publish(&mut *net, &mut plane, &obj).unwrap();
    let mut seeker = Servent::new(PeerId(20));
    seeker.join(community.clone());
    let id = community.id.clone();
    (net, plane, publisher, seeker, id)
}

#[test]
fn provider_death_between_search_and_download() {
    for kind in [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack] {
        let (mut net, mut plane, _publisher, mut seeker, id) = seeded_world(kind);
        let out = seeker.search(&mut *net, &id, &Query::keyword("name", "observer")).unwrap();
        assert!(!out.hits.is_empty(), "{kind}");
        net.set_alive(PeerId(2), false);
        let err = seeker.download(&mut *net, &mut plane, &out.hits[0]).unwrap_err();
        assert!(matches!(err, CoreError::Unavailable(_)), "{kind}");
        // provider returns; download succeeds again
        net.set_alive(PeerId(2), true);
        assert!(seeker.download(&mut *net, &mut plane, &out.hits[0]).is_ok(), "{kind}");
    }
}

#[test]
fn total_churn_makes_objects_invisible_then_revival_restores_them() {
    let (mut net, _plane, _publisher, mut seeker, id) =
        seeded_world(ProtocolKind::Gnutella);
    let mut rng = up2p::sim::rng_for(1, "failure");
    churn::apply_snapshot(&mut *net, 0.0, &[PeerId(20)], &mut rng);
    let out = seeker.search(&mut *net, &id, &Query::keyword("name", "observer")).unwrap();
    assert!(out.hits.is_empty(), "everyone else is offline");
    churn::revive_all(&mut *net);
    let out = seeker.search(&mut *net, &id, &Query::keyword("name", "observer")).unwrap();
    assert!(!out.hits.is_empty());
}

#[test]
fn ttl_exhaustion_hides_distant_objects() {
    // a line topology with the object 5 hops away and TTL 3
    let mut topo = Topology::empty(8);
    for i in 0..7u32 {
        topo.connect(PeerId(i), PeerId(i + 1));
    }
    let mut net = FloodingNetwork::new(
        topo,
        Box::new(ConstantLatency(10_000)),
        FloodingConfig { ttl: 3, dedup: true, ..FloodingConfig::default() },
    );
    let mut plane = PayloadPlane::new();
    let community = pattern_community();
    let mut far = Servent::new(PeerId(6));
    far.join(community.clone());
    let obj = far.create_object(&community.id, &pattern_values(&GOF_PATTERNS[0])).unwrap();
    far.publish(&mut net, &mut plane, &obj).unwrap();

    let mut near = Servent::new(PeerId(0));
    near.join(community.clone());
    let out = near.search(&mut net, &community.id, &Query::All).unwrap();
    assert!(out.hits.is_empty(), "object is 6 hops away, ttl 3");

    // a closer peer finds it
    let mut close = Servent::new(PeerId(4));
    close.join(community.clone());
    let out = close.search(&mut net, &community.id, &Query::All).unwrap();
    assert_eq!(out.hits.len(), 1);
}

#[test]
fn payload_tampering_detected_on_download() {
    let (mut net, mut plane, publisher, mut seeker, id) = seeded_world(ProtocolKind::Napster);
    let out = seeker.search(&mut *net, &id, &Query::keyword("name", "observer")).unwrap();
    let hit = out.hits[0].clone();

    // rebuild the plane with a tampered payload registered under a
    // *different* (honest) key, then a plane missing the object entirely
    let empty_plane = PayloadPlane::new();
    let err = {
        let mut p = empty_plane.clone();
        std::mem::swap(&mut p, &mut plane);
        let e = seeker.download(&mut *net, &mut plane, &hit).unwrap_err();
        std::mem::swap(&mut p, &mut plane);
        e
    };
    assert!(matches!(err, CoreError::Unavailable(_)), "missing payload is detected");
    let _ = publisher;
}

#[test]
fn malformed_schema_and_stylesheets_are_rejected_cleanly() {
    // community with unparsable schema
    assert!(up2p::Community::new("x", "d", "k", "c", "", "<oops").is_err());
    // broken custom stylesheet fails at view time, not at publish time
    let community = pattern_community().with_display_style("<broken");
    let mut s = Servent::new(PeerId(0));
    s.join(community.clone());
    let obj = s.create_object(&community.id, &pattern_values(&GOF_PATTERNS[0])).unwrap();
    let err = s.view_html(&obj).unwrap_err();
    assert!(matches!(err, CoreError::Stylesheet(_)));
}

#[test]
fn dead_origin_cannot_search_or_publish_visibly() {
    let (mut net, mut plane, _publisher, mut seeker, id) = seeded_world(ProtocolKind::Napster);
    net.set_alive(PeerId(20), false);
    let out = seeker.search(&mut *net, &id, &Query::All).unwrap();
    assert!(out.hits.is_empty(), "dead origin gets nothing");
    net.set_alive(PeerId(20), true);

    // a dead peer's publish is dropped by the substrate
    net.set_alive(PeerId(21), false);
    let community = pattern_community();
    let mut ghost = Servent::new(PeerId(21));
    ghost.join(community.clone());
    let obj = ghost.create_object(&id, &pattern_values(&GOF_PATTERNS[1])).unwrap();
    ghost.publish(&mut *net, &mut plane, &obj).unwrap();
    let out = seeker.search(&mut *net, &id, &Query::keyword("name", "builder")).unwrap();
    assert!(out.hits.is_empty(), "ghost publish must not be visible");
}

#[test]
fn mid_write_crash_loses_nothing_acknowledged() {
    // the durability failure mode: the servent's local store dies mid
    // write (power cut, disk full) — every acknowledged publish must
    // survive recovery, and the torn tail must vanish without a panic
    use up2p::store::{DurableOptions, DurableRepository, FailFs};
    let community = pattern_community();
    let mut servent = Servent::new(PeerId(0));
    servent.join(community.clone());
    let paths = vec!["pattern/name".to_string(), "pattern/category".to_string()];
    let objects: Vec<_> = GOF_PATTERNS[..8]
        .iter()
        .map(|p| servent.create_object(&community.id, &pattern_values(p)).unwrap())
        .collect();

    let dir = std::env::temp_dir()
        .join(format!("up2p-facade-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // budget chosen to die partway through the workload
    let fs = FailFs::new(4_000);
    let mut store = DurableRepository::open_with_fs(
        Box::new(fs.clone()),
        &dir,
        DurableOptions::default(),
    )
    .unwrap();
    let mut acked = Vec::new();
    for obj in &objects {
        match store.publish_xml(&community.id, &obj.xml(), &paths) {
            Ok(id) => acked.push(id),
            Err(_) => break,
        }
    }
    assert!(fs.is_dead(), "budget must be exhausted mid-workload");
    assert!(!acked.is_empty() && acked.len() < objects.len(), "crash landed mid-workload");
    drop(store);

    let (recovered, report) = DurableRepository::recover(&dir).unwrap();
    for id in &acked {
        assert!(recovered.contains(id), "acknowledged publish {id} lost");
    }
    assert!(recovered.len() <= acked.len() + 1, "at most the one torn record extra");
    assert!(
        report.wal_records >= acked.len(),
        "replay covers every acknowledged record"
    );
    // the recovered index serves queries over the surviving objects
    let hits = recovered.search(Some(&community.id), &Query::All);
    assert_eq!(hits.len(), recovered.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn orphaned_superpeer_leaves_recover_when_super_returns() {
    use up2p::net::{SuperPeerConfig, SuperPeerNetwork};
    let mut net = SuperPeerNetwork::new(
        24,
        SuperPeerConfig { supers: 4, super_degree: 1, ttl: 4, ..SuperPeerConfig::default() },
        Box::new(ConstantLatency(10_000)),
        99,
    );
    let mut plane = PayloadPlane::new();
    let community = pattern_community();
    let mut publisher = Servent::new(PeerId(10));
    publisher.join(community.clone());
    let obj = publisher
        .create_object(&community.id, &pattern_values(&GOF_PATTERNS[2]))
        .unwrap();
    publisher.publish(&mut net, &mut plane, &obj).unwrap();

    let leaf = PeerId(15);
    let super_idx = net.super_of(leaf) as u32;
    let mut seeker = Servent::new(leaf);
    seeker.join(community.clone());

    net.set_alive(PeerId(super_idx), false);
    let out = seeker
        .search(&mut net, &community.id, &Query::keyword("name", "factory"))
        .unwrap();
    assert!(out.hits.is_empty(), "orphaned leaf");

    net.set_alive(PeerId(super_idx), true);
    let out = seeker
        .search(&mut net, &community.id, &Query::keyword("name", "factory"))
        .unwrap();
    assert!(!out.hits.is_empty(), "recovered after super returns");
}
