//! Protocol independence, live: the identical `Servent` code that drives
//! the discrete-event substrates drives a *threaded* network of
//! channel-connected peers — create, discover, join, search, download.

use up2p::net::{LiveNetwork, Topology};
use up2p::sim::corpus::{pattern_community, pattern_values, GOF_PATTERNS};
use up2p::{PayloadPlane, PeerId, Query, Servent};

#[test]
fn full_lifecycle_over_threads() {
    let mut net = LiveNetwork::new(Topology::small_world(24, 2, 0.2, 3));
    let mut plane = PayloadPlane::new();
    let community = pattern_community();

    // publisher thread-peer 2 announces the community + one pattern
    let mut publisher = Servent::new(PeerId(2));
    publisher.publish_community(&mut net, &mut plane, &community).unwrap();
    let obj = publisher
        .create_object(&community.id, &pattern_values(&GOF_PATTERNS[18]))
        .unwrap();
    publisher.publish(&mut net, &mut plane, &obj).unwrap();

    // seeker: discovery → join → search → download, all over real threads
    let mut seeker = Servent::new(PeerId(19));
    let found = seeker
        .discover_communities(&mut net, &Query::any_keyword("patterns"))
        .unwrap();
    assert!(!found.hits.is_empty(), "community discovered over live transport");
    let id = seeker.join_from_hit(&mut net, &mut plane, &found.hits[0]).unwrap();
    assert_eq!(id, community.id);

    let hits = seeker.search(&mut net, &id, &Query::keyword("name", "observer")).unwrap();
    assert!(!hits.hits.is_empty());
    let downloaded = seeker.download(&mut net, &mut plane, &hits.hits[0]).unwrap();
    assert_eq!(downloaded.key, obj.key);
    assert!(seeker.view_html(&downloaded).unwrap().contains("Observer"));
}

#[test]
fn replication_works_over_threads_too() {
    let mut net = LiveNetwork::new(Topology::small_world(16, 2, 0.2, 5));
    let mut plane = PayloadPlane::new();
    let community = pattern_community();

    let mut a = Servent::new(PeerId(1));
    a.join(community.clone());
    let obj = a.create_object(&community.id, &pattern_values(&GOF_PATTERNS[4])).unwrap();
    a.publish(&mut net, &mut plane, &obj).unwrap();

    let mut b = Servent::new(PeerId(9));
    b.join(community.clone());
    let out = b.search(&mut net, &community.id, &Query::keyword("name", "singleton")).unwrap();
    assert_eq!(out.hits.len(), 1);
    b.download(&mut net, &mut plane, &out.hits[0]).unwrap();

    let mut c = Servent::new(PeerId(14));
    c.join(community.clone());
    let out = c.search(&mut net, &community.id, &Query::keyword("name", "singleton")).unwrap();
    assert_eq!(out.distinct_keys(), 1);
    assert!(out.hits.len() >= 2, "replicated copy is also discoverable: {:?}", out.hits.len());
}
