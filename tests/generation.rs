//! E2 property test: the generative pipeline works for *any* community
//! schema (Fig. 2's claim) — random schemas produce working forms, valid
//! instances and renderable HTML.

use proptest::prelude::*;
use up2p::{Community, FieldKind, FormKind, FormModel, SchemaBuilder};

#[derive(Debug, Clone)]
enum Kind {
    Text,
    Int,
    Uri,
    Enum(Vec<String>),
}

fn kind_strategy() -> impl Strategy<Value = Kind> {
    prop_oneof![
        Just(Kind::Text),
        Just(Kind::Int),
        Just(Kind::Uri),
        prop::collection::vec("[a-z]{2,6}", 2..5).prop_map(|mut vs| {
            vs.sort();
            vs.dedup();
            Kind::Enum(vs)
        }),
    ]
}

fn fields_strategy() -> impl Strategy<Value = Vec<(String, Kind, bool, bool)>> {
    prop::collection::vec(
        ("[a-z][a-z0-9]{1,8}", kind_strategy(), any::<bool>(), any::<bool>()),
        1..10,
    )
    .prop_map(|mut v| {
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v.dedup_by(|a, b| a.0 == b.0);
        v
    })
}

fn build_community(fields: &[(String, Kind, bool, bool)]) -> Community {
    let mut b = SchemaBuilder::new("object");
    for (name, kind, searchable, optional) in fields {
        let mut f = match kind {
            Kind::Text => FieldKind::text(name.clone()),
            Kind::Int => FieldKind::integer(name.clone()),
            Kind::Uri => FieldKind::uri(name.clone()),
            Kind::Enum(vs) => FieldKind::enumeration(name.clone(), vs.clone()),
        };
        if *searchable {
            f = f.searchable();
        }
        if *optional {
            f = f.optional();
        }
        b.field(f);
    }
    Community::from_builder("generated", "d", "k", "c", "", &b).expect("builder output parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated schema yields working create/search forms whose
    /// filled instances validate and render.
    #[test]
    fn pipeline_works_for_any_schema(fields in fields_strategy(), seed in 0u64..1000) {
        let community = build_community(&fields);
        let create = FormModel::derive(&community, FormKind::Create);
        prop_assert_eq!(create.fields.len(), fields.len());

        // fill every field with a type-appropriate value
        let values: Vec<(String, String)> = fields
            .iter()
            .map(|(name, kind, _, _)| {
                let v = match kind {
                    Kind::Text => format!("value {seed}"),
                    Kind::Int => format!("{}", seed as i64 - 100),
                    Kind::Uri => format!("up2p:thing:{seed}"),
                    Kind::Enum(vs) => vs[seed as usize % vs.len()].clone(),
                };
                (format!("object/{name}"), v)
            })
            .collect();
        let borrowed: Vec<(&str, &str)> =
            values.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let doc = create.fill("object", &borrowed).expect("all fields provided");
        prop_assert!(community.validate(&doc).is_ok(), "doc: {}", doc.to_xml_string());

        // both forms render to HTML through the default stylesheets
        let html = up2p::core::stylesheets::render_form(&create.to_document(), None).unwrap();
        prop_assert!(html.contains("up2p-create"));
        let search = FormModel::derive(&community, FormKind::Search);
        let html = up2p::core::stylesheets::render_form(&search.to_document(), None).unwrap();
        prop_assert!(html.contains("up2p-search"));

        // the object view renders
        let view = up2p::core::stylesheets::render_view(&doc, None).unwrap();
        prop_assert!(view.contains("up2p-view"));

        // index extraction agrees between native and XSLT filter paths
        let xsl = up2p::core::stylesheets::default_index_xsl(&community);
        let via_xslt = up2p::core::stylesheets::apply_index_style(&xsl, &doc).unwrap();
        let via_native =
            up2p::store::Repository::extract_fields(&doc, &community.indexed_paths());
        prop_assert_eq!(via_xslt, via_native);
    }

    /// The community object of any generated community validates against
    /// the root (Fig. 3) schema and round-trips identity.
    #[test]
    fn any_community_is_a_valid_root_object(fields in fields_strategy()) {
        let community = build_community(&fields);
        let root = Community::root();
        let obj = community.to_object();
        prop_assert!(root.validate(&obj).is_ok());
        let rebuilt = Community::from_object(&obj, &community.schema_xsd).unwrap();
        prop_assert_eq!(rebuilt.id, community.id);
    }
}
