//! Facade smoke test: the flattened re-exports (`Servent`,
//! `build_network`, `Query`, `SchemaBuilder`, ...) must compose into the
//! full community lifecycle on every [`ProtocolKind`], using only `up2p`
//! as a dependency — the "one crate, whole system" contract of the
//! facade.

use up2p::{
    build_network, Community, FieldKind, PayloadPlane, PeerId, ProtocolKind, Query,
    SchemaBuilder, Servent,
};

fn recipe_community() -> Community {
    let mut fields = SchemaBuilder::new("recipe");
    fields
        .field(FieldKind::text("title").searchable())
        .field(FieldKind::text("cuisine").searchable())
        .field(FieldKind::text("instructions"));
    Community::from_builder(
        "recipes",
        "Recipe sharing with ingredient search",
        "cooking recipes food",
        "lifestyle",
        "",
        &fields,
    )
    .expect("builder output parses")
}

#[test]
fn flattened_reexports_compose_on_every_protocol() {
    for kind in [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack] {
        let community = recipe_community();
        let mut net = build_network(kind, 24, 7);
        let mut plane = PayloadPlane::new();

        // Publisher side: community + one object.
        let mut alice = Servent::new(PeerId(2));
        alice.publish_community(&mut *net, &mut plane, &community).unwrap();
        let obj = alice
            .create_object(
                &community.id,
                &[
                    ("title", "Mapo Tofu"),
                    ("cuisine", "sichuan"),
                    ("instructions", "simmer the tofu"),
                ],
            )
            .unwrap();
        alice.publish(&mut *net, &mut plane, &obj).unwrap();

        // Seeker side: discover → join → search → download → view.
        let mut bob = Servent::new(PeerId(19));
        let found =
            bob.discover_communities(&mut *net, &Query::any_keyword("cooking")).unwrap();
        assert!(!found.hits.is_empty(), "{kind}: discovery via root community");
        let id = bob.join_from_hit(&mut *net, &mut plane, &found.hits[0]).unwrap();
        assert_eq!(id, community.id, "{kind}: content-derived identity converges");

        let hits = bob.search(&mut *net, &id, &Query::keyword("title", "mapo")).unwrap();
        assert!(!hits.hits.is_empty(), "{kind}: keyword search");
        let downloaded = bob.download(&mut *net, &mut plane, &hits.hits[0]).unwrap();
        assert_eq!(downloaded.key, obj.key, "{kind}: same object after download");

        let html = bob.view_html(&downloaded).unwrap();
        assert!(html.contains("Mapo Tofu"), "{kind}: stylesheet view renders");
    }
}

#[test]
fn facade_modules_reach_every_layer() {
    // Each re-exported module is usable directly through the facade.
    let doc = up2p::xml::ElementBuilder::new("x").text("hi").build();
    let root = doc.document_element().expect("has a root element");
    assert_eq!(doc.local_name(root), Some("x"));
    let schema = up2p::schema::parse_schema_str(up2p::ROOT_SCHEMA_XSD).unwrap();
    assert!(!up2p::schema::leaf_fields(&schema).is_empty());
    let sheet = up2p::xslt::Stylesheet::parse(
        r#"<xsl:stylesheet version="1.0"
             xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
           <xsl:output method="text"/>
           <xsl:template match="/"><xsl:value-of select="/x"/></xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();
    assert_eq!(sheet.apply_to_string(&doc).unwrap(), "hi");
    let mut repo = up2p::store::Repository::new();
    repo.insert_xml("c", "<o><name>n</name></o>", &["o/name".to_string()]).unwrap();
    assert_eq!(repo.search(Some("c"), &up2p::Query::eq("name", "n")).len(), 1);
    let topo = up2p::net::Topology::small_world(8, 2, 0.1, 1);
    assert!(topo.edge_count() > 0);
    let community = up2p::sim::corpus::pattern_community();
    assert!(up2p::Community::root().validate(&community.to_object()).is_ok());
}
