//! E4 integration assertions: schema-driven metadata search must beat
//! filename matching on complex objects, with the gap shrinking when
//! filenames are descriptive (the §II argument, quantified).

use up2p::sim::{e4_metadata, e7_indexing};

fn cell(t: &up2p::sim::Table, row_pred: impl Fn(&[String]) -> bool, col: usize) -> f64 {
    t.rows
        .iter()
        .find(|r| row_pred(r))
        .unwrap_or_else(|| panic!("row not found in {}", t.title))[col]
        .parse()
        .unwrap()
}

#[test]
fn metadata_search_dominates_on_complex_objects() {
    let t = e4_metadata();
    let meta_f1 = cell(&t, |r| r[0] == "patterns" && r[1].starts_with("metadata"), 5);
    let file_f1 = cell(&t, |r| r[0] == "patterns" && r[1].starts_with("filename"), 5);
    assert!(meta_f1 >= 0.9, "metadata F1 should be near-perfect, got {meta_f1}");
    assert!(file_f1 <= 0.4, "filename F1 should be poor on patterns, got {file_f1}");
}

#[test]
fn filename_recall_is_the_bottleneck() {
    let t = e4_metadata();
    let file_precision = cell(&t, |r| r[0] == "patterns" && r[1].starts_with("filename"), 3);
    let file_recall = cell(&t, |r| r[0] == "patterns" && r[1].starts_with("filename"), 4);
    // filenames only contain the pattern name: what they find is right,
    // they just cannot find purpose/keyword matches
    assert!(
        file_precision > file_recall,
        "precision {file_precision} should exceed recall {file_recall}"
    );
}

#[test]
fn descriptive_filenames_narrow_the_gap() {
    let t = e4_metadata();
    let gap = |corpus: &str| {
        cell(&t, |r| r[0] == corpus && r[1].starts_with("metadata"), 5)
            - cell(&t, |r| r[0] == corpus && r[1].starts_with("filename"), 5)
    };
    let pattern_gap = gap("patterns");
    let mp3_gap = gap("mp3");
    assert!(
        pattern_gap > mp3_gap,
        "complex objects should show the larger gap: patterns {pattern_gap} vs mp3 {mp3_gap}"
    );
}

#[test]
fn index_filtering_trades_size_for_recall_monotonically() {
    let t = e7_indexing();
    let postings: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
    let recalls: Vec<f64> = t.rows.iter().map(|r| r[5].parse().unwrap()).collect();
    for w in postings.windows(2) {
        assert!(w[1] <= w[0], "smaller profile, smaller index: {postings:?}");
    }
    for w in recalls.windows(2) {
        assert!(w[1] <= w[0] + 1e-9, "smaller profile, no recall gain: {recalls:?}");
    }
    assert_eq!(recalls[0], 1.0);
}
