//! The schema-generator tool (paper's conclusion: "a web-based tool for
//! generating XML Schema … to hide the underlying XML completely from the
//! user"), as a small interactive-free CLI: describe fields in a plain
//! line format, get the community XSD plus all four generated interfaces.
//!
//! ```text
//! cargo run --example schema_generator
//! ```

use up2p::core::stylesheets;
use up2p::{Community, FieldKind, FormKind, FormModel, SchemaBuilder};

/// Line format: `name:type[:flags]` with type ∈ text|int|decimal|bool|
/// uri|date|enum(a,b,c) and flags from {searchable, optional, repeated,
/// attachment}.
fn parse_field(line: &str) -> Option<FieldKind> {
    let mut parts = line.splitn(3, ':');
    let name = parts.next()?.trim().to_string();
    let ty = parts.next().unwrap_or("text").trim();
    let flags = parts.next().unwrap_or("");
    let mut f = if let Some(rest) = ty.strip_prefix("enum(") {
        let values: Vec<&str> =
            rest.trim_end_matches(')').split(',').map(str::trim).collect();
        FieldKind::enumeration(name, values)
    } else {
        match ty {
            "int" => FieldKind::integer(name),
            "decimal" => FieldKind::decimal(name),
            "bool" => FieldKind::boolean(name),
            "uri" => FieldKind::uri(name),
            "date" => FieldKind::date(name),
            _ => FieldKind::text(name),
        }
    };
    for flag in flags.split(',').map(str::trim) {
        f = match flag {
            "searchable" => f.searchable(),
            "optional" => f.optional(),
            "repeated" => f.repeated(),
            "attachment" => f.attachment(),
            _ => f,
        };
    }
    Some(f)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // What a biodiversity researcher might type into the paper's web tool
    // (§I: "descriptions of species for scientists studying biodiversity"):
    let spec = [
        "species:text:searchable",
        "genus:text:searchable",
        "family:text:searchable",
        "habitat:text:searchable,optional",
        "conservation:enum(least-concern,vulnerable,endangered,extinct):searchable",
        "observed:date:optional",
        "sightings:int:optional",
        "photo:uri:attachment,optional",
    ];

    let mut builder = SchemaBuilder::new("species");
    for line in spec {
        let field = parse_field(line).expect("well-formed spec line");
        builder.field(field);
    }

    println!("=== generated XSD ===");
    let xsd = builder.to_xsd();
    println!("{xsd}\n");

    let community = Community::from_builder(
        "biodiversity",
        "Electronic field guide species descriptions",
        "species biology biodiversity field-guide",
        "science",
        "Gnutella",
        &builder,
    )?;
    println!("community id: {}\n", community.id);

    println!("=== generated create form (HTML) ===");
    let create = FormModel::derive(&community, FormKind::Create).to_document();
    println!("{}\n", stylesheets::render_form(&create, None)?);

    println!("=== generated search form (HTML) ===");
    let search = FormModel::derive(&community, FormKind::Search).to_document();
    println!("{}\n", stylesheets::render_form(&search, None)?);

    println!("=== generated indexed-attribute filter (XSLT) ===");
    println!("{}\n", stylesheets::default_index_xsl(&community));

    // round-trip sanity: the XSD reparses to the identical community
    let reparsed = Community::new(
        "biodiversity",
        "Electronic field guide species descriptions",
        "species biology biodiversity field-guide",
        "science",
        "Gnutella",
        &xsd,
    )?;
    assert_eq!(reparsed.id, community.id, "generated XSD is faithful");
    println!("round-trip check passed: XSD ↔ community identity is stable");
    Ok(())
}
