//! The motivating Napster workload: MP3 trading with ID3-style metadata
//! extraction, attribute search, attachment download with integrity
//! checking, and a sub-community narrowed to one genre (§I: "MP3 trading
//! sub-communities focused on the work of a single artist or genre").
//!
//! ```text
//! cargo run --example mp3_sharing
//! ```

use up2p::sim::corpus::{mp3_community, songs};
use up2p::{
    build_network, extract_metadata, Attachment, Community, FieldKind, PayloadPlane, PeerId,
    ProtocolKind, Query, SchemaBuilder, Servent,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let community = mp3_community();
    let mut net = build_network(ProtocolKind::Napster, 64, 5);
    let mut plane = PayloadPlane::new();

    // Uploaders run the "automated meta-data extraction tool" (§IV-C1)
    // over their files — here ID3-ish text blobs — then publish with the
    // audio bytes as an attachment.
    let catalogue = songs(40);
    let mut uploaders: Vec<Servent> = (0..8)
        .map(|i| {
            let mut s = Servent::new(PeerId(i));
            s.join(community.clone());
            s
        })
        .collect();
    let n_uploaders = uploaders.len();
    for (i, song) in catalogue.iter().enumerate() {
        let uploader = &mut uploaders[i % n_uploaders];
        let id3 = format!(
            "title: {}\nartist: {}\nalbum: {}\ngenre: {}\nyear: {}\nbitrate: 192",
            song.title, song.artist, song.album, song.genre, song.year
        );
        let fields = extract_metadata(&community, &id3);
        let mut values: Vec<(&str, &str)> =
            fields.iter().map(|(p, v)| (p.as_str(), v.as_str())).collect();
        values.push(("audio", "@0"));
        let audio = Attachment::from_bytes(format!("FAKE-MP3-BYTES:{}", song.title).into_bytes());
        let obj =
            uploader.create_object_with_attachments(&community.id, &values, vec![audio])?;
        uploader.publish(&mut *net, &mut plane, &obj)?;
    }
    println!("published {} songs from {} uploaders", catalogue.len(), uploaders.len());

    // A listener searches by attribute — artist, then a boolean filter.
    let mut listener = Servent::new(PeerId(50));
    listener.join(community.clone());
    let out = listener.search_cmip(&mut *net, &community.id, "(artist=Miles Davis)")?;
    println!("artist=Miles Davis: {} hit(s)", out.hits.len());
    let out = listener.search_cmip(
        &mut *net,
        &community.id,
        "(&(genre=jazz)(!(artist=Miles Davis)))",
    )?;
    println!("jazz but not Miles: {} hit(s)", out.hits.len());

    // Download one — the attachment travels with the object and is
    // hash-verified on arrival.
    let hit = out.hits.first().expect("jazz exists").clone();
    let obj = listener.download(&mut *net, &mut plane, &hit)?;
    println!(
        "downloaded '{}' with {} attachment(s); integrity {}",
        obj.field("title").unwrap(),
        obj.attachments.len(),
        if obj.attachments.iter().all(Attachment::verify) { "OK" } else { "BROKEN" }
    );

    // A genre sub-community: same object shape, narrower focus. Extra
    // attributes (paper §I) — here a "mood" tag for the jazz crowd.
    let mut b = SchemaBuilder::new("song");
    b.field(FieldKind::text("title").searchable())
        .field(FieldKind::text("artist").searchable())
        .field(FieldKind::text("album").searchable())
        .field(FieldKind::enumeration("mood", ["cool", "hard-bop", "modal"]).searchable())
        .field(FieldKind::uri("audio").attachment());
    let jazz = Community::from_builder(
        "jazz-only",
        "Jazz sub-community of the mp3 traders",
        "music jazz bebop modal",
        "music",
        "Napster",
        &b,
    )?;
    let mut founder = Servent::new(PeerId(51));
    founder.publish_community(&mut *net, &mut plane, &jazz)?;
    let obj = founder.create_object_with_attachments(
        &jazz.id,
        &[
            ("title", "So What"),
            ("artist", "Miles Davis"),
            ("album", "Kind of Blue"),
            ("mood", "modal"),
            ("audio", "@0"),
        ],
        vec![Attachment::from_bytes(&b"FAKE-MP3:so-what"[..])],
    )?;
    founder.publish(&mut *net, &mut plane, &obj)?;

    // The listener discovers the sub-community like any other resource.
    let found = listener.discover_communities(
        &mut *net,
        &Query::and([Query::eq("category", "music"), Query::any_keyword("jazz")]),
    )?;
    println!("sub-community discovery: {} hit(s)", found.hits.len());
    let id = listener.join_from_hit(&mut *net, &mut plane, &found.hits[0])?;
    let hits = listener.search(&mut *net, &id, &Query::eq("mood", "modal"))?;
    println!("mood=modal in '{}': {} hit(s)", listener.community(&id).unwrap().name, hits.hits.len());
    assert_eq!(hits.hits.len(), 1);
    Ok(())
}
