//! The paper's §V case study: a design-pattern-sharing community built
//! from the GoF catalogue, with a custom view stylesheet and an
//! indexed-attribute filter, plus the replication effect the paper
//! anticipates ("replicate popular patterns to increase accessibility").
//!
//! ```text
//! cargo run --example design_patterns
//! ```

use up2p::sim::corpus::{pattern_community, pattern_values, GOF_PATTERNS};
use up2p::{build_network, PayloadPlane, PeerId, ProtocolKind, Query, Servent};

/// A custom display stylesheet for the complex pattern objects — the
/// default is "tailored to more simple formats" (§V).
const PATTERN_VIEW_XSL: &str = r#"<xsl:stylesheet version="1.0"
    xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:output method="html"/>
  <xsl:template match="/pattern">
    <div class="pattern">
      <h1><xsl:value-of select="name"/>
        <xsl:if test="aka != ''">
          <small> (<xsl:value-of select="aka"/>)</small>
        </xsl:if>
      </h1>
      <p class="category"><xsl:value-of select="category"/></p>
      <h2>Intent</h2><p><xsl:value-of select="intent"/></p>
      <h2>Applicability</h2><p><xsl:value-of select="applicability"/></p>
      <h2>Participants</h2>
      <ul><xsl:for-each select="participants">
        <li><xsl:value-of select="."/></li>
      </xsl:for-each></ul>
    </div>
  </xsl:template>
</xsl:stylesheet>"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let community = pattern_community().with_display_style(PATTERN_VIEW_XSL);
    println!("design-pattern community: {} (id {})", community.name, &community.id[..12]);

    let mut net = build_network(ProtocolKind::Gnutella, 128, 7);
    let mut plane = PayloadPlane::new();

    // librarian peers seed the catalogue
    let mut librarians: Vec<Servent> = (0..4)
        .map(|i| {
            let mut s = Servent::new(PeerId(i * 31));
            s.join(community.clone());
            s
        })
        .collect();
    let n_librarians = librarians.len();
    for (i, p) in GOF_PATTERNS.iter().enumerate() {
        let lib = &mut librarians[i % n_librarians];
        let obj = lib.create_object(&community.id, &pattern_values(p))?;
        lib.publish(&mut *net, &mut plane, &obj)?;
    }
    println!("seeded {} patterns from {} librarians", GOF_PATTERNS.len(), librarians.len());

    // a student searches by *purpose*, not by name — the metadata-search
    // capability filename-based systems lack (§II)
    let mut student = Servent::new(PeerId(99));
    student.join(community.clone());
    let out = student.search_cmip(
        &mut *net,
        &community.id,
        "(&(category=behavioral)(intent~=algorithm))",
    )?;
    println!(
        "CMIP query '(&(category=behavioral)(intent~=algorithm))': {} hit(s)",
        out.hits.len()
    );
    for h in &out.hits {
        let name = h
            .fields
            .iter()
            .find(|(p, _)| p.ends_with("/name"))
            .map(|(_, v)| v.as_str())
            .unwrap_or("?");
        println!("  - {name} (provider {}, {} hops)", h.provider, h.hops);
    }

    // download one and render it with the custom stylesheet
    let hit = out.hits.first().expect("behavioral patterns about algorithms exist");
    let obj = student.download(&mut *net, &mut plane, hit)?;
    println!("\n--- custom-stylesheet view of {} ---", obj.field("name").unwrap());
    println!("{}", student.view_html(&obj)?);

    // replication: popular patterns spread as students download them
    let observer_query = Query::and([
        Query::keyword("name", "observer"),
        Query::eq("category", "behavioral"),
    ]);
    let before = student.search(&mut *net, &community.id, &observer_query)?;
    let mut downloaders: Vec<Servent> = (0..8)
        .map(|i| {
            let mut s = Servent::new(PeerId(10 + i));
            s.join(community.clone());
            s
        })
        .collect();
    for d in &mut downloaders {
        let out = d.search(&mut *net, &community.id, &observer_query)?;
        if let Some(hit) = out.hits.first() {
            let hit = hit.clone();
            let _ = d.download(&mut *net, &mut plane, &hit);
        }
    }
    let after = student.search(&mut *net, &community.id, &observer_query)?;
    println!(
        "\nObserver providers before: {}, after 8 downloads: {} (replication at work)",
        before.hits.len(),
        after.hits.len()
    );
    Ok(())
}
