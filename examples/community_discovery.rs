//! Community discovery at scale: many communities published into the
//! root community, discovered by keyword on three different substrates —
//! the paper's headline claim that community discovery reduces to
//! resource discovery, with the substrate swapped freely underneath.
//!
//! ```text
//! cargo run --example community_discovery
//! ```

use up2p::sim::corpus::{molecule_community, mp3_community, pattern_community};
use up2p::{build_network, Community, PayloadPlane, PeerId, ProtocolKind, Query, Servent};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let communities: Vec<Community> =
        vec![pattern_community(), mp3_community(), molecule_community()];

    for kind in [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack] {
        println!("=== substrate: {kind} ===");
        let mut net = build_network(kind, 96, 11);
        let mut plane = PayloadPlane::new();

        // three founders publish their communities
        for (i, c) in communities.iter().enumerate() {
            let mut founder = Servent::new(PeerId((i * 17 + 2) as u32));
            founder.publish_community(&mut *net, &mut plane, c)?;
        }

        // a newcomer looks for each domain by keyword
        let mut newcomer = Servent::new(PeerId(80));
        for (keyword, expected) in
            [("patterns", "design-patterns"), ("music", "mp3"), ("chemistry", "molecules")]
        {
            let out = newcomer.discover_communities(&mut *net, &Query::any_keyword(keyword))?;
            let names: Vec<String> = out
                .hits
                .iter()
                .filter_map(|h| {
                    h.fields
                        .iter()
                        .find(|(p, _)| p.ends_with("/name"))
                        .map(|(_, v)| v.clone())
                })
                .collect();
            println!(
                "  '{keyword}': {:?} ({} msgs, {:.1} ms)",
                names,
                out.messages,
                out.latency as f64 / 1000.0
            );
            assert!(names.iter().any(|n| n == expected), "{expected} must be discoverable");

            // join the first one and confirm the schema arrived intact
            let id = newcomer.join_from_hit(&mut *net, &mut plane, &out.hits[0])?;
            let joined = newcomer.community(&id).expect("joined");
            println!(
                "    joined '{}' — object root <{}>, {} searchable field(s)",
                joined.name,
                joined.object_root_name(),
                joined.indexed_paths().len()
            );
        }

        // narrowing by category — Fig. 3's filterable attributes
        let narrowed = newcomer.discover_communities(
            &mut *net,
            &Query::and([Query::eq("category", "science"), Query::any_keyword("cml")]),
        )?;
        // the newcomer re-shares joined community objects, so one
        // community may have several providers — count distinct objects
        println!(
            "  category=science AND cml: {} distinct community(ies), {} provider(s)",
            narrowed.distinct_keys(),
            narrowed.hits.len()
        );
        assert_eq!(narrowed.distinct_keys(), 1);
    }
    println!("\ncommunity discovery works identically on all three substrates.");
    Ok(())
}
