//! Equivalence property tests: the discrete-event engine
//! ([`DesNetwork`]) replays the step-based substrates' accounting
//! decision-for-decision. On random topologies, record workloads,
//! removals, deaths, and queries — with the same seeds — every search
//! must produce the same hit *set* (key, provider, hops), the same
//! message count, the same latencies, and the aggregate [`NetStats`]
//! counters (including every per-[`MsgKind`] counter) must match.
//!
//! Hit *order* is deliberately not compared: the DES arena scans records
//! in per-peer insertion order while the step substrate's metadata index
//! scans in doc-id order, and doc ids are recycled.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::collections::BTreeSet;
use up2p_net::{
    build_network_with, DesNetwork, DigestConfig, IndexNode, LatencySpec, MsgKind, NetConfig,
    NetStats, PeerId, PeerNetwork, ProtocolKind, ResourceRecord, RoutingDigest, SearchOutcome,
    Topology,
};
use up2p_store::{Query, ValuePattern};

const COMMUNITIES: [&str; 2] = ["alpha", "beta"];
const ORACLE_PEERS: usize = 8;

/// One publish operation in the oracle workload (same shape as the
/// PR 3/4 oracle in `proptests.rs`).
#[derive(Debug, Clone)]
struct PublishOp {
    key: String,
    community: &'static str,
    provider: PeerId,
    fields: Vec<(String, String)>,
}

fn field_path() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("o/name"), Just("o/tag"), Just("meta/name")]
}

fn value_word() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("apple"),
        Just("banana split"),
        Just("Observer Pattern"),
        Just("factory"),
        Just("errant banana"),
    ]
}

fn publish_ops() -> impl Strategy<Value = Vec<PublishOp>> {
    pvec(
        (
            0usize..16,
            0usize..COMMUNITIES.len(),
            0u32..ORACLE_PEERS as u32,
            pvec((field_path(), value_word()), 1..3),
        ),
        0..40,
    )
    .prop_map(|ops| {
        ops.into_iter()
            .map(|(key, community, provider, fields)| PublishOp {
                key: format!("k{key}"),
                community: COMMUNITIES[community],
                provider: PeerId(provider),
                fields: fields
                    .into_iter()
                    .map(|(p, v)| (p.to_string(), v.to_string()))
                    .collect(),
            })
            .collect()
    })
}

fn oracle_query() -> impl Strategy<Value = Query> {
    let reference = prop_oneof![
        Just("name"),
        Just("o/name"),
        Just("tag"),
        Just("meta/name"),
        Just("absent/field"),
    ];
    let frag = prop_oneof![
        Just("apple"),
        Just("banana"),
        Just("observer"),
        Just("pattern"),
        Just("err"),
        Just("missing"),
    ];
    let leaf = prop_oneof![
        Just(Query::All),
        (reference.clone(), frag.clone()).prop_map(|(f, w)| Query::eq(f, w)),
        (reference.clone(), frag.clone()).prop_map(|(f, w)| Query::contains(f, w)),
        (reference.clone(), frag.clone()).prop_map(|(f, w)| Query::keyword(f, w)),
        frag.clone().prop_map(Query::any_keyword),
        (reference.clone(), frag).prop_map(|(f, w)| Query::Match {
            field: f.to_string(),
            pattern: ValuePattern::from_wildcard(&format!("{w}*")),
        }),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            pvec(inner.clone(), 0..3).prop_map(Query::and),
            pvec(inner.clone(), 0..3).prop_map(Query::or),
            inner.prop_map(|q| Query::Not(Box::new(q))),
        ]
    })
}

/// Order-insensitive hit set: `(key, provider, hops)` triples.
type HitSet = BTreeSet<(String, PeerId, u8)>;

/// Everything about a search outcome except hit order.
fn outcome_fingerprint(out: &SearchOutcome) -> (HitSet, u64, u64, Option<u64>) {
    let hits: HitSet = out
        .hits
        .iter()
        .map(|h| (h.key.clone(), h.provider, h.hops))
        .collect();
    (hits, out.messages, out.latency, out.first_hit_latency)
}

/// The complete observable state of a [`NetStats`], per-kind counters
/// included.
fn stats_fingerprint(stats: &NetStats) -> (Vec<u64>, Vec<(u8, u64)>) {
    let mut counters = vec![
        stats.messages,
        stats.dropped,
        stats.queries,
        stats.queries_with_hits,
        stats.hits,
        stats.retrieves,
        stats.retrieves_ok,
    ];
    counters.extend(MsgKind::ALL.iter().map(|&k| stats.count(k)));
    let hops = stats.hit_hops.iter().map(|(&h, &c)| (h, c)).collect();
    (counters, hops)
}

/// Runs the identical workload against the step substrate and the DES
/// engine, comparing every search outcome and the final stats.
#[allow(clippy::too_many_arguments)]
fn assert_equivalent(
    kind: ProtocolKind,
    n: usize,
    seed: u64,
    config: &NetConfig,
    publishes: &[PublishOp],
    removals: &[(String, PeerId)],
    deaths: &[PeerId],
    searches: &[(PeerId, &'static str, Query)],
    retrieves: &[(PeerId, PeerId, String)],
) -> Result<(), TestCaseError> {
    let mut step = build_network_with(kind, n, seed, config);
    let mut des = DesNetwork::build(kind, n, seed, config);
    for op in publishes {
        let record = ResourceRecord::new(&*op.key, op.community, op.fields.clone());
        step.publish(op.provider, record.clone());
        des.publish(op.provider, record);
    }
    for (key, provider) in removals {
        step.unpublish(*provider, key);
        des.unpublish(*provider, key);
    }
    for &p in deaths {
        step.set_alive(p, false);
        des.set_alive(p, false);
    }
    for (i, (origin, community, query)) in searches.iter().enumerate() {
        let s = step.search(*origin, community, query);
        let d = des.search(*origin, community, query);
        prop_assert_eq!(
            outcome_fingerprint(&s),
            outcome_fingerprint(&d),
            "search #{} diverged ({:?}, origin {:?}, {} in {})",
            i,
            kind,
            origin,
            query,
            community
        );
    }
    for (origin, provider, key) in retrieves {
        let s = step.retrieve(*origin, *provider, key);
        let d = des.retrieve(*origin, *provider, key);
        prop_assert_eq!(s.is_fetched(), d.is_fetched(), "retrieve diverged ({kind:?})");
    }
    prop_assert_eq!(
        stats_fingerprint(step.stats()),
        stats_fingerprint(des.stats()),
        "aggregate stats diverged ({:?})",
        kind
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blind baseline, constant latency: all three protocols, full
    /// workload (publish / unpublish / deaths / searches / retrieves).
    #[test]
    fn des_matches_step_blind(
        dims in (0usize..3, 8usize..40, 0u64..500),
        publishes in publish_ops(),
        removals in pvec((0usize..16, 0u32..ORACLE_PEERS as u32), 0..8),
        deaths in pvec(0u32..ORACLE_PEERS as u32, 0..3),
        origins in pvec(0u32..ORACLE_PEERS as u32, 1..4),
        query in oracle_query(),
    ) {
        let (kind_idx, n, seed) = dims;
        let kind =
            [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack][kind_idx];
        let removals: Vec<(String, PeerId)> =
            removals.into_iter().map(|(k, p)| (format!("k{k}"), PeerId(p))).collect();
        let deaths: Vec<PeerId> = deaths.into_iter().map(PeerId).collect();
        let searches: Vec<(PeerId, &'static str, Query)> = origins
            .iter()
            .enumerate()
            .map(|(i, &o)| (PeerId(o), COMMUNITIES[i % 2], query.clone()))
            .collect();
        let retrieves: Vec<(PeerId, PeerId, String)> = publishes
            .iter()
            .take(3)
            .map(|op| (PeerId(0), op.provider, op.key.clone()))
            .collect();
        assert_equivalent(
            kind, n, seed, &NetConfig::default(),
            &publishes, &removals, &deaths, &searches, &retrieves,
        )?;
    }

    /// Guided search (routing digests on, tiny blooms to force false
    /// positives and walker fallback) with *uniform* latency, so the
    /// equivalence also pins down the order of RNG draws — both the
    /// walker RNG and the stateful latency RNG.
    #[test]
    fn des_matches_step_guided(
        dims in (0usize..2, 8usize..32, 0u64..300),
        publishes in publish_ops(),
        deaths in pvec(0u32..ORACLE_PEERS as u32, 0..3),
        origins in pvec(0u32..ORACLE_PEERS as u32, 1..4),
        query in oracle_query(),
    ) {
        let (kind_idx, n, seed) = dims;
        let kind = [ProtocolKind::Gnutella, ProtocolKind::FastTrack][kind_idx];
        let config = NetConfig::new()
            .latency(LatencySpec::Uniform(1_000, 40_000))
            .digests(DigestConfig { log2_bits: 8, ..DigestConfig::guided() });
        let deaths: Vec<PeerId> = deaths.into_iter().map(PeerId).collect();
        let searches: Vec<(PeerId, &'static str, Query)> = origins
            .iter()
            .enumerate()
            .map(|(i, &o)| (PeerId(o), COMMUNITIES[i % 2], query.clone()))
            .collect();
        assert_equivalent(
            kind, n, seed, &config,
            &publishes, &[], &deaths, &searches, &[],
        )?;
    }

    /// The un-deduped flooding ablation (E6) also matches: revisits
    /// re-evaluate records and re-send hit back-propagation.
    #[test]
    fn des_matches_step_no_dedup(
        n in 8usize..20,
        seed in 0u64..200,
        publishes in publish_ops(),
        origin in 0u32..ORACLE_PEERS as u32,
        query in oracle_query(),
    ) {
        let config = NetConfig::new().ttl(3).dedup(false);
        let searches = vec![(PeerId(origin), COMMUNITIES[0], query)];
        assert_equivalent(
            ProtocolKind::Gnutella, n, seed, &config,
            &publishes, &[], &[], &searches, &[],
        )?;
    }

    /// The DES record arena and the step substrate's per-peer
    /// `IndexNode` advertise bit-identical routing digests for any
    /// publish/unpublish history — the guided-search equivalence above
    /// rests on this.
    #[test]
    fn arena_digests_bit_identical_to_index_node(
        publishes in publish_ops(),
        removals in pvec((0usize..16, 0u32..ORACLE_PEERS as u32), 0..12),
        log2_bits in 6u8..12,
    ) {
        // Drive one peer's state both ways through the *same* history.
        let peer = PeerId(0);
        let mut node = IndexNode::new();
        let mut arena_net = DesNetwork::build(
            ProtocolKind::Gnutella, ORACLE_PEERS, 1,
            &NetConfig::new().digests(DigestConfig { log2_bits, ..DigestConfig::guided() }),
        );
        for op in &publishes {
            let record = ResourceRecord::new(&*op.key, op.community, op.fields.clone());
            node.upsert(peer, &record);
            arena_net.publish(peer, record);
        }
        for (key, provider) in removals {
            let key = format!("k{key}");
            node.remove(PeerId(provider), &key);
            arena_net.unpublish(PeerId(provider), &key);
        }
        let mut from_node = RoutingDigest::new(log2_bits);
        from_node.add_node(&node);
        // Read peer 0's advertisement back out through the route tables
        // of one of its neighbors: after a refresh, `min_depth == Some(1)`
        // must agree with the reference digest's `may_match` for any
        // query — sample a few.
        arena_net.refresh_digests();
        // Same overlay construction as `DesNetwork::build` (seed 1): the
        // depth-1 advertisement peer 0's neighbor holds *is* peer 0's own
        // digest, so `min_depth == Some(1)` must agree with the reference
        // digest's `may_match` for any probe.
        let topo = Topology::small_world(ORACLE_PEERS, 2, 0.2, 1);
        let receiver = topo.neighbors(PeerId(0)).next().map(|p| p.0).unwrap_or(1);
        let probes = [
            Query::any_keyword("banana"),
            Query::any_keyword("observer"),
            Query::contains("o/name", "apple"),
            Query::eq("o/tag", "factory"),
            Query::any_keyword("missing"),
        ];
        for community in COMMUNITIES {
            for q in &probes {
                let via_routes = arena_net
                    .route_min_depth(0, receiver, community, q, 1)
                    .is_some();
                prop_assert_eq!(
                    via_routes,
                    from_node.may_match(community, q),
                    "digest disagreement for {} in {}", q, community
                );
            }
        }
    }
}
