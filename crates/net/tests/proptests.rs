//! Property tests for the simulated substrates: determinism, message
//! bounds, cross-protocol agreement on search results, and the
//! index/scan equivalence oracle for [`IndexNode`].

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use up2p_net::{
    build_network, ConstantLatency, DigestConfig, FloodingConfig, FloodingNetwork, IndexNode,
    PeerId, PeerNetwork, ProtocolKind, ResourceRecord, Topology,
};
use up2p_store::{Query, ValuePattern};

fn record(key: &str, name: &str) -> ResourceRecord {
    ResourceRecord::new(key, "c", vec![("o/name".to_string(), name.to_string())])
}

// ---------------------------------------------------------------------
// Index/scan equivalence oracle
// ---------------------------------------------------------------------

/// One publish operation in the oracle workload.
#[derive(Debug, Clone)]
struct PublishOp {
    key: String,
    community: &'static str,
    provider: PeerId,
    fields: Vec<(String, String)>,
}

const COMMUNITIES: [&str; 2] = ["alpha", "beta"];
const ORACLE_PEERS: usize = 8;

fn field_path() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("o/name"), Just("o/tag"), Just("meta/name")]
}

fn value_word() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("apple"),
        Just("banana split"),
        Just("Observer Pattern"),
        Just("factory"),
        Just("errant banana"),
    ]
}

fn publish_ops() -> impl Strategy<Value = Vec<PublishOp>> {
    pvec(
        (
            0usize..16,
            0usize..COMMUNITIES.len(),
            0u32..ORACLE_PEERS as u32,
            pvec((field_path(), value_word()), 1..3),
        ),
        0..40,
    )
    .prop_map(|ops| {
        ops.into_iter()
            .map(|(key, community, provider, fields)| PublishOp {
                key: format!("k{key}"),
                community: COMMUNITIES[community],
                provider: PeerId(provider),
                fields: fields
                    .into_iter()
                    .map(|(p, v)| (p.to_string(), v.to_string()))
                    .collect(),
            })
            .collect()
    })
}

/// Random queries covering every class the substrates evaluate: exact,
/// keyword (fielded and any-field), wildcard patterns, and boolean
/// composition over them.
fn oracle_query() -> impl Strategy<Value = Query> {
    let reference = prop_oneof![
        Just("name"),
        Just("o/name"),
        Just("tag"),
        Just("meta/name"),
        Just("absent/field"),
    ];
    let frag = prop_oneof![
        Just("apple"),
        Just("banana"),
        Just("observer"),
        Just("pattern"),
        Just("err"),
        Just("missing"),
    ];
    let leaf = prop_oneof![
        Just(Query::All),
        (reference.clone(), frag.clone()).prop_map(|(f, w)| Query::eq(f, w)),
        (reference.clone(), frag.clone()).prop_map(|(f, w)| Query::contains(f, w)),
        (reference.clone(), frag.clone()).prop_map(|(f, w)| Query::keyword(f, w)),
        frag.clone().prop_map(Query::any_keyword),
        (reference.clone(), frag.clone()).prop_map(|(f, w)| Query::Match {
            field: f.to_string(),
            pattern: ValuePattern::from_wildcard(&format!("{w}*")),
        }),
        (reference.clone(), frag).prop_map(|(f, w)| Query::Match {
            field: f.to_string(),
            pattern: ValuePattern::from_wildcard(&format!("*{w}")),
        }),
        reference.prop_map(|f| Query::Match {
            field: f.to_string(),
            pattern: ValuePattern::Present,
        }),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            pvec(inner.clone(), 0..3).prop_map(Query::and),
            pvec(inner.clone(), 0..3).prop_map(Query::or),
            inner.prop_map(|q| Query::Not(Box::new(q))),
        ]
    })
}

/// The pre-refactor reference: a flat record table evaluated with a
/// linear `Query::matches_fields` scan and per-record provider sets
/// (first publish of a key wins, last provider removes the record).
#[derive(Default)]
struct LinearTable {
    records: BTreeMap<String, (ResourceRecord, BTreeSet<PeerId>)>,
}

impl LinearTable {
    fn publish(&mut self, provider: PeerId, record: &ResourceRecord) {
        self.records
            .entry(record.key.clone())
            .or_insert_with(|| (record.clone(), BTreeSet::new()))
            .1
            .insert(provider);
    }

    fn unpublish(&mut self, provider: PeerId, key: &str) {
        if let Some((_, providers)) = self.records.get_mut(key) {
            providers.remove(&provider);
            if providers.is_empty() {
                self.records.remove(key);
            }
        }
    }

    fn search(&self, community: &str, query: &Query, alive: &[bool]) -> BTreeSet<(String, PeerId)> {
        let mut hits = BTreeSet::new();
        for (record, providers) in self.records.values() {
            if record.community != community || !query.matches_fields(&record.fields) {
                continue;
            }
            for &p in providers {
                if alive.get(p.index()).copied().unwrap_or(false) {
                    hits.insert((record.key.clone(), p));
                }
            }
        }
        hits
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With duplicate suppression, forwarded queries cross each overlay
    /// edge at most once per direction: total messages are bounded by
    /// 2·|E| plus the hit back-propagation (≤ hits · ttl hops).
    #[test]
    fn flooding_message_bound(
        n in 8usize..64,
        k in 1usize..3,
        seed in 0u64..500,
        origin in 0u32..8,
    ) {
        let topo = Topology::small_world(n, k, 0.2, seed);
        let edges = topo.edge_count() as u64;
        let mut net = FloodingNetwork::new(
            topo, Box::new(ConstantLatency(1_000)), FloodingConfig::default());
        net.publish(PeerId((n as u32).saturating_sub(1)), record("k", "target"));
        let out = net.search(PeerId(origin % n as u32), "c", &Query::any_keyword("target"));
        let hit_budget = out.hits.len() as u64 * 8;
        prop_assert!(
            out.messages <= edges * 2 + hit_budget,
            "messages {} > bound {} (edges {})",
            out.messages, edges * 2 + hit_budget, edges
        );
    }

    /// Identical seeds produce identical outcomes (full determinism).
    #[test]
    fn deterministic_given_seed(
        kind_idx in 0usize..3,
        n in 8usize..64,
        seed in 0u64..500,
    ) {
        let kind = [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack][kind_idx];
        let run = || {
            let mut net = build_network(kind, n, seed);
            net.publish(PeerId(1), record("k", "target"));
            let out = net.search(PeerId((n - 1) as u32), "c", &Query::any_keyword("target"));
            (out.hits.len(), out.messages, out.latency, out.first_hit_latency)
        };
        prop_assert_eq!(run(), run());
    }

    /// All three protocols agree on *what* exists when everyone is alive
    /// and the overlay is within TTL reach (they differ only in cost).
    #[test]
    fn protocols_agree_on_results(n in 16usize..48, seed in 0u64..200, provider in 1u32..10) {
        let mut found = Vec::new();
        for kind in [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack] {
            let mut net = build_network(kind, n, seed);
            net.publish(PeerId(provider % n as u32), record("k", "needle"));
            let out = net.search(PeerId(0), "c", &Query::any_keyword("needle"));
            found.push(out.distinct_keys());
        }
        // small-world @ TTL 7 covers n ≤ 48 comfortably
        prop_assert_eq!(&found, &vec![1, 1, 1]);
    }

    /// Searching for something never published finds nothing, on every
    /// substrate, and queries never panic.
    #[test]
    fn absent_objects_never_found(n in 4usize..40, seed in 0u64..200) {
        for kind in [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack] {
            let mut net = build_network(kind, n, seed);
            net.publish(PeerId(0), record("k", "exists"));
            let out = net.search(PeerId(0), "c", &Query::any_keyword("missing"));
            prop_assert!(out.hits.is_empty());
            // wrong community also yields nothing
            let out = net.search(PeerId(0), "other", &Query::any_keyword("exists"));
            prop_assert!(out.hits.is_empty());
        }
    }

    /// The index/scan equivalence oracle: for random records,
    /// communities, liveness patterns and queries (exact, keyword,
    /// wildcard, boolean), the `IndexNode` hit set equals the old linear
    /// `matches_fields` scan — including after a random prefix of
    /// unpublish operations.
    #[test]
    fn index_node_agrees_with_linear_scan(
        publishes in publish_ops(),
        removals in pvec((0usize..16, 0u32..ORACLE_PEERS as u32), 0..12),
        liveness in pvec(any::<bool>(), ORACLE_PEERS),
        query in oracle_query(),
    ) {
        let mut node = IndexNode::new();
        let mut linear = LinearTable::default();
        for op in &publishes {
            let record = ResourceRecord::new(&*op.key, op.community, op.fields.clone());
            node.insert(op.provider, &record);
            linear.publish(op.provider, &record);
        }
        for &(key, provider) in &removals {
            let key = format!("k{key}");
            node.remove(PeerId(provider), &key);
            linear.unpublish(PeerId(provider), &key);
        }
        for community in COMMUNITIES {
            let expected = linear.search(community, &query, &liveness);
            let mut got: BTreeSet<(String, PeerId)> = BTreeSet::new();
            node.search(
                community,
                &query,
                |p| liveness.get(p.index()).copied().unwrap_or(false),
                |key, p, _| {
                    got.insert((key.to_string(), p));
                },
            );
            prop_assert_eq!(
                &got, &expected,
                "index/scan disagreement in {} on {}", community, query
            );
        }
    }

    /// More replicas never decreases the number of hits (monotonicity the
    /// replication experiment E5 rests on).
    #[test]
    fn replication_monotone(n in 16usize..48, seed in 0u64..100, r1 in 1usize..4, extra in 1usize..4) {
        let r2 = r1 + extra;
        let hits_with = |replicas: usize| {
            let mut net = build_network(ProtocolKind::Gnutella, n, seed);
            for i in 0..replicas {
                net.publish(PeerId((i * 3 % n) as u32), record("k", "needle"));
            }
            let out = net.search(PeerId((n - 1) as u32), "c", &Query::any_keyword("needle"));
            out.hits.len()
        };
        prop_assert!(hits_with(r2) >= hits_with(r1));
    }

    /// Guided search's hit set is a subset of the flooding hit set on
    /// random topologies, records and queries: a digest can only prune or
    /// redirect, never invent. Tiny digests (256 bits) force heavy bloom
    /// false positives; those cost messages, not correctness.
    #[test]
    fn guided_hits_subset_of_flooding(
        n in 8usize..48,
        k in 1usize..3,
        seed in 0u64..200,
        origin in 0u32..8,
        publishes in publish_ops(),
        query in oracle_query(),
    ) {
        let build = |digests: DigestConfig| {
            let topo = Topology::small_world(n, k, 0.2, seed);
            let mut net = FloodingNetwork::new(
                topo,
                Box::new(ConstantLatency(1_000)),
                FloodingConfig { digests, ..FloodingConfig::default() },
            );
            for op in &publishes {
                let record = ResourceRecord::new(&*op.key, op.community, op.fields.clone());
                net.publish(op.provider, record);
            }
            net
        };
        let origin = PeerId(origin % n as u32);
        let tiny = DigestConfig { log2_bits: 8, ..DigestConfig::guided() };
        for community in COMMUNITIES {
            let flood: BTreeSet<(String, PeerId)> = build(DigestConfig::default())
                .search(origin, community, &query)
                .hits
                .into_iter()
                .map(|h| (h.key, h.provider))
                .collect();
            let guided = build(tiny).search(origin, community, &query);
            for h in &guided.hits {
                prop_assert!(
                    flood.contains(&(h.key.clone(), h.provider)),
                    "guided hit ({}, {:?}) not found by flooding for {} in {}",
                    h.key, h.provider, query, community
                );
            }
        }
    }

    /// Digests go stale-but-safe: after unpublishes and peer deaths a
    /// guided search may pay extra messages chasing stale digest trails,
    /// but every hit it returns is a record still shared by a live peer —
    /// removed records and dead providers are never resurrected.
    #[test]
    fn guided_digests_stale_but_safe(
        n in 8usize..40,
        seed in 0u64..200,
        publishes in publish_ops(),
        removals in pvec((0usize..16, 0u32..ORACLE_PEERS as u32), 0..12),
        deaths in pvec(0u32..ORACLE_PEERS as u32, 0..4),
        query in oracle_query(),
    ) {
        let topo = Topology::small_world(n, 2, 0.2, seed);
        let mut net = FloodingNetwork::new(
            topo,
            Box::new(ConstantLatency(1_000)),
            FloodingConfig { digests: DigestConfig::guided(), ..FloodingConfig::default() },
        );
        // per-peer share-table oracle, matching the flooding substrate's
        // semantics: every peer shares its own copy, last publish wins
        let mut tables: BTreeMap<(PeerId, String), ResourceRecord> = BTreeMap::new();
        for op in &publishes {
            let record = ResourceRecord::new(&*op.key, op.community, op.fields.clone());
            net.publish(op.provider, record.clone());
            tables.insert((op.provider, op.key.clone()), record);
        }
        // build the digests against the full record set...
        net.search(PeerId(0), "alpha", &Query::All);
        // ...then mutate the world under them
        for &(key, provider) in &removals {
            let key = format!("k{key}");
            net.unpublish(PeerId(provider), &key);
            tables.remove(&(PeerId(provider), key));
        }
        for &p in &deaths {
            // deaths deliberately do NOT dirty the digests
            net.set_alive(PeerId(p), false);
        }
        let origin = PeerId(n as u32 - 1);
        for community in COMMUNITIES {
            let live_oracle: BTreeSet<(String, PeerId)> = tables
                .iter()
                .filter(|((p, _), rec)| {
                    net.is_alive(*p)
                        && rec.community == community
                        && query.matches_fields(&rec.fields)
                })
                .map(|((p, key), _)| (key.clone(), *p))
                .collect();
            let out = net.search(origin, community, &query);
            for h in &out.hits {
                prop_assert!(
                    live_oracle.contains(&(h.key.clone(), h.provider)),
                    "stale digest resurrected ({}, {:?}) for {} in {}",
                    h.key, h.provider, query, community
                );
            }
        }
    }
}
