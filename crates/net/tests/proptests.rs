//! Property tests for the simulated substrates: determinism, message
//! bounds, and cross-protocol agreement on search results.

use proptest::prelude::*;
use up2p_net::{
    build_network, ConstantLatency, FloodingConfig, FloodingNetwork, PeerId, PeerNetwork,
    ProtocolKind, ResourceRecord, Topology,
};
use up2p_store::Query;

fn record(key: &str, name: &str) -> ResourceRecord {
    ResourceRecord {
        key: key.to_string(),
        community: "c".to_string(),
        fields: vec![("o/name".to_string(), name.to_string())],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With duplicate suppression, forwarded queries cross each overlay
    /// edge at most once per direction: total messages are bounded by
    /// 2·|E| plus the hit back-propagation (≤ hits · ttl hops).
    #[test]
    fn flooding_message_bound(
        n in 8usize..64,
        k in 1usize..3,
        seed in 0u64..500,
        origin in 0u32..8,
    ) {
        let topo = Topology::small_world(n, k, 0.2, seed);
        let edges = topo.edge_count() as u64;
        let mut net = FloodingNetwork::new(
            topo, Box::new(ConstantLatency(1_000)), FloodingConfig::default());
        net.publish(PeerId((n as u32).saturating_sub(1)), record("k", "target"));
        let out = net.search(PeerId(origin % n as u32), "c", &Query::any_keyword("target"));
        let hit_budget = out.hits.len() as u64 * 8;
        prop_assert!(
            out.messages <= edges * 2 + hit_budget,
            "messages {} > bound {} (edges {})",
            out.messages, edges * 2 + hit_budget, edges
        );
    }

    /// Identical seeds produce identical outcomes (full determinism).
    #[test]
    fn deterministic_given_seed(
        kind_idx in 0usize..3,
        n in 8usize..64,
        seed in 0u64..500,
    ) {
        let kind = [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack][kind_idx];
        let run = || {
            let mut net = build_network(kind, n, seed);
            net.publish(PeerId(1), record("k", "target"));
            let out = net.search(PeerId((n - 1) as u32), "c", &Query::any_keyword("target"));
            (out.hits.len(), out.messages, out.latency, out.first_hit_latency)
        };
        prop_assert_eq!(run(), run());
    }

    /// All three protocols agree on *what* exists when everyone is alive
    /// and the overlay is within TTL reach (they differ only in cost).
    #[test]
    fn protocols_agree_on_results(n in 16usize..48, seed in 0u64..200, provider in 1u32..10) {
        let mut found = Vec::new();
        for kind in [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack] {
            let mut net = build_network(kind, n, seed);
            net.publish(PeerId(provider % n as u32), record("k", "needle"));
            let out = net.search(PeerId(0), "c", &Query::any_keyword("needle"));
            found.push(out.distinct_keys());
        }
        // small-world @ TTL 7 covers n ≤ 48 comfortably
        prop_assert_eq!(&found, &vec![1, 1, 1]);
    }

    /// Searching for something never published finds nothing, on every
    /// substrate, and queries never panic.
    #[test]
    fn absent_objects_never_found(n in 4usize..40, seed in 0u64..200) {
        for kind in [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack] {
            let mut net = build_network(kind, n, seed);
            net.publish(PeerId(0), record("k", "exists"));
            let out = net.search(PeerId(0), "c", &Query::any_keyword("missing"));
            prop_assert!(out.hits.is_empty());
            // wrong community also yields nothing
            let out = net.search(PeerId(0), "other", &Query::any_keyword("exists"));
            prop_assert!(out.hits.is_empty());
        }
    }

    /// More replicas never decreases the number of hits (monotonicity the
    /// replication experiment E5 rests on).
    #[test]
    fn replication_monotone(n in 16usize..48, seed in 0u64..100, r1 in 1usize..4, extra in 1usize..4) {
        let r2 = r1 + extra;
        let hits_with = |replicas: usize| {
            let mut net = build_network(ProtocolKind::Gnutella, n, seed);
            for i in 0..replicas {
                net.publish(PeerId((i * 3 % n) as u32), record("k", "needle"));
            }
            let out = net.search(PeerId((n - 1) as u32), "c", &Query::any_keyword("needle"));
            out.hits.len()
        };
        prop_assert!(hits_with(r2) >= hits_with(r1));
    }
}
