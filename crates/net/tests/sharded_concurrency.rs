//! Concurrency properties of [`ShardedIndexNode`]: readers racing one
//! writer only ever observe states the sequential oracle passes through,
//! in oracle order — and the search path never takes a write guard.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::collections::BTreeSet;
use up2p_net::{IndexNode, PeerId, ResourceRecord, ShardedIndexNode};
use up2p_store::Query;

const COMMUNITIES: [&str; 2] = ["alpha", "beta"];

/// One write of the racing workload. Restricted to publish/withdraw
/// (`insert`/`remove`), which mutate their owning shard in a single
/// critical section each — so every state a concurrent reader can
/// observe is exactly a sequential prefix of the tape. (`upsert` of an
/// existing key legitimately exposes a mid-replace state to readers of
/// that shard; its semantics are covered by the single-threaded oracle
/// test in the crate.)
#[derive(Debug, Clone)]
enum Op {
    Insert { key: usize, community: usize, peer: u32, name: &'static str },
    Remove { key: usize, peer: u32 },
}

fn name_word() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("apple"), Just("banana"), Just("observer"), Just("pattern")]
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    pvec(
        prop_oneof![
            (0usize..8, 0usize..COMMUNITIES.len(), 0u32..4, name_word())
                .prop_map(|(key, community, peer, name)| Op::Insert { key, community, peer, name }),
            (0usize..8, 0u32..4).prop_map(|(key, peer)| Op::Remove { key, peer }),
        ],
        1..32,
    )
}

fn record(op: &Op) -> Option<ResourceRecord> {
    match op {
        Op::Insert { key, community, name, .. } => Some(ResourceRecord::new(
            format!("k{key}"),
            COMMUNITIES[*community],
            vec![("o/name".to_string(), (*name).to_string())],
        )),
        Op::Remove { .. } => None,
    }
}

/// A hit set as observed by a reader: `(key, provider)` pairs.
type HitSet = BTreeSet<(String, PeerId)>;

/// Hit set of `community` under `Query::All` with everyone alive — the
/// most state-sensitive observation a reader can make.
fn observe(node: &ShardedIndexNode, community: &str) -> HitSet {
    let mut hits = BTreeSet::new();
    node.search(community, &Query::All, |_| true, |key, p, _| {
        hits.insert((key.to_string(), p));
    });
    hits
}

/// The sequential oracle: per community, the hit set after every prefix
/// of the tape (index 0 = empty node).
fn oracle_states(tape: &[Op]) -> Vec<Vec<HitSet>> {
    let mut node = IndexNode::new();
    let mut states: Vec<Vec<HitSet>> = COMMUNITIES
        .iter()
        .map(|_| vec![BTreeSet::new()])
        .collect();
    for op in tape {
        match op {
            Op::Insert { peer, .. } => {
                let rec = record(op).expect("insert has a record");
                node.insert(PeerId(*peer), &rec);
            }
            Op::Remove { key, peer } => node.remove(PeerId(*peer), &format!("k{key}")),
        }
        for (c, community) in COMMUNITIES.iter().enumerate() {
            let mut hits = BTreeSet::new();
            node.search(community, &Query::All, |_| true, |key, p, _| {
                hits.insert((key.to_string(), p));
            });
            states[c].push(hits);
        }
    }
    states
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N concurrent readers + 1 writer: every hit set a reader observes
    /// equals some sequential-oracle prefix state of that community, and
    /// each reader's observations advance monotonically through the
    /// oracle sequence (per-shard `RwLock` ⇒ no time travel).
    #[test]
    fn readers_observe_exactly_sequential_oracle_prefixes(tape in ops()) {
        const READERS: usize = 3;
        const READS: usize = 24;
        let states = oracle_states(&tape);
        let node = ShardedIndexNode::new();
        let observations: Vec<Vec<(usize, HitSet)>> =
            std::thread::scope(|scope| {
                let readers: Vec<_> = (0..READERS)
                    .map(|r| {
                        let node = &node;
                        scope.spawn(move || {
                            let mut seen = Vec::with_capacity(READS);
                            for i in 0..READS {
                                let c = (r + i) % COMMUNITIES.len();
                                seen.push((c, observe(node, COMMUNITIES[c])));
                                std::thread::yield_now();
                            }
                            seen
                        })
                    })
                    .collect();
                for op in &tape {
                    match op {
                        Op::Insert { peer, .. } => {
                            let rec = record(op).expect("insert has a record");
                            node.insert(PeerId(*peer), &rec);
                        }
                        Op::Remove { key, peer } => node.remove(PeerId(*peer), &format!("k{key}")),
                    }
                    std::thread::yield_now();
                }
                readers.into_iter().map(|h| h.join().expect("reader thread")).collect()
            });
        for (r, seen) in observations.iter().enumerate() {
            // earliest oracle index each community may still be at
            let mut floor = vec![0usize; COMMUNITIES.len()];
            for (step, (c, hits)) in seen.iter().enumerate() {
                let found = (floor[*c]..states[*c].len()).find(|&i| &states[*c][i] == hits);
                match found {
                    Some(i) => floor[*c] = i,
                    None => prop_assert!(
                        false,
                        "reader {r} step {step}: observed state of {} matches no oracle \
                         prefix ≥ {} — got {hits:?}",
                        COMMUNITIES[*c],
                        floor[*c],
                    ),
                }
            }
        }
        // after the writer finishes, everyone converges on the final state
        for (c, community) in COMMUNITIES.iter().enumerate() {
            let last = states[c].last().expect("oracle has an initial state");
            prop_assert_eq!(&observe(&node, community), last);
        }
    }
}

/// Regression: the read path (search, digest walk, provider checks)
/// never acquires a write guard on any of the three lock classes.
#[test]
fn search_never_takes_a_write_guard() {
    let node = ShardedIndexNode::new();
    for i in 0..20u32 {
        node.insert(
            PeerId(i % 5),
            &ResourceRecord::new(
                format!("k{i}"),
                COMMUNITIES[i as usize % 2],
                vec![("o/name".to_string(), format!("name{i}"))],
            ),
        );
    }
    let writes_after_publish = node.write_guard_count();
    assert!(writes_after_publish > 0, "publishing writes shards");
    for _ in 0..50 {
        for community in COMMUNITIES {
            observe(&node, community);
        }
        observe(&node, "never-published"); // unknown community: still read-only
        assert!(node.has_provider("k3", PeerId(3)));
        assert!(!node.has_provider("k3", PeerId(4)));
        assert_eq!(node.provider_count("k0"), 1);
        assert_eq!(node.len(), 20);
        assert!(!node.is_empty());
        assert_eq!(node.community_count(), 2);
        node.for_each_digest_term(|_, _| {});
    }
    assert_eq!(
        node.write_guard_count(),
        writes_after_publish,
        "a search/read acquired a write guard"
    );
}
