//! Determinism/replay tests: two DES runs with the same seed and
//! configuration must produce **byte-identical** event logs and equal
//! metrics. The guarantee comes from the event queue's tie-breaking
//! rule — `(timestamp, sequence number)`, documented and doc-tested on
//! [`up2p_net::sim::EventQueue`] — plus seeded RNG streams for walker
//! selection, super assignment, and uniform latency.

use up2p_net::churn::exponential_schedule;
use up2p_net::{
    DesNetwork, DigestConfig, LatencySpec, MsgKind, NetConfig, PeerId, PeerNetwork, ProtocolKind,
    ResourceRecord,
};
use up2p_store::Query;

const PEERS: usize = 64;
const SEED: u64 = 42;

/// `(event log, per-kind counters, per-query metrics, events, clock)`.
type RunTrace = (Vec<String>, Vec<String>, Vec<(u64, u64)>, u64, u64);

/// One full mixed timeline: publishes, a churn schedule, digest
/// refreshes, and interleaved queries, with stateful uniform latency and
/// guided search so every RNG stream is exercised.
fn run_once(kind: ProtocolKind) -> RunTrace {
    let config = NetConfig::new()
        .latency(LatencySpec::Uniform(1_000, 30_000))
        .digests(DigestConfig { log2_bits: 8, ..DigestConfig::guided() });
    let mut net = DesNetwork::build(kind, PEERS, SEED, &config);
    net.enable_event_log();
    for i in 0..40u32 {
        net.publish(
            PeerId(i % PEERS as u32),
            ResourceRecord::new(
                format!("k{}", i % 16),
                if i % 2 == 0 { "alpha" } else { "beta" },
                vec![("o/name".to_string(), format!("needle {}", i % 5))],
            ),
        );
    }
    let churn = exponential_schedule(PEERS, 2_000_000, 400_000, 200_000, SEED);
    net.schedule_churn(&churn);
    net.schedule_digest_refresh(150_000);
    net.schedule_digest_refresh(900_000);
    for i in 0..12u64 {
        let origin = PeerId(((i * 13 + 3) % PEERS as u64) as u32);
        let community = if i % 2 == 0 { "alpha" } else { "beta" };
        net.schedule_query(
            i * 150_000,
            origin,
            community,
            Query::any_keyword(&format!("needle {}", i % 5)),
        );
    }
    let outcomes = net.run();
    let metrics: Vec<(u64, u64)> =
        outcomes.iter().map(|o| (o.hits.len() as u64, o.messages)).collect();
    let stats: Vec<String> = MsgKind::ALL
        .iter()
        .map(|&k| format!("{}={}", k.name(), net.stats().count(k)))
        .collect();
    (net.event_log().to_vec(), stats, metrics, net.events_processed(), net.clock())
}

#[test]
fn same_seed_runs_are_byte_identical() {
    for kind in [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack] {
        let (log_a, stats_a, metrics_a, events_a, clock_a) = run_once(kind);
        let (log_b, stats_b, metrics_b, events_b, clock_b) = run_once(kind);
        assert!(!log_a.is_empty(), "{kind:?}: timeline produced no events");
        // byte-identical event logs, line for line
        assert_eq!(log_a.len(), log_b.len(), "{kind:?}: log length diverged");
        for (i, (a, b)) in log_a.iter().zip(&log_b).enumerate() {
            assert_eq!(a.as_bytes(), b.as_bytes(), "{kind:?}: log line {i} diverged");
        }
        assert_eq!(stats_a, stats_b, "{kind:?}: per-kind counters diverged");
        assert_eq!(metrics_a, metrics_b, "{kind:?}: query metrics diverged");
        assert_eq!(events_a, events_b, "{kind:?}: event count diverged");
        assert_eq!(clock_a, clock_b, "{kind:?}: final clock diverged");
    }
}

#[test]
fn different_seeds_diverge() {
    // Sanity: the log actually depends on the seed (otherwise the test
    // above proves nothing).
    let run = |seed: u64| {
        let config = NetConfig::new().latency(LatencySpec::Uniform(1_000, 30_000));
        let mut net = DesNetwork::build(ProtocolKind::Gnutella, PEERS, seed, &config);
        net.enable_event_log();
        net.publish(PeerId(7), ResourceRecord::new("k1", "alpha", Vec::new()));
        net.schedule_query(0, PeerId(0), "alpha", Query::All);
        net.run();
        net.event_log().to_vec()
    };
    assert_ne!(run(1), run(2), "different seeds must produce different timelines");
}
