//! Churn-at-scale regression: a 10k-peer DES run with churn storms
//! landing *while* queries are in flight. Asserts that (a) the query
//! success rate and message cost stay within bounds, and (b) digest
//! staleness never produces a false negative — deaths deliberately do
//! not dirty the routing digests (PR 4's stale-but-safe property), and
//! bloom bits only accumulate, so every record published before the
//! refresh stays visible in its super's advertisement throughout the
//! storm.

use up2p_net::churn::exponential_schedule;
use up2p_net::{
    DesNetwork, DigestConfig, LatencySpec, NetConfig, PeerId, PeerNetwork, ProtocolKind,
    ResourceRecord,
};
use up2p_store::Query;

const PEERS: usize = 10_000;
const SUPERS: usize = 100;
const RECORDS: usize = 300;
const REPLICAS: usize = 3;
const QUERIES: u64 = 200;
const SEED: u64 = 42;

fn artist(i: usize) -> String {
    format!("artist number {}", i % 40)
}

#[test]
fn churn_storm_at_10k_peers_stays_within_bounds() {
    let config = NetConfig::new()
        .latency(LatencySpec::Constant(20_000))
        .supers(SUPERS)
        .digests(DigestConfig { log2_bits: 12, ..DigestConfig::guided() });
    let mut net = DesNetwork::build(ProtocolKind::FastTrack, PEERS, SEED, &config);

    // Replicated catalogue, providers spread over the leaves.
    let mut records = Vec::new();
    for i in 0..RECORDS {
        for r in 0..REPLICAS {
            let leaf = SUPERS + (i * 37 + r * 3_011) % (PEERS - SUPERS);
            let provider = PeerId(leaf as u32);
            net.publish(
                provider,
                ResourceRecord::new(
                    format!("track{i:04}"),
                    "tracks",
                    vec![("artist".to_string(), artist(i))],
                ),
            );
            if r == 0 {
                records.push((format!("track{i:04}"), i, provider));
            }
        }
    }

    // Churn storm: mean session 400ms, mean downtime 200ms over a 2s
    // horizon — every peer flaps several times while queries run.
    let churn = exponential_schedule(PEERS, 2_000_000, 400_000, 200_000, SEED);
    assert!(churn.len() > PEERS, "schedule must actually storm");
    net.schedule_churn(&churn);

    for i in 0..QUERIES {
        let origin = PeerId((SUPERS as u64 + (i * 97 + 13) % (PEERS - SUPERS) as u64) as u32);
        net.schedule_query(
            i * 9_000,
            origin,
            "tracks",
            Query::contains("artist", &artist(i as usize)),
        );
    }
    let outcomes = net.run();
    assert_eq!(outcomes.len(), QUERIES as usize);

    // ---- bounds ------------------------------------------------------
    let stats = net.stats();
    assert_eq!(stats.queries, QUERIES);
    let success = stats.query_success_rate();
    assert!(
        success >= 0.25,
        "success rate collapsed under churn: {success:.3} (queries_with_hits {})",
        stats.queries_with_hits
    );
    let mpq = stats.messages_per_query();
    assert!(
        mpq <= 400.0,
        "guided search cost blew up under churn: {mpq:.1} msgs/query"
    );
    // the engine really did interleave: churn events alone exceed the
    // query count many times over
    assert!(net.events_processed() > churn.len() as u64);

    // ---- stale-but-safe: no digest false negatives -------------------
    // Each record's home super advertises a digest built before/through
    // the storm; for every super that holds a copy of that digest (i.e.
    // every overlay neighbor, probed via the community marker), the
    // record's exact query must still be advertised as plausible.
    for (_, i, provider) in &records {
        let Some(home) = net.super_of_peer(*provider) else {
            panic!("leaf without super");
        };
        let q = Query::contains("artist", &artist(*i));
        for receiver in 0..SUPERS as u32 {
            let edge_with_content =
                net.route_min_depth(home as u32, receiver, "tracks", &Query::All, 1);
            if edge_with_content.is_some() {
                assert_eq!(
                    net.route_min_depth(home as u32, receiver, "tracks", &q, 1),
                    Some(1),
                    "stale digest went false-negative: super {home} -> {receiver} \
                     hides record {i}"
                );
            }
        }
    }
}
