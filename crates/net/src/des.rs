//! Whole-network discrete-event simulation engine.
//!
//! The step substrates ([`crate::CentralizedNetwork`],
//! [`crate::FloodingNetwork`], [`crate::SuperPeerNetwork`]) simulate one
//! search at a time on a private event queue; churn and digest refresh
//! happen *between* searches, instantaneously. That is faithful for
//! measuring a single query but caps experiments at the scale where
//! per-peer objects and per-search allocation stay cheap.
//!
//! [`DesNetwork`] runs the same three protocols on **one global
//! virtual-time queue** ([`crate::sim::EventQueue`], tie-broken by
//! `(timestamp, sequence)`): query issue, per-hop message delivery, hit
//! return, churn transitions, and digest refresh are all timestamped
//! [`DesEvent`]s, so a churn storm lands *while* queries are in flight.
//! Per-peer state is struct-of-arrays ([`RecordArena`] slots plus flat
//! `Vec`s for liveness and super assignment) instead of one object per
//! peer, which is what makes 100k+ peers tractable.
//!
//! # Equivalence with the step substrates
//!
//! The engine replays the step substrates' accounting decision-for-
//! decision: the same `MsgKind` counters bump at the same logical points,
//! the same RNG streams drive walker selection and super assignment, and
//! latency draws happen in the same order. A sequential
//! [`PeerNetwork::search`] through the trait therefore produces the same
//! message counts, latencies, and hit *sets* as the equivalent step
//! substrate (hit *order* may differ for Gnutella: the arena scans
//! records in per-peer insertion order while the metadata index scans in
//! doc-id order, and doc ids are recycled). The property tests in
//! `tests/des_equivalence.rs` pin this down.

use crate::churn::ChurnEvent;
use crate::digest::{term_hash, RouteTable, RoutingDigest};
use crate::event::{DesEvent, PropMode};
use crate::flooding::FloodingConfig;
use crate::index_node::IndexNode;
use crate::latency::LatencyModel;
use crate::message::{ResourceRecord, SearchHit, SharedFields, Time};
use crate::peer::PeerId;
use crate::sim::EventQueue;
use crate::stats::{MsgKind, NetStats, RetrieveOutcome, SearchOutcome};
use crate::superpeer::SuperPeerConfig;
use crate::topology::Topology;
use crate::traits::{PeerNetwork, ProtocolKind};
use crate::NetConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap, HashSet};
use up2p_store::{normalize, tokenize, Query};

/// Pseudo-peer id of the central index server (mirrors the step
/// substrate's convention; never a member of the peer vector).
const SERVER: PeerId = PeerId(u32::MAX);

// ---------------------------------------------------------------------
// Struct-of-arrays record storage
// ---------------------------------------------------------------------

/// Struct-of-arrays record store for the flooding substrate: one slot
/// per live record across *all* peers, with per-peer slot lists. Replaces
/// the step substrate's `Vec<IndexNode>` (one inverted index per peer),
/// which is prohibitively pointer-heavy at 100k peers.
///
/// Communities are interned once; fields stay behind the shared
/// [`SharedFields`] arc so a record replicated on many peers costs one
/// allocation.
#[derive(Debug, Default)]
struct RecordArena {
    /// Record key per slot (empty string = free slot).
    keys: Vec<String>,
    /// Interned community id per slot.
    communities: Vec<u32>,
    /// Shared field list per slot.
    fields: Vec<SharedFields>,
    /// Recycled slot indices.
    free: Vec<u32>,
    /// Interned community names.
    community_names: Vec<String>,
    /// Name → interned id.
    community_ids: HashMap<String, u32>,
    /// Slots held by each peer, in insertion order.
    by_peer: Vec<Vec<u32>>,
}

impl RecordArena {
    fn new(peers: usize) -> RecordArena {
        RecordArena { by_peer: vec![Vec::new(); peers], ..RecordArena::default() }
    }

    fn intern_community(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.community_ids.get(name) {
            return id;
        }
        let id = self.community_names.len() as u32;
        self.community_names.push(name.to_string());
        self.community_ids.insert(name.to_string(), id);
        id
    }

    /// Inserts or replaces `peer`'s copy of `record` (keyed by
    /// `record.key`), mirroring `IndexNode::upsert`.
    fn upsert(&mut self, peer: u32, record: &ResourceRecord) {
        self.remove(peer, &record.key);
        let cid = self.intern_community(&record.community);
        let slot = match self.free.pop() {
            Some(s) => {
                self.keys[s as usize] = record.key.clone();
                self.communities[s as usize] = cid;
                self.fields[s as usize] = SharedFields::clone(&record.fields);
                s
            }
            None => {
                let s = self.keys.len() as u32;
                self.keys.push(record.key.clone());
                self.communities.push(cid);
                self.fields.push(SharedFields::clone(&record.fields));
                s
            }
        };
        if let Some(list) = self.by_peer.get_mut(peer as usize) {
            list.push(slot);
        }
    }

    fn remove(&mut self, peer: u32, key: &str) {
        let RecordArena { keys, fields, free, by_peer, .. } = self;
        let Some(list) = by_peer.get_mut(peer as usize) else { return };
        let Some(pos) = list.iter().position(|&s| keys[s as usize] == key) else { return };
        let slot = list.remove(pos);
        keys[slot as usize].clear();
        fields[slot as usize] = SharedFields::from(Vec::new());
        free.push(slot);
    }

    fn has(&self, peer: u32, key: &str) -> bool {
        self.by_peer
            .get(peer as usize)
            .is_some_and(|list| list.iter().any(|&s| self.keys[s as usize] == key))
    }

    fn shared_count(&self, peer: u32) -> usize {
        self.by_peer.get(peer as usize).map_or(0, Vec::len)
    }

    /// All of `peer`'s records matching `query` within `community`, in
    /// insertion order.
    fn matches(&self, peer: u32, community: &str, query: &Query) -> Vec<(String, SharedFields)> {
        let Some(&cid) = self.community_ids.get(community) else { return Vec::new() };
        let Some(list) = self.by_peer.get(peer as usize) else { return Vec::new() };
        let mut out = Vec::new();
        for &slot in list {
            if self.communities[slot as usize] == cid
                && query.matches_fields(&self.fields[slot as usize])
            {
                out.push((
                    self.keys[slot as usize].clone(),
                    SharedFields::clone(&self.fields[slot as usize]),
                ));
            }
        }
        out
    }

    /// Builds `peer`'s routing digest, bit-identical to
    /// `RoutingDigest::add_node` over an equivalent `IndexNode`: per live
    /// record, the community marker, plus each field's normalized value
    /// and its tokens. Bloom inserts are idempotent, so re-posting a term
    /// shared by two records changes nothing.
    fn digest_of(&self, peer: u32, log2_bits: u8) -> RoutingDigest {
        let mut digest = RoutingDigest::new(log2_bits);
        let Some(list) = self.by_peer.get(peer as usize) else { return digest };
        for &slot in list {
            let community = &self.community_names[self.communities[slot as usize] as usize];
            digest.insert(term_hash(community, None));
            for (_, value) in self.fields[slot as usize].iter() {
                digest.insert(term_hash(community, Some(&normalize(value))));
                for token in tokenize(value) {
                    digest.insert(term_hash(community, Some(&token)));
                }
            }
        }
        digest
    }

    /// Deterministic size estimate (no allocator introspection, so two
    /// same-seed runs report the same number).
    fn approx_bytes(&self) -> u64 {
        let slots = self.keys.len() as u64;
        let key_bytes: u64 = self.keys.iter().map(|k| k.len() as u64).sum();
        let by_peer: u64 = self.by_peer.iter().map(|l| 24 + 4 * l.len() as u64).sum();
        key_bytes + slots * (24 + 4 + 16) + by_peer + self.free.len() as u64 * 4
    }
}

// ---------------------------------------------------------------------
// Per-protocol state
// ---------------------------------------------------------------------

/// Napster: one central index, queried over a star.
struct NapsterState {
    server: IndexNode,
}

/// Gnutella: flat overlay, records in the arena, optional digests.
struct GnutellaState {
    topology: Topology,
    arena: RecordArena,
    config: FloodingConfig,
    routes: RouteTable,
    walk_rng: StdRng,
}

/// FastTrack: leaves pinned to supers, per-super indexes and digests.
struct FastTrackState {
    config: SuperPeerConfig,
    super_of: Vec<u32>,
    super_topology: Topology,
    indexes: Vec<IndexNode>,
    owned: Vec<BTreeSet<String>>,
    routes: RouteTable,
    walk_rng: StdRng,
}

/// Protocol-specific half of the engine. Boxed so the enum stays small
/// (`clippy::large_enum_variant`).
enum Protocol {
    Napster(Box<NapsterState>),
    Gnutella(Box<GnutellaState>),
    FastTrack(Box<FastTrackState>),
}

// ---------------------------------------------------------------------
// Per-query state
// ---------------------------------------------------------------------

/// In-flight bookkeeping for one scheduled query. `pending` counts this
/// query's events still on the queue (including the initial
/// `QueryIssue`); the query finalizes when it reaches zero.
struct QueryState {
    origin: PeerId,
    community: String,
    query: Query,
    issued_at: Time,
    outcome: SearchOutcome,
    seen: HashSet<u32>,
    hit_seen: HashSet<(String, PeerId)>,
    pending: u32,
    last_hit_at: Time,
    quiescence: Time,
    done: bool,
    taken: bool,
}

// ---------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------

/// Discrete-event simulation substrate running Napster, Gnutella, or
/// FastTrack semantics on one global virtual-time queue.
///
/// Construct with [`DesNetwork::build`] (mirror of
/// [`crate::build_network_with`], seed-for-seed) or the per-protocol
/// constructors, then either:
///
/// * drive it through the [`PeerNetwork`] trait — each `search` pumps
///   the queue until that query completes, exactly reproducing the step
///   substrate's accounting — or
/// * build a global timeline with [`DesNetwork::schedule_query`],
///   [`DesNetwork::schedule_churn`], and
///   [`DesNetwork::schedule_digest_refresh`], then [`DesNetwork::run`]
///   it to completion, letting queries and churn interleave in virtual
///   time.
pub struct DesNetwork {
    kind: ProtocolKind,
    state: Protocol,
    alive: Vec<bool>,
    latency: Box<dyn LatencyModel + Send + Sync>,
    stats: NetStats,
    queue: EventQueue<DesEvent>,
    queries: Vec<QueryState>,
    clock: Time,
    events_processed: u64,
    peak_queue: usize,
    log: Option<Vec<String>>,
}

impl std::fmt::Debug for DesNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesNetwork")
            .field("kind", &self.kind)
            .field("peers", &self.alive.len())
            .field("clock", &self.clock)
            .field("events_processed", &self.events_processed)
            .field("queued", &self.queue.len())
            .field("queries", &self.queries.len())
            .finish()
    }
}

impl DesNetwork {
    // ---- construction ------------------------------------------------

    fn with_state(
        kind: ProtocolKind,
        peers: usize,
        latency: Box<dyn LatencyModel + Send + Sync>,
        state: Protocol,
    ) -> DesNetwork {
        DesNetwork {
            kind,
            state,
            alive: vec![true; peers],
            latency,
            stats: NetStats::new(),
            queue: EventQueue::new(),
            queries: Vec::new(),
            clock: 0,
            events_processed: 0,
            peak_queue: 0,
            log: None,
        }
    }

    /// Napster semantics: every peer talks to one central index server.
    pub fn napster(peers: usize, latency: Box<dyn LatencyModel + Send + Sync>) -> DesNetwork {
        let state = Protocol::Napster(Box::new(NapsterState { server: IndexNode::new() }));
        DesNetwork::with_state(ProtocolKind::Napster, peers, latency, state)
    }

    /// Gnutella semantics on an explicit overlay. The walker RNG seed
    /// matches [`crate::FloodingNetwork::new`] so guided fallback walks
    /// pick the same neighbors.
    pub fn gnutella(
        topology: Topology,
        latency: Box<dyn LatencyModel + Send + Sync>,
        config: FloodingConfig,
    ) -> DesNetwork {
        let peers = topology.len();
        let state = Protocol::Gnutella(Box::new(GnutellaState {
            arena: RecordArena::new(peers),
            routes: RouteTable::new(config.digests),
            walk_rng: StdRng::seed_from_u64(0xd16e_57ed ^ peers as u64),
            topology,
            config,
        }));
        DesNetwork::with_state(ProtocolKind::Gnutella, peers, latency, state)
    }

    /// FastTrack semantics: the first `config.supers` peers are supers,
    /// every other peer is assigned one uniformly. RNG consumption
    /// mirrors [`crate::SuperPeerNetwork::new`] draw-for-draw.
    pub fn fasttrack(
        peers: usize,
        config: SuperPeerConfig,
        latency: Box<dyn LatencyModel + Send + Sync>,
        seed: u64,
    ) -> DesNetwork {
        assert!(config.supers > 0 && config.supers <= peers, "invalid super count");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut super_of = Vec::with_capacity(peers);
        for i in 0..peers {
            if i < config.supers {
                super_of.push(i as u32);
            } else {
                super_of.push(rng.gen_range(0..config.supers) as u32);
            }
        }
        let super_topology = if config.supers <= 3 {
            Topology::ring_lattice(config.supers, 1)
        } else {
            Topology::small_world(config.supers, config.super_degree, 0.2, seed ^ 0x5eed)
        };
        let state = Protocol::FastTrack(Box::new(FastTrackState {
            super_of,
            super_topology,
            indexes: std::iter::repeat_with(IndexNode::new).take(config.supers).collect(),
            owned: vec![BTreeSet::new(); peers],
            routes: RouteTable::new(config.digests),
            walk_rng: StdRng::seed_from_u64(seed ^ 0x3a1f_7a1c),
            config,
        }));
        DesNetwork::with_state(ProtocolKind::FastTrack, peers, latency, state)
    }

    /// Builds a DES substrate from the same [`NetConfig`] knobs as
    /// [`crate::build_network_with`], consuming seeds identically so the
    /// two constructions are comparable run-for-run.
    pub fn build(kind: ProtocolKind, peers: usize, seed: u64, config: &NetConfig) -> DesNetwork {
        match kind {
            ProtocolKind::Napster => DesNetwork::napster(peers, config.latency.build(peers, seed)),
            ProtocolKind::Gnutella => {
                let topology = Topology::small_world(peers, 2, 0.2, seed);
                DesNetwork::gnutella(
                    topology,
                    config.latency.build(peers, seed),
                    FloodingConfig {
                        ttl: config.ttl,
                        dedup: config.dedup,
                        digests: config.digests,
                    },
                )
            }
            ProtocolKind::FastTrack => DesNetwork::fasttrack(
                peers,
                SuperPeerConfig {
                    supers: config.super_count(peers),
                    super_degree: config.super_degree,
                    ttl: config.super_ttl,
                    digests: config.digests,
                },
                config.latency.build(peers, seed),
                seed,
            ),
        }
    }

    // ---- timeline construction ---------------------------------------

    /// Schedules a query to leave `origin` at virtual time `at`; returns
    /// the query id used in [`DesEvent`] variants and
    /// [`DesNetwork::take_outcome`].
    pub fn schedule_query(&mut self, at: Time, origin: PeerId, community: &str, query: Query) -> u32 {
        let qid = self.queries.len() as u32;
        self.queries.push(QueryState {
            origin,
            community: community.to_string(),
            query,
            issued_at: at,
            outcome: SearchOutcome::default(),
            seen: HashSet::new(),
            hit_seen: HashSet::new(),
            pending: 1,
            last_hit_at: at,
            quiescence: at,
            done: false,
            taken: false,
        });
        self.queue.push(at, DesEvent::QueryIssue { qid });
        self.peak_queue = self.peak_queue.max(self.queue.len());
        qid
    }

    /// Schedules liveness transitions (e.g. from
    /// [`crate::churn::exponential_schedule`]) as timestamped events.
    pub fn schedule_churn(&mut self, events: &[ChurnEvent]) {
        for e in events {
            self.queue.push(e.at, DesEvent::Churn { peer: e.peer, online: e.online });
        }
        self.peak_queue = self.peak_queue.max(self.queue.len());
    }

    /// Schedules a routing-digest rebuild at virtual time `at`.
    pub fn schedule_digest_refresh(&mut self, at: Time) {
        self.queue.push(at, DesEvent::DigestRefresh);
        self.peak_queue = self.peak_queue.max(self.queue.len());
    }

    /// Starts recording one log line per processed event (for the
    /// determinism/replay tests).
    pub fn enable_event_log(&mut self) {
        self.log = Some(Vec::new());
    }

    /// The recorded event log (empty unless
    /// [`DesNetwork::enable_event_log`] was called).
    pub fn event_log(&self) -> &[String] {
        self.log.as_deref().unwrap_or(&[])
    }

    /// Drains the queue, then returns every not-yet-taken query outcome
    /// in scheduling order.
    pub fn run(&mut self) -> Vec<SearchOutcome> {
        self.pump(None);
        let mut out = Vec::new();
        for qs in &mut self.queries {
            if qs.done && !qs.taken {
                qs.taken = true;
                out.push(std::mem::take(&mut qs.outcome));
            }
        }
        out
    }

    /// Takes a completed query's outcome by id (`None` if unknown, not
    /// yet finished, or already taken).
    pub fn take_outcome(&mut self, qid: u32) -> Option<SearchOutcome> {
        let qs = self.queries.get_mut(qid as usize)?;
        if !qs.done || qs.taken {
            return None;
        }
        qs.taken = true;
        Some(std::mem::take(&mut qs.outcome))
    }

    // ---- introspection -----------------------------------------------

    /// Which protocol this engine runs.
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// Current virtual time (max timestamp processed so far).
    pub fn clock(&self) -> Time {
        self.clock
    }

    /// Total events popped from the queue so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// High-water mark of the event queue length.
    pub fn peak_queue_len(&self) -> usize {
        self.peak_queue
    }

    /// Records currently shared by `peer` (0 for Napster, where records
    /// live only on the server).
    pub fn shared_count(&self, peer: PeerId) -> usize {
        match &self.state {
            Protocol::Napster(_) => 0,
            Protocol::Gnutella(g) => g.arena.shared_count(peer.0),
            Protocol::FastTrack(ft) => {
                ft.owned.get(peer.index()).map_or(0, BTreeSet::len)
            }
        }
    }

    /// The super-peer index `peer` reports to (FastTrack only).
    pub fn super_of_peer(&self, peer: PeerId) -> Option<usize> {
        match &self.state {
            Protocol::FastTrack(ft) => {
                ft.super_of.get(peer.index()).map(|&s| s as usize)
            }
            _ => None,
        }
    }

    /// Queries the routing tables like the forwarding path does: the
    /// minimum advertised depth at which `advertiser`'s digest (held by
    /// `receiver`) may match, within `max_depth`. Used by the churn
    /// regression tests to assert stale digests never go false-negative.
    pub fn route_min_depth(
        &self,
        advertiser: u32,
        receiver: u32,
        community: &str,
        query: &Query,
        max_depth: u8,
    ) -> Option<u8> {
        match &self.state {
            Protocol::Napster(_) => None,
            Protocol::Gnutella(g) => {
                g.routes.min_depth(advertiser, receiver, community, query, max_depth)
            }
            Protocol::FastTrack(ft) => {
                ft.routes.min_depth(advertiser, receiver, community, query, max_depth)
            }
        }
    }

    /// Deterministic estimate of resident state in bytes: liveness,
    /// protocol state, and the event queue at its high-water mark. Not
    /// allocator-exact — comparable across runs and protocols, which is
    /// what the E11 scale experiment needs.
    pub fn approx_bytes(&self) -> u64 {
        let state = match &self.state {
            Protocol::Napster(np) => np.server.len() as u64 * 256,
            Protocol::Gnutella(g) => {
                g.arena.approx_bytes() + g.topology.edge_count() as u64 * 16
            }
            Protocol::FastTrack(ft) => {
                let owned: u64 = ft
                    .owned
                    .iter()
                    .map(|s| 24 + s.iter().map(|k| 32 + k.len() as u64).sum::<u64>())
                    .sum();
                let indexes: u64 = ft.indexes.iter().map(|i| i.len() as u64 * 256).sum();
                owned
                    + indexes
                    + ft.super_topology.edge_count() as u64 * 16
                    + ft.super_of.len() as u64 * 4
            }
        };
        let events =
            self.peak_queue as u64 * (std::mem::size_of::<DesEvent>() as u64 + 24);
        self.alive.len() as u64 + state + events
    }

    /// Rebuilds dirty routing digests immediately (also triggered by the
    /// guided search path and [`DesEvent::DigestRefresh`] events).
    pub fn refresh_digests(&mut self) {
        match &mut self.state {
            Protocol::Napster(_) => {}
            Protocol::Gnutella(g) => refresh_gnutella_digests(g, &mut self.stats),
            Protocol::FastTrack(ft) => refresh_fasttrack_digests(ft, &mut self.stats),
        }
    }

    // ---- the pump ----------------------------------------------------

    /// Processes events in `(timestamp, sequence)` order. With
    /// `until = Some(qid)`, stops once that query finalizes; with `None`,
    /// drains the queue.
    fn pump(&mut self, until: Option<u32>) {
        while let Some((t, ev)) = self.queue.pop() {
            self.clock = self.clock.max(t);
            self.events_processed += 1;
            if let Some(log) = &mut self.log {
                log.push(ev.log_line(t));
            }
            let qid = self.dispatch(t, ev);
            self.peak_queue = self.peak_queue.max(self.queue.len());
            if let Some(q) = qid {
                self.finalize_if_done(q);
                if until == Some(q) && self.queries.get(q as usize).is_some_and(|qs| qs.done) {
                    return;
                }
            }
        }
    }

    /// Routes one event to its handler; returns the query id for
    /// query-scoped events so the pump can check for completion.
    fn dispatch(&mut self, t: Time, ev: DesEvent) -> Option<u32> {
        match ev {
            DesEvent::QueryIssue { qid } => {
                self.handle_query_issue(t, qid);
                Some(qid)
            }
            DesEvent::FloodQuery { qid, to, path, ttl, mode } => {
                self.handle_flood_query(t, qid, to, path, ttl, mode);
                Some(qid)
            }
            DesEvent::SuperQuery { qid, to, path, ttl, mode } => {
                self.handle_super_query(t, qid, to, path, ttl, mode);
                Some(qid)
            }
            DesEvent::ServerQuery { qid } => {
                self.handle_server_query(t, qid);
                Some(qid)
            }
            DesEvent::HitDeliver { qid, .. } => {
                if let Some(qs) = self.queries.get_mut(qid as usize) {
                    qs.pending = qs.pending.saturating_sub(1);
                }
                Some(qid)
            }
            DesEvent::Churn { peer, online } => {
                if let Some(slot) = self.alive.get_mut(peer.index()) {
                    *slot = online;
                }
                None
            }
            DesEvent::DigestRefresh => {
                self.refresh_digests();
                None
            }
        }
    }

    /// Converts a completed query's absolute times to the step
    /// substrates' origin-relative convention and releases its dedup
    /// sets.
    fn finalize_if_done(&mut self, qid: u32) {
        let Some(qs) = self.queries.get_mut(qid as usize) else { return };
        if qs.done || qs.pending != 0 {
            return;
        }
        qs.done = true;
        let end = if qs.outcome.hits.is_empty() { qs.quiescence } else { qs.last_hit_at };
        qs.outcome.latency = end.saturating_sub(qs.issued_at);
        let issued = qs.issued_at;
        qs.outcome.first_hit_latency =
            qs.outcome.first_hit_latency.map(|f| f.saturating_sub(issued));
        if !qs.outcome.hits.is_empty() {
            self.stats.queries_with_hits += 1;
        }
        qs.seen = HashSet::new();
        qs.hit_seen = HashSet::new();
    }

    // ---- event handlers ----------------------------------------------

    fn handle_query_issue(&mut self, t: Time, qid: u32) {
        let Self { state, alive, latency, stats, queue, queries, .. } = self;
        let Some(qs) = queries.get_mut(qid as usize) else { return };
        qs.pending = qs.pending.saturating_sub(1);
        stats.queries += 1;
        let origin = qs.origin;
        if !alive.get(origin.index()).copied().unwrap_or(false) {
            return;
        }
        match state {
            Protocol::Napster(_) => {
                // One round trip to the server; the reply always arrives.
                stats.sent(MsgKind::Query);
                stats.sent(MsgKind::QueryHit);
                qs.outcome.messages = 2;
                let up = latency.delay(origin, SERVER);
                let down = latency.delay(SERVER, origin);
                qs.quiescence = t + up + down;
                qs.last_hit_at = qs.quiescence;
                qs.pending += 1;
                queue.push(t + up, DesEvent::ServerQuery { qid });
            }
            Protocol::Gnutella(g) => {
                let guided = g.config.digests.enabled;
                if guided {
                    refresh_gnutella_digests(g, stats);
                }
                // Local hits are free: no message, zero hops, zero latency.
                for (key, fields) in g.arena.matches(origin.0, &qs.community, &qs.query) {
                    qs.hit_seen.insert((key.clone(), origin));
                    qs.outcome.hits.push(SearchHit { key, provider: origin, fields, hops: 0 });
                    stats.hit(0);
                    qs.outcome.first_hit_latency = Some(t);
                }
                qs.seen.insert(origin.0);
                if g.config.ttl == 0 {
                    return;
                }
                if guided {
                    if qs.outcome.hits.is_empty() {
                        let GnutellaState { topology, routes, walk_rng, config, .. } = &mut **g;
                        let QueryState { community, query, outcome, pending, .. } = qs;
                        forward_guided_des(
                            t,
                            origin.0,
                            None,
                            &[],
                            config.ttl,
                            community,
                            query,
                            config.digests.fanout,
                            config.digests.walk_width,
                            topology,
                            routes,
                            walk_rng,
                            latency.as_mut(),
                            stats,
                            &mut outcome.messages,
                            pending,
                            queue,
                            |to, path, ttl, mode| DesEvent::FloodQuery {
                                qid,
                                to: PeerId(to),
                                path,
                                ttl,
                                mode,
                            },
                        );
                    }
                } else {
                    let ttl = g.config.ttl - 1;
                    for nb in g.topology.neighbors(origin) {
                        stats.sent(MsgKind::Query);
                        qs.outcome.messages += 1;
                        let at = t + latency.delay(origin, nb);
                        qs.pending += 1;
                        queue.push(
                            at,
                            DesEvent::FloodQuery {
                                qid,
                                to: nb,
                                path: vec![origin.0],
                                ttl,
                                mode: PropMode::Flood,
                            },
                        );
                    }
                }
            }
            Protocol::FastTrack(ft) => {
                let guided = ft.config.digests.enabled;
                if guided {
                    refresh_fasttrack_digests(ft, stats);
                }
                let s0 = ft.super_of[origin.index()];
                let mut uplink: Time = 0;
                if origin.index() >= ft.config.supers {
                    stats.sent(MsgKind::Query);
                    qs.outcome.messages += 1;
                    uplink = latency.delay(origin, PeerId(s0));
                    if !alive.get(s0 as usize).copied().unwrap_or(false) {
                        stats.dropped += 1;
                        qs.quiescence = t + uplink;
                        return;
                    }
                }
                let mode = if guided { PropMode::Guided } else { PropMode::Flood };
                qs.pending += 1;
                queue.push(
                    t + uplink,
                    DesEvent::SuperQuery {
                        qid,
                        to: s0,
                        path: Vec::new(),
                        ttl: ft.config.ttl,
                        mode,
                    },
                );
            }
        }
    }

    fn handle_flood_query(
        &mut self,
        t: Time,
        qid: u32,
        to: PeerId,
        path: Vec<u32>,
        ttl: u8,
        mode: PropMode,
    ) {
        let Self { state, alive, latency, stats, queue, queries, .. } = self;
        let Protocol::Gnutella(g) = state else { return };
        let Some(qs) = queries.get_mut(qid as usize) else { return };
        qs.pending = qs.pending.saturating_sub(1);
        qs.quiescence = qs.quiescence.max(t);
        if !alive.get(to.index()).copied().unwrap_or(false) {
            stats.dropped += 1;
            return;
        }
        let first_visit = qs.seen.insert(to.0);
        match mode {
            PropMode::Flood if g.config.dedup && !first_visit => return,
            PropMode::Guided if !first_visit => return,
            _ => {}
        }
        // Walkers (and un-deduped floods) may revisit, but a revisit
        // never re-evaluates records.
        let evaluate = first_visit || mode == PropMode::Flood;
        let local = if evaluate {
            g.arena.matches(to.0, &qs.community, &qs.query)
        } else {
            Vec::new()
        };
        if !local.is_empty() {
            // Route the hit back along the recorded path.
            let mut back: Time = 0;
            let mut prev = to.0;
            for &node in path.iter().rev() {
                stats.sent(MsgKind::QueryHit);
                qs.outcome.messages += 1;
                back += latency.delay(PeerId(prev), PeerId(node));
                prev = node;
            }
            let arrival = t + back;
            let hops = path.len() as u8;
            let mut new_hits = 0u32;
            for (key, fields) in local {
                if qs.hit_seen.insert((key.clone(), to)) {
                    qs.outcome.hits.push(SearchHit { key, provider: to, fields, hops });
                    stats.hit(hops);
                    qs.last_hit_at = qs.last_hit_at.max(arrival);
                    qs.outcome.first_hit_latency =
                        Some(qs.outcome.first_hit_latency.map_or(arrival, |f| f.min(arrival)));
                    new_hits += 1;
                }
            }
            qs.pending += 1;
            queue.push(arrival, DesEvent::HitDeliver { qid, hits: new_hits });
            if mode != PropMode::Flood {
                // Guided copies and walkers stop at the first frontier hit.
                return;
            }
        }
        if ttl == 0 {
            return;
        }
        let Some(&sender) = path.last() else { return };
        if mode == PropMode::Flood {
            for nb in g.topology.neighbors(to) {
                if nb.0 == sender {
                    continue;
                }
                stats.sent(MsgKind::Query);
                qs.outcome.messages += 1;
                let at = t + latency.delay(to, nb);
                let mut next_path = path.clone();
                next_path.push(to.0);
                qs.pending += 1;
                queue.push(
                    at,
                    DesEvent::FloodQuery {
                        qid,
                        to: nb,
                        path: next_path,
                        ttl: ttl - 1,
                        mode: PropMode::Flood,
                    },
                );
            }
        } else {
            let GnutellaState { topology, routes, walk_rng, config, .. } = &mut **g;
            let QueryState { community, query, outcome, pending, .. } = qs;
            forward_guided_des(
                t,
                to.0,
                Some(sender),
                &path,
                ttl,
                community,
                query,
                config.digests.fanout,
                1,
                topology,
                routes,
                walk_rng,
                latency.as_mut(),
                stats,
                &mut outcome.messages,
                pending,
                queue,
                |next, p, rem, m| DesEvent::FloodQuery {
                    qid,
                    to: PeerId(next),
                    path: p,
                    ttl: rem,
                    mode: m,
                },
            );
        }
    }

    fn handle_super_query(
        &mut self,
        t: Time,
        qid: u32,
        to: u32,
        path: Vec<u32>,
        ttl: u8,
        mode: PropMode,
    ) {
        let Self { state, alive, latency, stats, queue, queries, .. } = self;
        let Protocol::FastTrack(ft) = state else { return };
        let Some(qs) = queries.get_mut(qid as usize) else { return };
        qs.pending = qs.pending.saturating_sub(1);
        qs.quiescence = qs.quiescence.max(t);
        if !alive.get(to as usize).copied().unwrap_or(false) {
            stats.dropped += 1;
            return;
        }
        let first_visit = qs.seen.insert(to);
        match mode {
            PropMode::Walk => {}
            _ if !first_visit => return,
            _ => {}
        }
        let origin = qs.origin;
        let origin_is_super = origin.index() < ft.config.supers;
        let hops = path.len() as u8 + u8::from(!origin_is_super);
        let mut local_hits: Vec<SearchHit> = Vec::new();
        if first_visit {
            let QueryState { community, query, hit_seen, .. } = &mut *qs;
            let alive_ref = &*alive;
            ft.indexes[to as usize].search(
                community.as_str(),
                query,
                |p| alive_ref.get(p.index()).copied().unwrap_or(false),
                |key, provider, fields| {
                    if hit_seen.insert((key.to_string(), provider)) {
                        local_hits.push(SearchHit {
                            key: key.to_string(),
                            provider,
                            fields: fields.clone(),
                            hops,
                        });
                    }
                },
            );
        }
        if !local_hits.is_empty() {
            let mut back: Time = 0;
            let mut prev = to;
            for &node in path.iter().rev() {
                stats.sent(MsgKind::QueryHit);
                qs.outcome.messages += 1;
                back += latency.delay(PeerId(prev), PeerId(node));
                prev = node;
            }
            if !origin_is_super {
                stats.sent(MsgKind::QueryHit);
                qs.outcome.messages += 1;
                let s0 = ft.super_of[origin.index()];
                back += latency.delay(PeerId(s0), origin);
            }
            let arrival = t + back;
            let batch = local_hits.len() as u32;
            for h in local_hits {
                stats.hit(h.hops);
                qs.last_hit_at = qs.last_hit_at.max(arrival);
                qs.outcome.first_hit_latency =
                    Some(qs.outcome.first_hit_latency.map_or(arrival, |f| f.min(arrival)));
                qs.outcome.hits.push(h);
            }
            qs.pending += 1;
            queue.push(arrival, DesEvent::HitDeliver { qid, hits: batch });
            if mode != PropMode::Flood {
                return;
            }
        }
        if ttl == 0 {
            return;
        }
        let sender = path.last().copied();
        if mode == PropMode::Flood {
            for nb in ft.super_topology.neighbors(PeerId(to)) {
                if Some(nb.0) == sender {
                    continue;
                }
                stats.sent(MsgKind::Query);
                qs.outcome.messages += 1;
                let at = t + latency.delay(PeerId(to), nb);
                let mut next_path = path.clone();
                next_path.push(to);
                qs.pending += 1;
                queue.push(
                    at,
                    DesEvent::SuperQuery {
                        qid,
                        to: nb.0,
                        path: next_path,
                        ttl: ttl - 1,
                        mode: PropMode::Flood,
                    },
                );
            }
        } else {
            let width = if sender.is_none() { ft.config.digests.walk_width } else { 1 };
            let FastTrackState { super_topology, routes, walk_rng, config, .. } = &mut **ft;
            let QueryState { community, query, outcome, pending, .. } = qs;
            forward_guided_des(
                t,
                to,
                sender,
                &path,
                ttl,
                community,
                query,
                config.digests.fanout,
                width,
                super_topology,
                routes,
                walk_rng,
                latency.as_mut(),
                stats,
                &mut outcome.messages,
                pending,
                queue,
                |next, p, rem, m| DesEvent::SuperQuery { qid, to: next, path: p, ttl: rem, mode: m },
            );
        }
    }

    fn handle_server_query(&mut self, _t: Time, qid: u32) {
        let Self { state, alive, stats, queue, queries, .. } = self;
        let Protocol::Napster(np) = state else { return };
        let Some(qs) = queries.get_mut(qid as usize) else { return };
        qs.pending = qs.pending.saturating_sub(1);
        let arrival = qs.quiescence;
        let batch;
        {
            let QueryState { community, query, outcome, .. } = &mut *qs;
            let alive_ref = &*alive;
            let hits = &mut outcome.hits;
            np.server.search(
                community.as_str(),
                query,
                |p| alive_ref.get(p.index()).copied().unwrap_or(false),
                |key, provider, fields| {
                    hits.push(SearchHit {
                        key: key.to_string(),
                        provider,
                        fields: fields.clone(),
                        hops: 1,
                    });
                },
            );
            for _ in &outcome.hits {
                stats.hit(1);
            }
            if !outcome.hits.is_empty() {
                outcome.first_hit_latency = Some(arrival);
            }
            batch = outcome.hits.len() as u32;
        }
        // The server's reply arrives whether or not it carries hits.
        qs.pending += 1;
        queue.push(arrival, DesEvent::HitDeliver { qid, hits: batch });
    }
}

// ---------------------------------------------------------------------
// Shared guided-forwarding logic
// ---------------------------------------------------------------------

/// Digest-guided forwarding, shared by the flat and super overlays:
/// rank neighbors by advertised depth, take the best `fanout`, or fall
/// back to `walk_width` random walkers when no digest matches. Mirrors
/// the step substrates' `forward_guided` decision-for-decision (same
/// sort, same RNG draws) but emits queue events instead of recursing.
#[allow(clippy::too_many_arguments)]
fn forward_guided_des(
    t: Time,
    from: u32,
    sender: Option<u32>,
    path: &[u32],
    ttl: u8,
    community: &str,
    query: &Query,
    fanout: usize,
    walk_width: usize,
    topology: &Topology,
    routes: &RouteTable,
    walk_rng: &mut StdRng,
    latency: &mut (dyn LatencyModel + Send + Sync),
    stats: &mut NetStats,
    messages: &mut u64,
    pending: &mut u32,
    queue: &mut EventQueue<DesEvent>,
    make_event: impl Fn(u32, Vec<u32>, u8, PropMode) -> DesEvent,
) {
    if ttl == 0 {
        return;
    }
    let mut candidates: Vec<(u8, u32)> = topology
        .neighbors(PeerId(from))
        .map(|p| p.0)
        .filter(|&nb| Some(nb) != sender)
        .filter_map(|nb| {
            routes.min_depth(nb, from, community, query, ttl).map(|d| (d, nb))
        })
        .collect();
    candidates.sort_unstable();
    let targets: Vec<(u32, PropMode)> = if candidates.is_empty() {
        let mut options: Vec<u32> = topology
            .neighbors(PeerId(from))
            .map(|p| p.0)
            .filter(|&nb| Some(nb) != sender)
            .collect();
        let mut walkers = Vec::new();
        while walkers.len() < walk_width && !options.is_empty() {
            let i = walk_rng.gen_range(0..options.len());
            walkers.push((options.swap_remove(i), PropMode::Walk));
        }
        walkers
    } else {
        candidates.into_iter().take(fanout.max(1)).map(|(_, nb)| (nb, PropMode::Guided)).collect()
    };
    for (nb, mode) in targets {
        stats.sent(MsgKind::Query);
        *messages += 1;
        let at = t + latency.delay(PeerId(from), PeerId(nb));
        let mut next_path = path.to_vec();
        next_path.push(from);
        *pending += 1;
        queue.push(at, make_event(nb, next_path, ttl - 1, mode));
    }
}

fn refresh_gnutella_digests(g: &mut GnutellaState, stats: &mut NetStats) {
    let cfg = g.config.digests;
    if !cfg.enabled || !g.routes.needs_refresh() {
        return;
    }
    let GnutellaState { routes, topology, arena, .. } = g;
    let (requests, pushes) = routes.refresh(topology, |p| arena.digest_of(p, cfg.log2_bits));
    stats.sent_n(MsgKind::DigestRequest, requests);
    stats.sent_n(MsgKind::DigestPush, pushes);
}

fn refresh_fasttrack_digests(ft: &mut FastTrackState, stats: &mut NetStats) {
    let cfg = ft.config.digests;
    if !cfg.enabled || !ft.routes.needs_refresh() {
        return;
    }
    let FastTrackState { routes, super_topology, indexes, .. } = ft;
    let (requests, pushes) = routes.refresh(super_topology, |s| {
        let mut digest = RoutingDigest::new(cfg.log2_bits);
        if let Some(index) = indexes.get(s as usize) {
            digest.add_node(index);
        }
        digest
    });
    stats.sent_n(MsgKind::DigestRequest, requests);
    stats.sent_n(MsgKind::DigestPush, pushes);
}

// ---------------------------------------------------------------------
// PeerNetwork impl
// ---------------------------------------------------------------------

impl PeerNetwork for DesNetwork {
    fn protocol_name(&self) -> &'static str {
        self.kind.schema_value()
    }

    fn peer_count(&self) -> usize {
        self.alive.len()
    }

    fn is_alive(&self, peer: PeerId) -> bool {
        self.alive.get(peer.index()).copied().unwrap_or(false)
    }

    fn set_alive(&mut self, peer: PeerId, alive: bool) {
        if let Some(slot) = self.alive.get_mut(peer.index()) {
            *slot = alive;
        }
    }

    fn publish(&mut self, provider: PeerId, record: ResourceRecord) {
        let Self { state, alive, stats, .. } = self;
        match state {
            Protocol::Napster(np) => {
                if !alive.get(provider.index()).copied().unwrap_or(false) {
                    return;
                }
                stats.sent(MsgKind::Publish);
                np.server.insert(provider, &record);
            }
            Protocol::Gnutella(g) => {
                if provider.index() >= alive.len() {
                    return;
                }
                g.arena.upsert(provider.0, &record);
                if g.config.digests.enabled {
                    g.routes.mark_dirty(provider.0);
                }
            }
            Protocol::FastTrack(ft) => {
                if !alive.get(provider.index()).copied().unwrap_or(false) {
                    return;
                }
                let s = ft.super_of[provider.index()];
                if provider.index() >= ft.config.supers {
                    stats.sent(MsgKind::Publish);
                }
                ft.owned[provider.index()].insert(record.key.clone());
                ft.indexes[s as usize].insert(provider, &record);
                if ft.config.digests.enabled {
                    ft.routes.mark_dirty(s);
                }
            }
        }
    }

    fn unpublish(&mut self, provider: PeerId, key: &str) {
        let Self { state, alive, stats, .. } = self;
        match state {
            Protocol::Napster(np) => {
                stats.sent(MsgKind::Unpublish);
                np.server.remove(provider, key);
            }
            Protocol::Gnutella(g) => {
                g.arena.remove(provider.0, key);
                if g.config.digests.enabled && provider.index() < alive.len() {
                    g.routes.mark_dirty(provider.0);
                }
            }
            Protocol::FastTrack(ft) => {
                if provider.index() >= alive.len() {
                    return;
                }
                let s = ft.super_of[provider.index()];
                if provider.index() >= ft.config.supers {
                    stats.sent(MsgKind::Unpublish);
                }
                ft.owned[provider.index()].remove(key);
                ft.indexes[s as usize].remove(provider, key);
                if ft.config.digests.enabled {
                    ft.routes.mark_dirty(s);
                }
            }
        }
    }

    fn search(&mut self, origin: PeerId, community: &str, query: &Query) -> SearchOutcome {
        let at = self.clock;
        let qid = self.schedule_query(at, origin, community, query.clone());
        self.pump(Some(qid));
        self.take_outcome(qid).unwrap_or_default()
    }

    fn retrieve(&mut self, origin: PeerId, provider: PeerId, key: &str) -> RetrieveOutcome {
        self.stats.retrieves += 1;
        if !self.is_alive(origin) {
            return RetrieveOutcome::Unavailable;
        }
        self.stats.sent(MsgKind::Retrieve);
        if !self.is_alive(provider) {
            self.stats.dropped += 1;
            return RetrieveOutcome::Unavailable;
        }
        let has = match &self.state {
            Protocol::Napster(np) => np.server.has_provider(key, provider),
            Protocol::Gnutella(g) => g.arena.has(provider.0, key),
            Protocol::FastTrack(ft) => {
                ft.owned.get(provider.index()).is_some_and(|set| set.contains(key))
            }
        };
        if !has {
            self.stats.sent(MsgKind::RetrieveFail);
            return RetrieveOutcome::Unavailable;
        }
        self.stats.sent(MsgKind::RetrieveOk);
        self.stats.retrieves_ok += 1;
        let latency = self.latency.delay(origin, provider) + self.latency.delay(provider, origin);
        RetrieveOutcome::Fetched { provider, latency }
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = NetStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConstantLatency;
    use crate::stats::MsgKind;

    fn track(key: &str, artist: &str) -> ResourceRecord {
        ResourceRecord::new(
            key,
            "tracks",
            vec![("artist".to_string(), artist.to_string())],
        )
    }

    fn q(artist: &str) -> Query {
        Query::contains("artist", artist)
    }

    #[test]
    fn napster_round_trip() {
        let mut net = DesNetwork::napster(4, Box::new(ConstantLatency(10)));
        net.publish(PeerId(1), track("k1", "miles davis"));
        let out = net.search(PeerId(0), "tracks", &q("miles"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].provider, PeerId(1));
        assert_eq!(out.messages, 2);
        assert_eq!(out.latency, 20);
        assert_eq!(out.first_hit_latency, Some(20));
        assert!(net.retrieve(PeerId(0), PeerId(1), "k1").is_fetched());
        assert_eq!(net.stats().count(MsgKind::Query), 1);
        assert_eq!(net.stats().count(MsgKind::QueryHit), 1);
    }

    #[test]
    fn gnutella_flood_finds_remote_record() {
        let mut net = DesNetwork::gnutella(
            Topology::ring_lattice(6, 1),
            Box::new(ConstantLatency(5)),
            FloodingConfig::default(),
        );
        net.publish(PeerId(3), track("k1", "coltrane"));
        let out = net.search(PeerId(0), "tracks", &q("coltrane"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].hops, 3);
        // hit latency: 3 hops out + 3 hops back at 5µs each
        assert_eq!(out.first_hit_latency, Some(30));
        assert!(out.messages > 0);
    }

    #[test]
    fn fasttrack_leaf_to_leaf() {
        let config = SuperPeerConfig { supers: 2, ..SuperPeerConfig::default() };
        let mut net = DesNetwork::fasttrack(8, config, Box::new(ConstantLatency(7)), 9);
        net.publish(PeerId(5), track("k1", "mingus"));
        let out = net.search(PeerId(6), "tracks", &q("mingus"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].provider, PeerId(5));
        assert!(net.stats().count(MsgKind::Query) >= 1);
    }

    #[test]
    fn global_timeline_interleaves_churn_and_queries() {
        let mut net = DesNetwork::napster(3, Box::new(ConstantLatency(10)));
        net.publish(PeerId(1), track("k1", "monk"));
        // Query at t=0 sees the provider; churn kills it at t=5 (before
        // the server processes the query at t=10), so the *same* query
        // issued at t=0 already misses: the server's alive-filter runs
        // when the ServerQuery event fires.
        let q0 = net.schedule_query(0, PeerId(0), "tracks", q("monk"));
        net.schedule_churn(&[ChurnEvent { at: 5, peer: PeerId(1), online: false }]);
        let q1 = net.schedule_query(50, PeerId(2), "tracks", q("monk"));
        let outcomes = net.run();
        assert_eq!(outcomes.len(), 2);
        assert!(net.take_outcome(q0).is_none(), "run() already took q0");
        assert!(net.take_outcome(q1).is_none());
        assert!(outcomes[0].hits.is_empty(), "provider died before server lookup");
        assert!(outcomes[1].hits.is_empty());
        assert!(net.events_processed() >= 5);
        assert!(net.peak_queue_len() >= 2);
        assert_eq!(net.clock(), 70);
    }

    #[test]
    fn event_log_records_processed_events() {
        let mut net = DesNetwork::napster(2, Box::new(ConstantLatency(1)));
        net.enable_event_log();
        net.publish(PeerId(1), track("k1", "ella"));
        net.schedule_query(0, PeerId(0), "tracks", q("ella"));
        net.run();
        let log = net.event_log();
        assert_eq!(log.len(), 3, "issue + server-query + hits: {log:?}");
        assert_eq!(log[0], "0 issue q0");
        assert_eq!(log[1], "1 server-query q0");
        assert_eq!(log[2], "2 hits q0 n=1");
    }

    #[test]
    fn arena_digest_matches_index_node_digest() {
        let mut arena = RecordArena::new(2);
        let mut node = IndexNode::new();
        for (i, artist) in ["miles davis", "john coltrane"].iter().enumerate() {
            let rec = track(&format!("k{i}"), artist);
            arena.upsert(0, &rec);
            node.upsert(PeerId(0), &rec);
        }
        // remove one so live-term filtering is exercised
        arena.remove(0, "k0");
        node.remove(PeerId(0), "k0");
        let from_arena = arena.digest_of(0, 10);
        let mut from_node = RoutingDigest::new(10);
        from_node.add_node(&node);
        assert_eq!(from_arena, from_node);
    }

    #[test]
    fn arena_upsert_recycles_slots() {
        let mut arena = RecordArena::new(1);
        arena.upsert(0, &track("k1", "a"));
        arena.upsert(0, &track("k2", "b"));
        arena.remove(0, "k1");
        arena.upsert(0, &track("k3", "c"));
        assert_eq!(arena.keys.len(), 2, "slot recycled");
        assert_eq!(arena.shared_count(0), 2);
        assert!(arena.has(0, "k2") && arena.has(0, "k3") && !arena.has(0, "k1"));
        arena.upsert(0, &track("k2", "b2"));
        assert_eq!(arena.shared_count(0), 2, "upsert replaces");
        let hits = arena.matches(0, "tracks", &q("b2"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, "k2");
    }

    #[test]
    fn approx_bytes_is_deterministic() {
        let build = || {
            let mut net = DesNetwork::gnutella(
                Topology::ring_lattice(16, 2),
                Box::new(ConstantLatency(3)),
                FloodingConfig::default(),
            );
            for i in 0..8 {
                net.publish(PeerId(i), track(&format!("k{i}"), "art"));
            }
            net.search(PeerId(0), "tracks", &q("art"));
            net.approx_bytes()
        };
        assert_eq!(build(), build());
        assert!(build() > 0);
    }
}
