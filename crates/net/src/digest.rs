//! Routing digests for guided (digest-pruned) search.
//!
//! Blind TTL flooding asks every reachable peer; the E9 tables put that
//! at ~4,000 messages per query on a 2k-peer overlay. The guided-search
//! literature (EGSP's guided protocol, ATLAAS-P2P's discovery layer,
//! attenuated Bloom filters in general) recovers near-flooding recall at
//! a fraction of the cost by giving each peer a compact, conservative
//! summary of what is reachable *through* each neighbor, and forwarding
//! a query only toward neighbors whose summary plausibly matches.
//!
//! This module provides that layer for the simulated substrates:
//!
//! * [`RoutingDigest`] — a Bloom-filter bitset over `(community, term)`
//!   pairs, where terms are the store-layer's interned vocabulary
//!   (keyword tokens and normalized exact values, via
//!   [`up2p_store::MetadataIndex::for_each_live_term`]). Digests hash
//!   term *strings*, not symbol ids: interner symbols are private to each
//!   index, strings are the wire-stable identity.
//! * [`RouteTable`] — the per-directed-edge *attenuated* digest table: for
//!   the edge `q → p`, layer `d` summarizes everything reachable from `p`
//!   through `q` within `d` hops. Layers are monotone
//!   (`layer d ⊇ layer d-1`), so the first matching layer gives a
//!   conservative minimum depth toward a match.
//! * [`DigestConfig`] — the knobs: layer count (radius), bits per layer,
//!   guided fanout and the width of the random-walk fallback.
//!
//! The digest answers "may a match exist behind this neighbor?" — never
//! "does one exist". False positives only cost messages; false negatives
//! are impossible for fresh digests because every query predicate is
//! mapped to a *weaker* digest predicate (see [`RoutingDigest::may_match`]).
//! Hits themselves always come from real [`IndexNode`] evaluation at the
//! visited peer, so a stale digest can waste messages but can never
//! resurrect an unpublished record (property-tested).

use crate::index_node::IndexNode;
use crate::peer::PeerId;
use crate::topology::Topology;
use std::collections::{BTreeSet, HashMap};
use up2p_store::{Query, ValuePattern};

/// Tuning knobs for the routing-digest layer. `enabled: false` (the
/// default) keeps every substrate byte-for-byte on its blind-flooding
/// behavior; experiments opt in explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestConfig {
    /// Consult digests to prune forwarding (guided search).
    pub enabled: bool,
    /// Attenuation radius: number of layers kept per directed edge
    /// (layer `d` covers the subtree within `d` hops).
    pub radius: u8,
    /// log2 of the bit width of each layer (15 → 32,768 bits = 4 KiB).
    pub log2_bits: u8,
    /// Maximum neighbors a guided query is forwarded to per hop.
    pub fanout: usize,
    /// Random walkers spawned at the origin when no neighbor digest
    /// matches (mid-path dead ends continue as a single walker).
    pub walk_width: usize,
}

impl Default for DigestConfig {
    fn default() -> Self {
        DigestConfig { enabled: false, radius: 5, log2_bits: 15, fanout: 2, walk_width: 2 }
    }
}

impl DigestConfig {
    /// Guided search with the default sizing (radius 5, 4 KiB layers,
    /// fanout 2, two fallback walkers).
    pub fn guided() -> DigestConfig {
        DigestConfig { enabled: true, ..DigestConfig::default() }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// splitmix64 finalizer: spreads the FNV accumulator over all 64 bits so
/// the two Bloom probes (low word, high word) are independent.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash of a digest entry: `term_hash(c, None)` marks the community as
/// present, `term_hash(c, Some(t))` marks one term of that community.
/// The community is folded in so the same word in two communities sets
/// different bits (community scoping survives digest compression).
pub fn term_hash(community: &str, term: Option<&str>) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, community.as_bytes());
    h = fnv1a(h, &[0xff]); // separator: ("ab","c") must differ from ("a","bc")
    if let Some(t) = term {
        h = fnv1a(h, t.as_bytes());
    }
    mix(h)
}

/// A Bloom-filter bitset over `(community, term)` hashes. Two probes per
/// entry (double hashing); the bit width is fixed at construction and
/// must match for unions and layer comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingDigest {
    words: Box<[u64]>,
}

impl RoutingDigest {
    /// Creates an empty digest of `1 << log2_bits` bits (minimum 64).
    pub fn new(log2_bits: u8) -> RoutingDigest {
        let words = 1usize << log2_bits.clamp(6, 30).saturating_sub(6);
        RoutingDigest { words: vec![0u64; words].into_boxed_slice() }
    }

    /// Bit capacity (always a power of two).
    pub fn bit_len(&self) -> u64 {
        self.words.len() as u64 * 64
    }

    /// Number of set bits — the fill level experiments report.
    pub fn ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    fn probes(&self, h: u64) -> [usize; 2] {
        let mask = self.bit_len() - 1;
        let h2 = (h >> 32) | 1; // odd stride: visits every bit of a pow-2 table
        [(h & mask) as usize, (h.wrapping_add(h2) & mask) as usize]
    }

    /// Sets the bits for one entry hash.
    pub fn insert(&mut self, h: u64) {
        for bit in self.probes(h) {
            self.words[bit / 64] |= 1u64 << (bit % 64);
        }
    }

    /// May the entry be present? (No false negatives.)
    pub fn contains(&self, h: u64) -> bool {
        self.probes(h).into_iter().all(|bit| self.words[bit / 64] >> (bit % 64) & 1 == 1)
    }

    /// ORs `other` into `self`, returning whether any bit changed.
    ///
    /// # Panics
    ///
    /// Panics when the two digests have different bit widths.
    pub fn union_with(&mut self, other: &RoutingDigest) -> bool {
        assert_eq!(self.words.len(), other.words.len(), "digest width mismatch");
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            let merged = *w | o;
            changed |= merged != *w;
            *w = merged;
        }
        changed
    }

    /// Folds one node's share table into the digest: the community
    /// presence bit plus every live indexed term of that community.
    pub fn add_node(&mut self, node: &IndexNode) {
        node.for_each_digest_term(|community, term| self.insert(term_hash(community, term)));
    }

    /// Conservative query evaluation: `true` whenever *any* record
    /// matching `query` in `community` could sit behind this digest.
    ///
    /// Every query form maps to a predicate at least as weak as its real
    /// index semantics, so a fresh digest never yields a false negative:
    ///
    /// * `Keyword` → the token's term bit (field restrictions ignored),
    /// * `Match` with an `Exact` pattern → the normalized value's term
    ///   bit (exact patterns are pre-normalized by the query builders),
    /// * `And` → all branches plausible, `Or` → any branch plausible
    ///   (an empty `Or` matches nothing, exactly like the evaluator),
    /// * everything else (`All`, `Not`, wildcard/`Present` patterns) →
    ///   community presence alone.
    pub fn may_match(&self, community: &str, query: &Query) -> bool {
        self.contains(term_hash(community, None)) && self.terms_plausible(community, query)
    }

    fn terms_plausible(&self, community: &str, query: &Query) -> bool {
        match query {
            Query::All | Query::Not(_) | Query::Match { pattern: ValuePattern::Prefix(_), .. }
            | Query::Match { pattern: ValuePattern::Suffix(_), .. }
            | Query::Match { pattern: ValuePattern::Contains(_), .. }
            | Query::Match { pattern: ValuePattern::Present, .. } => true,
            Query::And(qs) => qs.iter().all(|q| self.terms_plausible(community, q)),
            Query::Or(qs) => qs.iter().any(|q| self.terms_plausible(community, q)),
            Query::Keyword { word, .. } => self.contains(term_hash(community, Some(word))),
            Query::Match { pattern: ValuePattern::Exact(value), .. } => {
                self.contains(term_hash(community, Some(value)))
            }
        }
    }
}

/// Per-directed-edge attenuated digest table for one overlay.
///
/// For each directed edge `q → p` the table holds `radius` monotone
/// layers: layer 1 is `q`'s own share table; layer `d` additionally
/// unions layer `d-1` of every edge `r → q` with `r ≠ p` — everything
/// reachable from `p` through `q` in at most `d` hops (echoes around
/// cycles only ever *add* bits, keeping the no-false-negative direction).
///
/// Maintenance is lazy and batched, as a real servent would piggyback
/// digest refreshes on its keep-alives: publish/unpublish marks the
/// node dirty, and the next guided search triggers [`RouteTable::refresh`],
/// which rebuilds dirty local digests, repropagates layers, and reports
/// how many `DigestRequest`/`DigestPush` messages the exchange cost
/// (one push per directed edge whose advertisement actually changed).
/// Peer death/revival deliberately does *not* mark anything dirty —
/// digests go stale under churn, and the random-walk fallback plus real
/// per-peer evaluation keep that safe.
#[derive(Debug)]
pub struct RouteTable {
    config: DigestConfig,
    /// Per-node local digest (own share table only).
    local: Vec<RoutingDigest>,
    /// Directed edge `(advertiser q, receiver p)` → attenuated layers,
    /// nearest subtree first (`layers[d-1]` covers depth `d`).
    edges: HashMap<(u32, u32), Vec<RoutingDigest>>,
    /// Nodes whose share table changed since the last refresh.
    dirty: BTreeSet<u32>,
    built: bool,
}

impl RouteTable {
    /// Creates an empty table; nothing is allocated until the first
    /// [`RouteTable::refresh`].
    pub fn new(config: DigestConfig) -> RouteTable {
        RouteTable { config, local: Vec::new(), edges: HashMap::new(), dirty: BTreeSet::new(), built: false }
    }

    /// The configuration the table was built with.
    pub fn config(&self) -> DigestConfig {
        self.config
    }

    /// Marks one node's local digest as out of date (after
    /// publish/unpublish).
    pub fn mark_dirty(&mut self, node: u32) {
        self.dirty.insert(node);
    }

    /// Does the next guided search need a refresh first?
    pub fn needs_refresh(&self) -> bool {
        !self.built || !self.dirty.is_empty()
    }

    /// Rebuilds local digests (all on first build, dirty nodes after)
    /// from `local_of` and repropagates the attenuated layers across
    /// `topo`. Returns `(requests, pushes)`: `DigestRequest` messages
    /// (one per directed edge, first exchange only) and `DigestPush`
    /// messages (one per directed edge whose advertised layers changed).
    pub fn refresh<F>(&mut self, topo: &Topology, mut local_of: F) -> (u64, u64)
    where
        F: FnMut(u32) -> RoutingDigest,
    {
        let n = topo.len() as u32;
        let first = !self.built;
        if first {
            self.local = (0..n).map(&mut local_of).collect();
        } else {
            for node in std::mem::take(&mut self.dirty) {
                if (node as usize) < self.local.len() {
                    self.local[node as usize] = local_of(node);
                }
            }
        }
        self.dirty.clear();
        self.built = true;

        // layer 1: each advertiser's own digest
        let mut edges: HashMap<(u32, u32), Vec<RoutingDigest>> = HashMap::new();
        let mut keys: Vec<(u32, u32)> = Vec::new();
        for p in 0..n {
            for q in topo.neighbors(PeerId(p)) {
                keys.push((q.0, p));
            }
        }
        for &(q, p) in &keys {
            edges.insert((q, p), vec![self.local[q as usize].clone()]);
        }
        // layer d = layer d-1 ∪ neighbors' layer d-1 (monotone closure);
        // pushes are deferred so every read this round sees layer d-1
        for _ in 1..self.config.radius.max(1) {
            let mut next: Vec<RoutingDigest> = Vec::with_capacity(keys.len());
            for &(q, p) in &keys {
                let Some(mut layer) =
                    edges.get(&(q, p)).and_then(|layers| layers.last()).cloned()
                else {
                    // seeded above for every key; an absent edge has no
                    // prior layer to extend, so carry an empty digest
                    next.push(RoutingDigest::new(self.config.log2_bits));
                    continue;
                };
                for r in topo.neighbors(PeerId(q)) {
                    if r.0 == p {
                        continue;
                    }
                    if let Some(upstream) =
                        edges.get(&(r.0, q)).and_then(|layers| layers.last())
                    {
                        layer.union_with(upstream);
                    }
                }
                next.push(layer);
            }
            for (key, layer) in keys.iter().zip(next) {
                if let Some(layers) = edges.get_mut(key) {
                    layers.push(layer);
                }
            }
        }

        let requests = if first { keys.len() as u64 } else { 0 };
        let pushes = keys
            .iter()
            .filter(|key| first || self.edges.get(key) != edges.get(key))
            .count() as u64;
        self.edges = edges;
        (requests, pushes)
    }

    /// Minimum plausible depth of a match for `query` behind the edge
    /// `advertiser → receiver`: the 1-based index of the first layer
    /// whose digest may match, probing at most `min(max_depth, radius)`
    /// layers. `None` means "no match within reach through that
    /// neighbor" (or the edge is unknown).
    pub fn min_depth(
        &self,
        advertiser: u32,
        receiver: u32,
        community: &str,
        query: &Query,
        max_depth: u8,
    ) -> Option<u8> {
        let layers = self.edges.get(&(advertiser, receiver))?;
        let cap = (max_depth.min(self.config.radius) as usize).min(layers.len());
        layers[..cap]
            .iter()
            .position(|l| l.may_match(community, query))
            .map(|i| i as u8 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ResourceRecord;

    fn node_with(entries: &[(&str, &str, &str)]) -> IndexNode {
        let mut node = IndexNode::new();
        for (i, (community, field, value)) in entries.iter().enumerate() {
            node.insert(
                PeerId(0),
                &ResourceRecord::new(
                    format!("k{i}"),
                    *community,
                    vec![(field.to_string(), value.to_string())],
                ),
            );
        }
        node
    }

    #[test]
    fn insert_contains_no_false_negatives() {
        let mut d = RoutingDigest::new(10);
        let entries: Vec<u64> =
            (0..200).map(|i| term_hash("c", Some(&format!("term{i}")))).collect();
        for &h in &entries {
            d.insert(h);
        }
        assert!(entries.iter().all(|&h| d.contains(h)), "bloom filters never false-negative");
        assert!(d.ones() > 0 && d.ones() <= 400);
    }

    #[test]
    fn union_is_monotone_and_reports_change() {
        let mut a = RoutingDigest::new(8);
        let mut b = RoutingDigest::new(8);
        a.insert(term_hash("c", Some("apple")));
        b.insert(term_hash("c", Some("banana")));
        assert!(a.union_with(&b), "new bits arrived");
        assert!(!a.union_with(&b), "idempotent");
        assert!(a.contains(term_hash("c", Some("apple"))));
        assert!(a.contains(term_hash("c", Some("banana"))));
    }

    #[test]
    #[should_panic(expected = "digest width mismatch")]
    fn union_rejects_width_mismatch() {
        let mut a = RoutingDigest::new(8);
        a.union_with(&RoutingDigest::new(9));
    }

    #[test]
    fn may_match_is_weaker_than_real_evaluation() {
        let node = node_with(&[
            ("songs", "track/title", "Abstract Factory Blues"),
            ("songs", "track/genre", "jazz"),
            ("patterns", "pattern/name", "Observer"),
        ]);
        let mut d = RoutingDigest::new(12);
        d.add_node(&node);
        // everything the node can answer is plausible
        assert!(d.may_match("songs", &Query::any_keyword("factory")));
        assert!(d.may_match("songs", &Query::eq("track/genre", "jazz")));
        assert!(d.may_match("patterns", &Query::keyword("name", "observer")));
        assert!(d.may_match("songs", &Query::All));
        assert!(d.may_match(
            "songs",
            &Query::and([Query::eq("track/genre", "jazz"), Query::any_keyword("blues")])
        ));
        // normalized multi-word exact values are digest terms too
        assert!(d.may_match("songs", &Query::eq("track/title", "abstract factory blues")));
        // absent community / absent conjunct prune (true negatives)
        assert!(!d.may_match("videos", &Query::All));
        assert!(!d.may_match(
            "songs",
            &Query::and([Query::eq("track/genre", "jazz"), Query::any_keyword("zzzunseen")])
        ));
        // an empty Or matches nothing, like the evaluator
        assert!(!d.may_match("songs", &Query::Or(Vec::new())));
        // wildcard patterns cannot be checked term-wise: community bit only
        assert!(d.may_match(
            "songs",
            &Query::Match { field: "track/title".into(), pattern: ValuePattern::Prefix("abs".into()) }
        ));
    }

    #[test]
    fn digest_tracks_unpublish_on_rebuild() {
        let mut node = node_with(&[("c", "o/name", "ephemeral")]);
        let mut before = RoutingDigest::new(12);
        before.add_node(&node);
        assert!(before.may_match("c", &Query::any_keyword("ephemeral")));
        node.remove(PeerId(0), "k0");
        let mut after = RoutingDigest::new(12);
        after.add_node(&node);
        assert!(!after.may_match("c", &Query::any_keyword("ephemeral")));
        assert!(!after.may_match("c", &Query::All), "empty community drops its bit");
    }

    #[test]
    fn route_table_layers_give_min_depth_on_a_line() {
        // 0 - 1 - 2 - 3: a record at 3 must appear at depth 3 behind the
        // edge 1 → 0, depth 2 behind 2 → 1, depth 1 behind 3 → 2
        let mut topo = Topology::empty(4);
        for i in 0..3u32 {
            topo.connect(PeerId(i), PeerId(i + 1));
        }
        let mut nodes: Vec<IndexNode> = (0..4).map(|_| IndexNode::new()).collect();
        nodes[3].insert(
            PeerId(3),
            &ResourceRecord::new("k", "c", vec![("o/name".to_string(), "needle".to_string())]),
        );
        let mut table = RouteTable::new(DigestConfig { enabled: true, ..DigestConfig::default() });
        let (requests, pushes) = table.refresh(&topo, |p| {
            let mut d = RoutingDigest::new(12);
            d.add_node(&nodes[p as usize]);
            d
        });
        assert_eq!(requests, 6, "one request per directed edge");
        assert_eq!(pushes, 6, "first exchange pushes every edge");
        let q = Query::any_keyword("needle");
        assert_eq!(table.min_depth(1, 0, "c", &q, 7), Some(3));
        assert_eq!(table.min_depth(2, 1, "c", &q, 7), Some(2));
        assert_eq!(table.min_depth(3, 2, "c", &q, 7), Some(1));
        // looking back toward the empty side finds nothing
        assert_eq!(table.min_depth(0, 1, "c", &q, 7), None);
        // a ttl too small to reach the record prunes the probe
        assert_eq!(table.min_depth(1, 0, "c", &q, 2), None);
    }

    #[test]
    fn refresh_pushes_only_changed_advertisements() {
        let mut topo = Topology::empty(3);
        topo.connect(PeerId(0), PeerId(1));
        topo.connect(PeerId(1), PeerId(2));
        let mut nodes: Vec<IndexNode> = (0..3).map(|_| IndexNode::new()).collect();
        let build = |nodes: &[IndexNode], p: u32| {
            let mut d = RoutingDigest::new(12);
            d.add_node(&nodes[p as usize]);
            d
        };
        let mut table = RouteTable::new(DigestConfig { enabled: true, ..DigestConfig::default() });
        table.refresh(&topo, |p| build(&nodes, p));
        // no change → no pushes, no requests
        table.mark_dirty(0);
        assert!(table.needs_refresh());
        assert_eq!(table.refresh(&topo, |p| build(&nodes, p)), (0, 0));
        // a publish at 0 changes 0's advertisement to 1 and (through the
        // attenuated layers) 1's advertisement to 2 — but not the edges
        // pointing back toward 0
        nodes[0].insert(
            PeerId(0),
            &ResourceRecord::new("k", "c", vec![("o/name".to_string(), "fresh".to_string())]),
        );
        table.mark_dirty(0);
        let (requests, pushes) = table.refresh(&topo, |p| build(&nodes, p));
        assert_eq!(requests, 0);
        assert_eq!(pushes, 2, "0→1 and 1→2 changed; 1→0 and 2→1 did not");
        assert_eq!(
            table.min_depth(1, 2, "c", &Query::any_keyword("fresh"), 7),
            Some(2),
            "the new record is visible two hops away after the refresh"
        );
    }
}
