//! Minimal discrete-event queue used by the flooding and super-peer
//! substrates.
//!
//! Each search operation is simulated to quiescence in virtual time — the
//! queue orders deliveries by `(time, sequence)`, making runs fully
//! deterministic for a given seed.

use crate::message::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic time-ordered event queue.
///
/// Tie-breaking rule: events are popped by **timestamp, then sequence
/// number** — the sequence is assigned at push time, so two events
/// scheduled for the same instant come back in push order. This is what
/// makes every run (and the whole-network [`crate::DesNetwork`] replay
/// logs) byte-for-byte reproducible for a given seed.
///
/// ```
/// use up2p_net::sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(10, "pushed first");
/// q.push(10, "pushed second");
/// q.push(5, "earlier wins regardless of push order");
/// assert_eq!(q.pop(), Some((5, "earlier wins regardless of push order")));
/// assert_eq!(q.pop(), Some((10, "pushed first")));
/// assert_eq!(q.pop(), Some((10, "pushed second")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Scheduled<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `event` for delivery at virtual time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Pops the earliest event, returning `(time, event)`.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_in_push_order() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn len_tracks() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, ());
        q.push(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
