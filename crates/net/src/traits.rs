//! The generic peer-to-peer interface.
//!
//! The paper's conclusion proposes "to model the peer-to-peer layer as
//! providing a generic interface with primitives for create, search and
//! retrieve". [`PeerNetwork`] is that interface; the servent in
//! `up2p-core` is written against it and runs unchanged on all three
//! substrates (experiment E6).

use crate::message::ResourceRecord;
use crate::peer::PeerId;
use crate::stats::{MsgKind, NetStats, RetrieveOutcome, SearchOutcome};
use up2p_store::Query;

/// One query of a [`PeerNetwork::search_batch`] call: the same
/// parameters [`PeerNetwork::search`] takes, owned so a batch can be
/// fanned out across worker threads.
#[derive(Debug, Clone)]
pub struct SearchRequest {
    /// Issuing peer.
    pub origin: PeerId,
    /// Community scope of the query.
    pub community: String,
    /// The metadata query.
    pub query: Query,
}

impl SearchRequest {
    /// Convenience constructor.
    pub fn new(origin: PeerId, community: impl Into<String>, query: Query) -> SearchRequest {
        SearchRequest { origin, community: community.into(), query }
    }
}

/// A peer-to-peer substrate offering the paper's three primitives
/// (publish ≈ create, search, retrieve) plus liveness control for churn
/// experiments.
///
/// All three implementations are deterministic discrete-event simulations:
/// `search` runs one query to quiescence in virtual time and reports the
/// message/latency cost it incurred.
pub trait PeerNetwork {
    /// Substrate name as it appears in the community schema's `protocol`
    /// enumeration (Fig. 3): `Napster`, `Gnutella` or `FastTrack`.
    fn protocol_name(&self) -> &'static str;

    /// Number of peers (dense ids `0..peer_count`).
    fn peer_count(&self) -> usize;

    /// Is the peer currently online?
    fn is_alive(&self, peer: PeerId) -> bool;

    /// Sets a peer online/offline (churn control).
    fn set_alive(&mut self, peer: PeerId, alive: bool);

    /// Shares a resource record from `provider` (create primitive). The
    /// metadata becomes discoverable; the object itself stays at the
    /// provider until retrieved.
    fn publish(&mut self, provider: PeerId, record: ResourceRecord);

    /// Withdraws a shared record.
    fn unpublish(&mut self, provider: PeerId, key: &str);

    /// Issues a metadata query from `origin` scoped to `community`,
    /// simulating propagation to quiescence.
    fn search(&mut self, origin: PeerId, community: &str, query: &Query) -> SearchOutcome;

    /// Answers a batch of in-flight queries, returning one outcome per
    /// request in request order, with cumulative statistics identical to
    /// issuing the requests through [`PeerNetwork::search`] one at a
    /// time (same totals, same [`NetStats::by_kind`] view).
    ///
    /// `workers` is the serving parallelism to use where the substrate
    /// supports it. The default implementation serves sequentially; the
    /// Napster server and FastTrack super-peers override it with a
    /// thread-pool driver over the sharded index, and the live threaded
    /// substrate overlaps the batch in flight.
    fn search_batch(&mut self, requests: &[SearchRequest], workers: usize) -> Vec<SearchOutcome> {
        let _ = workers;
        requests.iter().map(|r| self.search(r.origin, &r.community, &r.query)).collect()
    }

    /// Downloads the object `key` from `provider` (learned from a search
    /// hit).
    fn retrieve(&mut self, origin: PeerId, provider: PeerId, key: &str) -> RetrieveOutcome;

    /// Cumulative statistics.
    fn stats(&self) -> &NetStats;

    /// Zeroes the statistics (between experiment phases).
    fn reset_stats(&mut self);

    /// Messages spent maintaining routing digests (guided search, E10):
    /// `DigestPush` + `DigestRequest` since the last stats reset. Zero on
    /// substrates without a digest layer or with digests disabled —
    /// experiments report this separately from per-query traffic so the
    /// maintenance cost of guided routing is visible, not hidden.
    fn digest_messages(&self) -> u64 {
        self.stats().count(MsgKind::DigestPush) + self.stats().count(MsgKind::DigestRequest)
    }
}

/// Which substrate to build — mirrors the `protocol` field of the
/// community schema in Fig. 3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Centralized index server (Napster).
    Napster,
    /// TTL-limited flooding over an overlay (Gnutella).
    Gnutella,
    /// Two-tier super-peer network (FastTrack).
    FastTrack,
}

impl ProtocolKind {
    /// Parses the schema enumeration value (empty string maps to
    /// `Gnutella`, the paper's default-flavored decentralized choice).
    ///
    /// Values are matched exactly as the Fig. 3 schema enumerates them —
    /// case-sensitive, no aliases:
    ///
    /// ```
    /// use up2p_net::ProtocolKind;
    ///
    /// assert_eq!(ProtocolKind::from_schema_value("Napster"), Some(ProtocolKind::Napster));
    /// assert_eq!(ProtocolKind::from_schema_value("Gnutella"), Some(ProtocolKind::Gnutella));
    /// assert_eq!(ProtocolKind::from_schema_value("FastTrack"), Some(ProtocolKind::FastTrack));
    /// // unset protocol → the decentralized default
    /// assert_eq!(ProtocolKind::from_schema_value(""), Some(ProtocolKind::Gnutella));
    /// // anything else is rejected, including case variants
    /// assert_eq!(ProtocolKind::from_schema_value("napster"), None);
    /// assert_eq!(ProtocolKind::from_schema_value("Kazaa"), None);
    /// // every kind round-trips through its schema value
    /// for kind in [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack] {
    ///     assert_eq!(ProtocolKind::from_schema_value(kind.schema_value()), Some(kind));
    /// }
    /// ```
    pub fn from_schema_value(v: &str) -> Option<ProtocolKind> {
        match v {
            "" | "Gnutella" => Some(ProtocolKind::Gnutella),
            "Napster" => Some(ProtocolKind::Napster),
            "FastTrack" => Some(ProtocolKind::FastTrack),
            _ => None,
        }
    }

    /// The schema enumeration value.
    ///
    /// ```
    /// use up2p_net::ProtocolKind;
    /// assert_eq!(ProtocolKind::FastTrack.schema_value(), "FastTrack");
    /// assert_eq!(ProtocolKind::FastTrack.to_string(), "FastTrack");
    /// ```
    pub fn schema_value(self) -> &'static str {
        match self {
            ProtocolKind::Napster => "Napster",
            ProtocolKind::Gnutella => "Gnutella",
            ProtocolKind::FastTrack => "FastTrack",
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.schema_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_values_round_trip() {
        for p in [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack] {
            assert_eq!(ProtocolKind::from_schema_value(p.schema_value()), Some(p));
        }
        assert_eq!(ProtocolKind::from_schema_value(""), Some(ProtocolKind::Gnutella));
        assert_eq!(ProtocolKind::from_schema_value("Kazaa"), None);
    }
}
