//! Wire-level message model shared by the simulated substrates.

use crate::peer::PeerId;
use up2p_store::Query;

/// Virtual time in microseconds since simulation start.
pub type Time = u64;

/// Shared handle to a record's extracted `(field path, value)` metadata
/// (the store layer's [`up2p_store::SharedFields`]).
///
/// Allocated once when the object is published; uploading the record to
/// an index node, indexing it there, and embedding it in every
/// [`SearchHit`] routed back along the reverse path are all refcount
/// bumps on the same allocation.
pub type SharedFields = up2p_store::SharedFields;

/// A shared-resource record as the network layer sees it: key, community
/// and the extracted metadata fields a query is evaluated against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRecord {
    /// Content-derived key (hex of the object's `ResourceId`).
    pub key: String,
    /// Community identifier.
    pub community: String,
    /// Extracted `(field path, value)` metadata, shared by reference.
    pub fields: SharedFields,
}

impl ResourceRecord {
    /// Builds a record, converting any field container into the shared
    /// form (tests and examples pass plain `Vec`s).
    pub fn new(
        key: impl Into<String>,
        community: impl Into<String>,
        fields: impl Into<SharedFields>,
    ) -> ResourceRecord {
        ResourceRecord { key: key.into(), community: community.into(), fields: fields.into() }
    }
}

/// One search result returned to the querying peer. Per the paper
/// (§IV-C2) results carry the full metadata of the object so the user can
/// scrutinize them before downloading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchHit {
    /// Resource key.
    pub key: String,
    /// Peer that shares the object.
    pub provider: PeerId,
    /// Full extracted metadata (shared with the index node's record).
    pub fields: SharedFields,
    /// Hops the query travelled before matching.
    pub hops: u8,
}

/// Message kinds exchanged by the substrates. Not every substrate uses
/// every kind (Napster has no forwarded queries; Gnutella has no publish).
#[derive(Debug, Clone, PartialEq)]
pub enum MessageKind {
    /// A metadata query propagating through the overlay.
    Query {
        /// Originating peer (hits route back to it).
        origin: PeerId,
        /// Community scope.
        community: String,
        /// The query itself.
        query: Query,
    },
    /// Results travelling back toward the origin.
    QueryHit {
        /// Hits found at one peer.
        hits: Vec<SearchHit>,
    },
    /// Metadata upload to an index node (Napster server / super-peer).
    Publish {
        /// The record being published.
        record: ResourceRecord,
    },
    /// Removal of published metadata.
    Unpublish {
        /// Key being withdrawn.
        key: String,
    },
    /// Direct download request for an object.
    Retrieve {
        /// Key being fetched.
        key: String,
    },
    /// Download response (success).
    RetrieveOk {
        /// Key fetched.
        key: String,
    },
    /// Download response (provider does not have the object / is gone).
    RetrieveFail {
        /// Key that failed.
        key: String,
    },
    /// A peer advertising its attenuated routing digest layers to a
    /// neighbor (guided search; sent on connect and whenever a refresh
    /// changes the advertisement).
    DigestPush {
        /// Attenuated layers, nearest subtree first.
        layers: Vec<crate::digest::RoutingDigest>,
    },
    /// A peer asking a new neighbor for its digest (the connect-time
    /// handshake that bootstraps guided routing).
    DigestRequest,
}

/// A message in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Unique id for duplicate suppression (Gnutella's GUID role).
    pub id: u64,
    /// Immediate sender (reverse-path routing).
    pub from: PeerId,
    /// Remaining time-to-live in overlay hops.
    pub ttl: u8,
    /// Hops travelled so far.
    pub hops: u8,
    /// Payload.
    pub kind: MessageKind,
}

/// Default Gnutella-era TTL (the protocol shipped with 7).
pub const DEFAULT_TTL: u8 = 7;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_equality() {
        let r = ResourceRecord::new("ab", "c", vec![("o/name".to_string(), "x".to_string())]);
        assert_eq!(r.clone(), r);
        // cloning shares the metadata allocation
        assert!(SharedFields::ptr_eq(&r.fields, &r.clone().fields));
    }

    #[test]
    fn message_carries_query() {
        let m = Message {
            id: 1,
            from: PeerId(0),
            ttl: DEFAULT_TTL,
            hops: 0,
            kind: MessageKind::Query {
                origin: PeerId(0),
                community: "patterns".into(),
                query: Query::any_keyword("observer"),
            },
        };
        assert_eq!(m.ttl, 7);
        assert!(matches!(m.kind, MessageKind::Query { .. }));
    }
}
