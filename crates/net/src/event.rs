//! Event vocabulary for the whole-network discrete-event engine.
//!
//! The step-based substrates simulate each *search* to quiescence on a
//! private [`crate::sim::EventQueue`]; everything between searches
//! (churn, digest refreshes, the next query) happens instantaneously
//! from the simulation's point of view. [`crate::DesNetwork`] promotes
//! all of those occurrences to first-class timestamped events on one
//! global virtual-time queue, so a churn storm can land *while* a query
//! is still in flight. This module defines that event vocabulary.

use crate::message::Time;
use crate::peer::PeerId;

/// How a query copy propagates. Mirrors the step substrates' modes:
/// blind flooding uses [`PropMode::Flood`] throughout; guided search
/// forwards digest-selected copies as [`PropMode::Guided`] and falls
/// back to TTL'd random walkers ([`PropMode::Walk`]) when no neighbor
/// digest matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropMode {
    /// Forward to every neighbor except the sender (baseline).
    Flood,
    /// Forward along digest-selected neighbors, capped at the fanout.
    Guided,
    /// Random-walk fallback; survives revisits.
    Walk,
}

/// One timestamped occurrence on the global DES timeline.
///
/// `qid` fields index into the engine's per-query state table; `path`
/// vectors carry the route travelled so far, *excluding* the
/// destination (the last element is the immediate sender), exactly as
/// the step substrates' in-flight query copies do.
#[derive(Debug, Clone)]
pub enum DesEvent {
    /// A scheduled query leaves its origin.
    QueryIssue {
        /// Query state index.
        qid: u32,
    },
    /// A Gnutella-style query copy arrives at a peer.
    FloodQuery {
        /// Query state index.
        qid: u32,
        /// Destination peer.
        to: PeerId,
        /// Route travelled so far (last element = immediate sender).
        path: Vec<u32>,
        /// Remaining hops.
        ttl: u8,
        /// Propagation mode of this copy.
        mode: PropMode,
    },
    /// A FastTrack-style query copy arrives at a super-peer.
    SuperQuery {
        /// Query state index.
        qid: u32,
        /// Destination super-peer index.
        to: u32,
        /// Super indices travelled so far (last = sender).
        path: Vec<u32>,
        /// Remaining hops on the super overlay.
        ttl: u8,
        /// Propagation mode of this copy.
        mode: PropMode,
    },
    /// A Napster-style query arrives at the index server.
    ServerQuery {
        /// Query state index.
        qid: u32,
    },
    /// A batch of hits arrives back at the querying origin.
    HitDeliver {
        /// Query state index.
        qid: u32,
        /// Newly recorded hits in the batch.
        hits: u32,
    },
    /// A peer's session starts (`online`) or ends.
    Churn {
        /// The peer changing liveness.
        peer: PeerId,
        /// New liveness.
        online: bool,
    },
    /// A scheduled routing-digest rebuild.
    DigestRefresh,
}

impl DesEvent {
    /// One deterministic log line for the replay tests: everything that
    /// identifies the event, rendered without hashing or addresses so
    /// two same-seed runs produce byte-identical logs.
    pub fn log_line(&self, t: Time) -> String {
        match self {
            DesEvent::QueryIssue { qid } => format!("{t} issue q{qid}"),
            DesEvent::FloodQuery { qid, to, path, ttl, mode } => {
                format!("{t} query q{qid} -> {to} ttl={ttl} mode={mode:?} path={path:?}")
            }
            DesEvent::SuperQuery { qid, to, path, ttl, mode } => {
                format!("{t} squery q{qid} -> s{to} ttl={ttl} mode={mode:?} path={path:?}")
            }
            DesEvent::ServerQuery { qid } => format!("{t} server-query q{qid}"),
            DesEvent::HitDeliver { qid, hits } => format!("{t} hits q{qid} n={hits}"),
            DesEvent::Churn { peer, online } => format!("{t} churn {peer} online={online}"),
            DesEvent::DigestRefresh => format!("{t} digest-refresh"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_lines_are_stable() {
        let ev = DesEvent::FloodQuery {
            qid: 3,
            to: PeerId(7),
            path: vec![0, 2],
            ttl: 5,
            mode: PropMode::Flood,
        };
        assert_eq!(ev.log_line(40), "40 query q3 -> peer-7 ttl=5 mode=Flood path=[0, 2]");
        assert_eq!(DesEvent::DigestRefresh.log_line(9), "9 digest-refresh");
        assert_eq!(
            DesEvent::Churn { peer: PeerId(1), online: false }.log_line(2),
            "2 churn peer-1 online=false"
        );
    }
}
