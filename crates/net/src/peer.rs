//! Peer identity.

use std::fmt;

/// Identifier of a peer in a simulated network.
///
/// Peers are dense indices assigned by the network at construction; this
/// keeps adjacency lists and liveness bitmaps cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub u32);

impl PeerId {
    /// Index form for vector-indexed per-peer state.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        let p = PeerId(7);
        assert_eq!(p.to_string(), "peer-7");
        assert_eq!(p.index(), 7);
    }

    #[test]
    fn ordering_by_number() {
        assert!(PeerId(2) < PeerId(10));
    }
}
