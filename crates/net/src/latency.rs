//! Link latency models for the discrete-event simulation.

use crate::message::Time;
use crate::peer::PeerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Produces a one-way delay for a message on a link.
pub trait LatencyModel {
    /// Delay in virtual microseconds for a message `from` → `to`.
    fn delay(&mut self, from: PeerId, to: PeerId) -> Time;
}

/// Fixed delay on every link — keeps experiments deterministic when
/// latency is not the variable under study.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLatency(pub Time);

impl LatencyModel for ConstantLatency {
    fn delay(&mut self, _from: PeerId, _to: PeerId) -> Time {
        self.0
    }
}

/// Uniformly random delay in `[min, max)`, seeded for reproducibility.
/// Roughly models the wide-area RTT spread of 2002-era dial-up/DSL swarms.
#[derive(Debug, Clone)]
pub struct UniformLatency {
    min: Time,
    max: Time,
    rng: StdRng,
}

impl UniformLatency {
    /// Creates a model producing delays in `[min, max)` microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `min >= max`.
    pub fn new(min: Time, max: Time, seed: u64) -> Self {
        assert!(min < max, "empty latency range");
        UniformLatency { min, max, rng: StdRng::seed_from_u64(seed) }
    }
}

impl LatencyModel for UniformLatency {
    fn delay(&mut self, _from: PeerId, _to: PeerId) -> Time {
        self.rng.gen_range(self.min..self.max)
    }
}

/// Per-peer "coordinates" latency: each peer gets a random position on a
/// line; delay is proportional to distance plus a base cost. Gives
/// triangle-inequality-respecting, stable pairwise delays.
#[derive(Debug, Clone)]
pub struct CoordinateLatency {
    positions: Vec<f64>,
    base: Time,
    per_unit: Time,
}

impl CoordinateLatency {
    /// Creates coordinates for `n` peers with the given base cost and
    /// per-distance-unit cost (distance is in `[0,1]`).
    pub fn new(n: usize, base: Time, per_unit: Time, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let positions = (0..n).map(|_| rng.gen::<f64>()).collect();
        CoordinateLatency { positions, base, per_unit }
    }
}

impl LatencyModel for CoordinateLatency {
    fn delay(&mut self, from: PeerId, to: PeerId) -> Time {
        let a = self.positions.get(from.index()).copied().unwrap_or(0.5);
        let b = self.positions.get(to.index()).copied().unwrap_or(0.5);
        self.base + ((a - b).abs() * self.per_unit as f64) as Time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let mut m = ConstantLatency(50_000);
        assert_eq!(m.delay(PeerId(0), PeerId(1)), 50_000);
        assert_eq!(m.delay(PeerId(5), PeerId(9)), 50_000);
    }

    #[test]
    fn uniform_within_bounds_and_reproducible() {
        let mut a = UniformLatency::new(10, 100, 42);
        let mut b = UniformLatency::new(10, 100, 42);
        for _ in 0..100 {
            let d = a.delay(PeerId(0), PeerId(1));
            assert!((10..100).contains(&d));
            assert_eq!(d, b.delay(PeerId(0), PeerId(1)), "same seed, same sequence");
        }
    }

    #[test]
    #[should_panic(expected = "empty latency range")]
    fn uniform_rejects_empty_range() {
        UniformLatency::new(100, 100, 1);
    }

    #[test]
    fn coordinates_are_symmetric_and_stable() {
        let mut m = CoordinateLatency::new(10, 5_000, 100_000, 7);
        let d1 = m.delay(PeerId(2), PeerId(8));
        let d2 = m.delay(PeerId(8), PeerId(2));
        assert_eq!(d1, d2);
        assert!(d1 >= 5_000);
        assert_eq!(d1, m.delay(PeerId(2), PeerId(8)), "stable across calls");
    }
}
