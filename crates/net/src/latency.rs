//! Link latency models for the discrete-event simulation.

use crate::message::Time;
use crate::peer::PeerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Produces a one-way delay for a message on a link.
pub trait LatencyModel {
    /// Delay in virtual microseconds for a message `from` → `to`.
    fn delay(&mut self, from: PeerId, to: PeerId) -> Time;

    /// An independent copy of this model for one request of a pooled
    /// `search_batch`: same distribution, with any internal randomness
    /// re-derived deterministically from `salt` so concurrent workers
    /// never share (or race on) a generator. Stateless models return an
    /// exact clone and ignore the salt, which keeps batch serving
    /// bit-identical to sequential serving under constant/coordinate
    /// latency.
    fn fork(&self, salt: u64) -> Box<dyn LatencyModel + Send + Sync>;
}

/// Fixed delay on every link — keeps experiments deterministic when
/// latency is not the variable under study.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLatency(pub Time);

impl LatencyModel for ConstantLatency {
    fn delay(&mut self, _from: PeerId, _to: PeerId) -> Time {
        self.0
    }

    fn fork(&self, _salt: u64) -> Box<dyn LatencyModel + Send + Sync> {
        Box::new(*self)
    }
}

/// Uniformly random delay in `[min, max)`, seeded for reproducibility.
/// Roughly models the wide-area RTT spread of 2002-era dial-up/DSL swarms.
#[derive(Debug, Clone)]
pub struct UniformLatency {
    min: Time,
    max: Time,
    seed: u64,
    rng: StdRng,
}

impl UniformLatency {
    /// Creates a model producing delays in `[min, max)` microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `min >= max`.
    pub fn new(min: Time, max: Time, seed: u64) -> Self {
        assert!(min < max, "empty latency range");
        UniformLatency { min, max, seed, rng: StdRng::seed_from_u64(seed) }
    }
}

impl LatencyModel for UniformLatency {
    fn delay(&mut self, _from: PeerId, _to: PeerId) -> Time {
        self.rng.gen_range(self.min..self.max)
    }

    fn fork(&self, salt: u64) -> Box<dyn LatencyModel + Send + Sync> {
        // Re-derive a fresh stream from the creation seed and the salt
        // (splitmix-style mix) rather than cloning the advanced rng, so
        // every request of a batch gets a distinct reproducible stream.
        let mixed = self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
        Box::new(UniformLatency::new(self.min, self.max, mixed))
    }
}

/// Per-peer "coordinates" latency: each peer gets a random position on a
/// line; delay is proportional to distance plus a base cost. Gives
/// triangle-inequality-respecting, stable pairwise delays.
#[derive(Debug, Clone)]
pub struct CoordinateLatency {
    positions: Vec<f64>,
    base: Time,
    per_unit: Time,
}

impl CoordinateLatency {
    /// Creates coordinates for `n` peers with the given base cost and
    /// per-distance-unit cost (distance is in `[0,1]`).
    pub fn new(n: usize, base: Time, per_unit: Time, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let positions = (0..n).map(|_| rng.gen::<f64>()).collect();
        CoordinateLatency { positions, base, per_unit }
    }
}

impl LatencyModel for CoordinateLatency {
    fn delay(&mut self, from: PeerId, to: PeerId) -> Time {
        let a = self.positions.get(from.index()).copied().unwrap_or(0.5);
        let b = self.positions.get(to.index()).copied().unwrap_or(0.5);
        self.base + ((a - b).abs() * self.per_unit as f64) as Time
    }

    fn fork(&self, _salt: u64) -> Box<dyn LatencyModel + Send + Sync> {
        // Coordinates are fixed after construction; a clone serves the
        // identical pairwise delays.
        Box::new(self.clone())
    }
}

/// Declarative latency-model choice for [`crate::NetConfig`].
///
/// Boxed [`LatencyModel`]s are stateful and not `Clone`, so configs carry
/// this spec and build a fresh seeded model per substrate. The textual
/// form (`schema_value`/`from_schema_value`) lets a community schema name
/// its latency profile the way it names its `protocol`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencySpec {
    /// Fixed per-link delay in microseconds: `constant:20000`.
    Constant(Time),
    /// Uniform delay in `[min, max)` microseconds: `uniform:5000..50000`.
    Uniform(Time, Time),
    /// Coordinate-based delay `base + distance · per_unit`:
    /// `coordinate:5000+100000`.
    Coordinate {
        /// Base per-link cost in microseconds.
        base: Time,
        /// Cost per unit of coordinate distance (distance is in `[0,1]`).
        per_unit: Time,
    },
}

impl LatencySpec {
    /// Builds a fresh model for an `n`-peer substrate.
    pub fn build(self, n: usize, seed: u64) -> Box<dyn LatencyModel + Send + Sync> {
        match self {
            LatencySpec::Constant(us) => Box::new(ConstantLatency(us)),
            LatencySpec::Uniform(min, max) => Box::new(UniformLatency::new(min, max, seed)),
            LatencySpec::Coordinate { base, per_unit } => {
                Box::new(CoordinateLatency::new(n, base, per_unit, seed))
            }
        }
    }

    /// Parses the textual form. Returns `None` for unknown kinds,
    /// malformed numbers, or an empty `uniform` range.
    ///
    /// ```
    /// use up2p_net::LatencySpec;
    /// assert_eq!(
    ///     LatencySpec::from_schema_value("constant:20000"),
    ///     Some(LatencySpec::Constant(20_000)),
    /// );
    /// assert_eq!(LatencySpec::from_schema_value("dialup"), None);
    /// ```
    pub fn from_schema_value(v: &str) -> Option<LatencySpec> {
        let (kind, rest) = v.split_once(':')?;
        match kind {
            "constant" => rest.parse().ok().map(LatencySpec::Constant),
            "uniform" => {
                let (min, max) = rest.split_once("..")?;
                let (min, max) = (min.parse().ok()?, max.parse().ok()?);
                (min < max).then_some(LatencySpec::Uniform(min, max))
            }
            "coordinate" => {
                let (base, per_unit) = rest.split_once('+')?;
                Some(LatencySpec::Coordinate {
                    base: base.parse().ok()?,
                    per_unit: per_unit.parse().ok()?,
                })
            }
            _ => None,
        }
    }

    /// The textual form; round-trips through
    /// [`LatencySpec::from_schema_value`].
    pub fn schema_value(self) -> String {
        match self {
            LatencySpec::Constant(us) => format!("constant:{us}"),
            LatencySpec::Uniform(min, max) => format!("uniform:{min}..{max}"),
            LatencySpec::Coordinate { base, per_unit } => format!("coordinate:{base}+{per_unit}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let mut m = ConstantLatency(50_000);
        assert_eq!(m.delay(PeerId(0), PeerId(1)), 50_000);
        assert_eq!(m.delay(PeerId(5), PeerId(9)), 50_000);
    }

    #[test]
    fn uniform_within_bounds_and_reproducible() {
        let mut a = UniformLatency::new(10, 100, 42);
        let mut b = UniformLatency::new(10, 100, 42);
        for _ in 0..100 {
            let d = a.delay(PeerId(0), PeerId(1));
            assert!((10..100).contains(&d));
            assert_eq!(d, b.delay(PeerId(0), PeerId(1)), "same seed, same sequence");
        }
    }

    #[test]
    #[should_panic(expected = "empty latency range")]
    fn uniform_rejects_empty_range() {
        UniformLatency::new(100, 100, 1);
    }

    #[test]
    fn latency_spec_round_trips_and_rejects_unknown_values() {
        let specs = [
            LatencySpec::Constant(20_000),
            LatencySpec::Uniform(5_000, 50_000),
            LatencySpec::Coordinate { base: 5_000, per_unit: 100_000 },
        ];
        for spec in specs {
            let text = spec.schema_value();
            assert_eq!(
                LatencySpec::from_schema_value(&text),
                Some(spec),
                "{text} must round-trip"
            );
        }
        for bad in [
            "",
            "constant",
            "constant:",
            "constant:fast",
            "uniform:100",
            "uniform:100..50",
            "uniform:100..100",
            "coordinate:5000",
            "dialup:56000",
        ] {
            assert_eq!(LatencySpec::from_schema_value(bad), None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn latency_spec_builds_working_models() {
        let mut m = LatencySpec::Constant(7_000).build(4, 1);
        assert_eq!(m.delay(PeerId(0), PeerId(1)), 7_000);
        let mut m = LatencySpec::Uniform(10, 100).build(4, 1);
        assert!((10..100).contains(&m.delay(PeerId(0), PeerId(1))));
        let mut m = LatencySpec::Coordinate { base: 500, per_unit: 1_000 }.build(4, 1);
        assert!(m.delay(PeerId(0), PeerId(1)) >= 500);
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        // Constant/coordinate forks reproduce the parent exactly.
        let mut c = ConstantLatency(9_000);
        let mut cf = c.fork(3);
        assert_eq!(cf.delay(PeerId(0), PeerId(1)), c.delay(PeerId(0), PeerId(1)));
        let mut geo = CoordinateLatency::new(8, 1_000, 50_000, 11);
        let mut geo_fork = geo.fork(7);
        assert_eq!(geo_fork.delay(PeerId(2), PeerId(5)), geo.delay(PeerId(2), PeerId(5)));
        // Uniform forks: same salt → same stream, regardless of how far
        // the parent has advanced; different salts → distinct streams.
        let mut u = UniformLatency::new(10, 1_000, 42);
        let mut f1 = u.fork(1);
        u.delay(PeerId(0), PeerId(1)); // advancing the parent must not change forks
        let mut f1_again = u.fork(1);
        let mut f2 = u.fork(2);
        let a: Vec<Time> = (0..32).map(|_| f1.delay(PeerId(0), PeerId(1))).collect();
        let b: Vec<Time> = (0..32).map(|_| f1_again.delay(PeerId(0), PeerId(1))).collect();
        let c: Vec<Time> = (0..32).map(|_| f2.delay(PeerId(0), PeerId(1))).collect();
        assert!(a.iter().all(|d| (10..1_000).contains(d)), "fork respects bounds");
        assert_eq!(a, b, "same salt reproduces the same stream");
        assert_ne!(a, c, "different salts give distinct streams");
    }

    #[test]
    fn coordinates_are_symmetric_and_stable() {
        let mut m = CoordinateLatency::new(10, 5_000, 100_000, 7);
        let d1 = m.delay(PeerId(2), PeerId(8));
        let d2 = m.delay(PeerId(8), PeerId(2));
        assert_eq!(d1, d2);
        assert!(d1 >= 5_000);
        assert_eq!(d1, m.delay(PeerId(2), PeerId(8)), "stable across calls");
    }
}
