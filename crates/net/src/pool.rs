//! Thread-pool fan-out for batch query serving.
//!
//! [`serve_batch`] is the pooled driver behind
//! [`crate::PeerNetwork::search_batch`] on the index-serving substrates:
//! `workers` scoped threads evaluate a strided partition of the request
//! indices against a shared read-only serving plane (the per-request
//! evaluator takes `&self`-style shared state — for the Napster server
//! and FastTrack super-peers that is the read-guard-only search path of
//! [`crate::ShardedIndexNode`]), stream `(index, result)` pairs back
//! over a crossbeam channel, and the caller reassembles them in request
//! order so batch output is deterministic and identical to sequential
//! serving.
//!
//! The strided partition (worker `w` takes indices `w, w+N, w+2N, ...`)
//! exists because the crossbeam shim's `Receiver` is single-consumer:
//! work cannot be pulled from a shared queue, so it is dealt like cards
//! instead — which also keeps the assignment independent of timing.

use crossbeam::channel;

/// Evaluates `count` requests with `workers` threads, returning results
/// in request order. `eval(i)` must be safe to call from any thread
/// (shared state behind read guards); each index is evaluated exactly
/// once. With `workers <= 1` (or a single request) evaluation is inline
/// — no threads, no channel.
///
/// ```
/// let squares = up2p_net::serve_batch(4, 10, |i| (i * i) as u64);
/// assert_eq!(squares, (0..10).map(|i| (i * i) as u64).collect::<Vec<_>>());
/// ```
pub fn serve_batch<R, F>(workers: usize, count: usize, eval: F) -> Vec<R>
where
    R: Send + Default,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.max(1).min(count);
    if workers <= 1 {
        return (0..count).map(eval).collect();
    }
    let mut out: Vec<R> = Vec::new();
    out.resize_with(count, R::default);
    let (tx, rx) = channel::unbounded::<(usize, R)>();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let eval = &eval;
            scope.spawn(move || {
                let mut i = w;
                while i < count {
                    if tx.send((i, eval(i))).is_err() {
                        return;
                    }
                    i += workers;
                }
            });
        }
        drop(tx);
        while let Ok((i, result)) = rx.recv() {
            if let Some(slot) = out.get_mut(i) {
                *slot = result;
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_arrive_in_request_order_at_any_width() {
        for workers in [0, 1, 2, 3, 8, 64] {
            let calls = AtomicU64::new(0);
            let out = serve_batch(workers, 23, |i| {
                calls.fetch_add(1, Ordering::Relaxed);
                i * 2
            });
            assert_eq!(out, (0..23).map(|i| i * 2).collect::<Vec<_>>(), "workers={workers}");
            assert_eq!(calls.load(Ordering::Relaxed), 23, "each index evaluated exactly once");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let out: Vec<u64> = serve_batch(8, 0, |_| 1);
        assert!(out.is_empty());
    }
}
