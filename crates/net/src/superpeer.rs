//! FastTrack-style super-peer substrate: leaves publish metadata to their
//! super-peer; queries flood only the (much smaller) super-peer overlay.
//!
//! Sits between Napster and Gnutella in the E6 comparison: no single
//! server, but message cost scales with super-peer edges rather than all
//! peers. Every super-peer's record table is an [`IndexNode`], so each
//! super answers a query with a posting-list lookup over its leaves'
//! records instead of scanning them.

use crate::digest::{DigestConfig, RouteTable, RoutingDigest};
use crate::index_node::IndexNode;
use crate::latency::LatencyModel;
use crate::message::{ResourceRecord, SearchHit, Time};
use crate::peer::PeerId;
use crate::sim::EventQueue;
use crate::stats::{MsgKind, NetStats, RetrieveOutcome, SearchOutcome};
use crate::topology::Topology;
use crate::traits::PeerNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashSet};
use up2p_store::Query;

/// Configuration for the super-peer substrate.
#[derive(Debug, Clone, Copy)]
pub struct SuperPeerConfig {
    /// Number of super-peers (the first `supers` peer ids).
    pub supers: usize,
    /// Each-side neighbor count of the super-peer ring lattice before
    /// small-world rewiring.
    pub super_degree: usize,
    /// TTL for flooding among super-peers.
    pub ttl: u8,
    /// Routing-digest layer over the super overlay; `enabled: true`
    /// prunes the super-peer flood the way E10's guided Gnutella does.
    pub digests: DigestConfig,
}

impl Default for SuperPeerConfig {
    fn default() -> Self {
        SuperPeerConfig { supers: 8, super_degree: 2, ttl: 4, digests: DigestConfig::default() }
    }
}

/// How a super-overlay query copy propagates (mirrors the flooding
/// substrate's guided-search modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Propagation {
    Flood,
    Guided,
    Walk,
}

/// The super-peer (FastTrack) substrate.
pub struct SuperPeerNetwork {
    config: SuperPeerConfig,
    /// peer index → index of its super-peer (supers map to themselves).
    super_of: Vec<usize>,
    /// Overlay among super-peers; `PeerId` in this graph is the *super
    /// index* (0..supers), not the global peer id.
    super_topology: Topology,
    /// Per-super metadata index over its leaves' records.
    indexes: Vec<IndexNode>,
    /// Per-peer owned object keys (for retrieval).
    owned: Vec<BTreeSet<String>>,
    alive: Vec<bool>,
    latency: Box<dyn LatencyModel + Send>,
    stats: NetStats,
    /// Per-directed-edge attenuated digests over the super overlay.
    routes: RouteTable,
    /// Seeded source for the random-walk fallback.
    walk_rng: StdRng,
}

impl std::fmt::Debug for SuperPeerNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuperPeerNetwork")
            .field("peers", &self.alive.len())
            .field("config", &self.config)
            .finish()
    }
}

struct SuperQueryEvent {
    /// Destination super index.
    to: usize,
    /// Super indices travelled (last = sender).
    path: Vec<usize>,
    ttl: u8,
    mode: Propagation,
}

impl SuperPeerNetwork {
    /// Creates a network of `n` peers. The first `config.supers` ids are
    /// super-peers; every other peer is assigned to a uniformly random
    /// super (seeded).
    ///
    /// # Panics
    ///
    /// Panics if `config.supers` is zero or exceeds `n`.
    pub fn new(
        n: usize,
        config: SuperPeerConfig,
        latency: Box<dyn LatencyModel + Send>,
        seed: u64,
    ) -> Self {
        assert!(config.supers > 0 && config.supers <= n, "invalid super count");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut super_of = Vec::with_capacity(n);
        for i in 0..n {
            if i < config.supers {
                super_of.push(i);
            } else {
                super_of.push(rng.gen_range(0..config.supers));
            }
        }
        let super_topology = if config.supers <= 3 {
            Topology::ring_lattice(config.supers, 1)
        } else {
            Topology::small_world(config.supers, config.super_degree, 0.2, seed ^ 0x5eed)
        };
        SuperPeerNetwork {
            config,
            super_of,
            super_topology,
            indexes: std::iter::repeat_with(IndexNode::new).take(config.supers).collect(),
            owned: vec![BTreeSet::new(); n],
            alive: vec![true; n],
            latency,
            stats: NetStats::new(),
            routes: RouteTable::new(config.digests),
            walk_rng: StdRng::seed_from_u64(seed ^ 0x3a1f_7a1c),
        }
    }

    /// The super-peer index a peer is attached to.
    pub fn super_of(&self, peer: PeerId) -> usize {
        self.super_of[peer.index()]
    }

    /// Is the given peer a super-peer?
    pub fn is_super(&self, peer: PeerId) -> bool {
        peer.index() < self.config.supers
    }

    fn super_peer_id(&self, super_index: usize) -> PeerId {
        PeerId(super_index as u32)
    }

    /// Rebuilds dirty routing digests over the super overlay, counting
    /// the `DigestRequest`/`DigestPush` exchange. Lazy, like the flooding
    /// substrate: the next guided search triggers it.
    pub fn refresh_digests(&mut self) {
        let cfg = self.config.digests;
        if !cfg.enabled || !self.routes.needs_refresh() {
            return;
        }
        let indexes = &self.indexes;
        let (requests, pushes) = self.routes.refresh(&self.super_topology, |s| {
            let mut d = RoutingDigest::new(cfg.log2_bits);
            d.add_node(&indexes[s as usize]);
            d
        });
        self.stats.sent_n(MsgKind::DigestRequest, requests);
        self.stats.sent_n(MsgKind::DigestPush, pushes);
    }

    /// Forwards one guided query copy across the super overlay:
    /// digest-selected neighbors first, random walkers as the fallback.
    #[allow(clippy::too_many_arguments)]
    fn forward_guided(
        &mut self,
        t: Time,
        from: usize,
        sender: Option<usize>,
        path: &[usize],
        ttl: u8,
        community: &str,
        query: &Query,
        walk_width: usize,
        outcome: &mut SearchOutcome,
        queue: &mut EventQueue<SuperQueryEvent>,
    ) {
        if ttl == 0 {
            return;
        }
        let mut candidates: Vec<(u8, usize)> = self
            .super_topology
            .neighbors(PeerId(from as u32))
            .map(|p| p.index())
            .filter(|&nb| Some(nb) != sender)
            .filter_map(|nb| {
                self.routes
                    .min_depth(nb as u32, from as u32, community, query, ttl)
                    .map(|d| (d, nb))
            })
            .collect();
        candidates.sort_unstable();
        let targets: Vec<(usize, Propagation)> = if candidates.is_empty() {
            let mut options: Vec<usize> = self
                .super_topology
                .neighbors(PeerId(from as u32))
                .map(|p| p.index())
                .filter(|&nb| Some(nb) != sender)
                .collect();
            let mut walkers = Vec::new();
            while walkers.len() < walk_width && !options.is_empty() {
                let i = self.walk_rng.gen_range(0..options.len());
                walkers.push((options.swap_remove(i), Propagation::Walk));
            }
            walkers
        } else {
            candidates
                .into_iter()
                .take(self.config.digests.fanout.max(1))
                .map(|(_, nb)| (nb, Propagation::Guided))
                .collect()
        };
        for (nb, mode) in targets {
            self.stats.sent(MsgKind::Query);
            outcome.messages += 1;
            let at = t + self.latency.delay(self.super_peer_id(from), self.super_peer_id(nb));
            let mut next_path = path.to_vec();
            next_path.push(from);
            queue.push(at, SuperQueryEvent { to: nb, path: next_path, ttl: ttl - 1, mode });
        }
    }
}

impl PeerNetwork for SuperPeerNetwork {
    fn protocol_name(&self) -> &'static str {
        "FastTrack"
    }

    fn peer_count(&self) -> usize {
        self.alive.len()
    }

    fn is_alive(&self, peer: PeerId) -> bool {
        self.alive.get(peer.index()).copied().unwrap_or(false)
    }

    fn set_alive(&mut self, peer: PeerId, alive: bool) {
        if let Some(a) = self.alive.get_mut(peer.index()) {
            *a = alive;
        }
    }

    fn publish(&mut self, provider: PeerId, record: ResourceRecord) {
        if !self.is_alive(provider) {
            return;
        }
        let s = self.super_of(provider);
        if !self.is_super(provider) {
            self.stats.sent(MsgKind::Publish); // leaf → super upload
        }
        self.owned[provider.index()].insert(record.key.clone());
        self.indexes[s].insert(provider, &record);
        if self.config.digests.enabled {
            self.routes.mark_dirty(s as u32);
        }
    }

    fn unpublish(&mut self, provider: PeerId, key: &str) {
        let s = self.super_of(provider);
        if !self.is_super(provider) {
            self.stats.sent(MsgKind::Unpublish);
        }
        self.owned[provider.index()].remove(key);
        self.indexes[s].remove(provider, key);
        if self.config.digests.enabled {
            self.routes.mark_dirty(s as u32);
        }
    }

    fn search(&mut self, origin: PeerId, community: &str, query: &Query) -> SearchOutcome {
        self.stats.queries += 1;
        let mut outcome = SearchOutcome::default();
        if !self.is_alive(origin) {
            return outcome;
        }
        let guided = self.config.digests.enabled;
        if guided {
            self.refresh_digests();
        }
        let s0 = self.super_of(origin);
        let mut uplink: Time = 0;
        if !self.is_super(origin) {
            self.stats.sent(MsgKind::Query);
            outcome.messages += 1;
            uplink = self.latency.delay(origin, self.super_peer_id(s0));
            if !self.is_alive(self.super_peer_id(s0)) {
                self.stats.dropped += 1;
                outcome.latency = uplink;
                return outcome; // orphaned leaf: its super is gone
            }
        }

        let mut queue: EventQueue<SuperQueryEvent> = EventQueue::new();
        let mut seen: HashSet<usize> = HashSet::new();
        let mode = if guided { Propagation::Guided } else { Propagation::Flood };
        queue.push(uplink, SuperQueryEvent { to: s0, path: Vec::new(), ttl: self.config.ttl, mode });

        let mut hit_seen: HashSet<(String, PeerId)> = HashSet::new();
        let mut last_hit_at: Time = 0;
        let mut quiescence: Time = 0;
        while let Some((t, ev)) = queue.pop() {
            quiescence = quiescence.max(t);
            let super_id = self.super_peer_id(ev.to);
            if !self.is_alive(super_id) {
                self.stats.dropped += 1;
                continue;
            }
            let first_visit = seen.insert(ev.to);
            match ev.mode {
                // a walker survives revisits (it merely skips
                // re-evaluating the index); everything else deduplicates
                Propagation::Walk => {}
                _ if !first_visit => continue,
                _ => {}
            }
            // answer from this super's index: candidates come from the
            // posting lists, liveness filters only that candidate set
            let hops = ev.path.len() as u8 + u8::from(!self.is_super(origin));
            let mut local_hits: Vec<SearchHit> = Vec::new();
            if first_visit {
                let alive = &self.alive;
                let hit_seen = &mut hit_seen;
                let local_hits = &mut local_hits;
                self.indexes[ev.to].search(
                    community,
                    query,
                    |p| alive.get(p.index()).copied().unwrap_or(false),
                    |key, p, fields| {
                        if hit_seen.insert((key.to_string(), p)) {
                            local_hits.push(SearchHit {
                                key: key.to_string(),
                                provider: p,
                                fields: fields.clone(),
                                hops,
                            });
                        }
                    },
                );
            }
            if !local_hits.is_empty() {
                // back along super path, then down to the leaf
                let mut back: Time = 0;
                let mut prev = ev.to;
                for &node in ev.path.iter().rev() {
                    self.stats.sent(MsgKind::QueryHit);
                    outcome.messages += 1;
                    back += self
                        .latency
                        .delay(self.super_peer_id(prev), self.super_peer_id(node));
                    prev = node;
                }
                if !self.is_super(origin) {
                    self.stats.sent(MsgKind::QueryHit);
                    outcome.messages += 1;
                    back += self.latency.delay(self.super_peer_id(s0), origin);
                }
                let arrival = t + back;
                for h in local_hits {
                    self.stats.hit(h.hops);
                    last_hit_at = last_hit_at.max(arrival);
                    outcome.first_hit_latency =
                        Some(outcome.first_hit_latency.map_or(arrival, |f| f.min(arrival)));
                    outcome.hits.push(h);
                }
                if ev.mode != Propagation::Flood {
                    // frontier stop: this copy found results, stop paying
                    // for forwarding
                    continue;
                }
            }
            if ev.ttl == 0 {
                continue;
            }
            let sender = ev.path.last().copied();
            if ev.mode == Propagation::Flood {
                // flood to neighboring supers
                let neighbors: Vec<usize> = self
                    .super_topology
                    .neighbors(PeerId(ev.to as u32))
                    .map(|p| p.index())
                    .collect();
                for nb in neighbors {
                    if Some(nb) == sender {
                        continue;
                    }
                    self.stats.sent(MsgKind::Query);
                    outcome.messages += 1;
                    let at = t
                        + self
                            .latency
                            .delay(self.super_peer_id(ev.to), self.super_peer_id(nb));
                    let mut path = ev.path.clone();
                    path.push(ev.to);
                    queue.push(at, SuperQueryEvent {
                        to: nb,
                        path,
                        ttl: ev.ttl - 1,
                        mode: Propagation::Flood,
                    });
                }
            } else {
                // guided copies and walkers re-consult the digests every
                // hop; a fallback at the origin's super spawns the full
                // walker width, mid-path dead ends continue as one walker
                let width =
                    if sender.is_none() { self.config.digests.walk_width } else { 1 };
                self.forward_guided(
                    t,
                    ev.to,
                    sender,
                    &ev.path,
                    ev.ttl,
                    community,
                    query,
                    width,
                    &mut outcome,
                    &mut queue,
                );
            }
        }

        outcome.latency = if outcome.hits.is_empty() { quiescence } else { last_hit_at };
        if !outcome.hits.is_empty() {
            self.stats.queries_with_hits += 1;
        }
        outcome
    }

    fn retrieve(&mut self, origin: PeerId, provider: PeerId, key: &str) -> RetrieveOutcome {
        self.stats.retrieves += 1;
        if !self.is_alive(origin) {
            // a dead peer cannot send: the request never leaves the origin
            return RetrieveOutcome::Unavailable;
        }
        self.stats.sent(MsgKind::Retrieve);
        if !self.is_alive(provider) {
            self.stats.dropped += 1;
            return RetrieveOutcome::Unavailable;
        }
        if !self.owned[provider.index()].contains(key) {
            self.stats.sent(MsgKind::RetrieveFail);
            return RetrieveOutcome::Unavailable;
        }
        self.stats.sent(MsgKind::RetrieveOk);
        self.stats.retrieves_ok += 1;
        let latency = self.latency.delay(origin, provider) + self.latency.delay(provider, origin);
        RetrieveOutcome::Fetched { provider, latency }
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = NetStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConstantLatency;

    fn record(key: &str, name: &str) -> ResourceRecord {
        ResourceRecord::new(key, "c", vec![("o/name".to_string(), name.to_string())])
    }

    fn net(n: usize, supers: usize) -> SuperPeerNetwork {
        SuperPeerNetwork::new(
            n,
            SuperPeerConfig { supers, super_degree: 2, ttl: 6, ..SuperPeerConfig::default() },
            Box::new(ConstantLatency(1_000)),
            42,
        )
    }

    #[test]
    fn leaves_are_assigned_to_supers() {
        let net = net(50, 5);
        for p in 0..50u32 {
            let s = net.super_of(PeerId(p));
            assert!(s < 5);
            if p < 5 {
                assert_eq!(s, p as usize, "supers are their own super");
                assert!(net.is_super(PeerId(p)));
            }
        }
    }

    #[test]
    fn publish_search_across_supers() {
        let mut net = net(50, 5);
        net.publish(PeerId(30), record("k", "observer"));
        let out = net.search(PeerId(40), "c", &Query::any_keyword("observer"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].provider, PeerId(30));
        assert!(out.messages >= 2, "at least uplink + some flooding");
    }

    #[test]
    fn message_cost_scales_with_supers_not_peers() {
        let mut big_flat = net(400, 5);
        big_flat.publish(PeerId(300), record("k", "x"));
        let out = big_flat.search(PeerId(200), "c", &Query::any_keyword("x"));
        // super overlay has 5 nodes / ~10 edges; cost must not approach 400
        assert!(out.messages < 50, "messages {} should be tiny", out.messages);
        assert_eq!(out.hits.len(), 1);
    }

    #[test]
    fn dead_super_orphans_its_leaves() {
        let mut net = net(20, 4);
        // find a leaf and kill its super
        let leaf = PeerId(15);
        let s = net.super_of(leaf);
        net.publish(PeerId(10), record("k", "x"));
        net.set_alive(PeerId(s as u32), false);
        let out = net.search(leaf, "c", &Query::any_keyword("x"));
        assert!(out.hits.is_empty(), "orphaned leaf cannot search");
    }

    #[test]
    fn dead_provider_filtered() {
        let mut net = net(20, 4);
        net.publish(PeerId(10), record("k", "x"));
        net.set_alive(PeerId(10), false);
        let out = net.search(PeerId(12), "c", &Query::any_keyword("x"));
        assert!(out.hits.is_empty());
        assert!(!net.retrieve(PeerId(12), PeerId(10), "k").is_fetched());
    }

    #[test]
    fn super_origin_searches_without_uplink() {
        let mut net = net(20, 4);
        net.publish(PeerId(0), record("k", "x"));
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].hops, 0, "own index, no uplink hop");
    }

    #[test]
    fn retrieve_round_trip() {
        let mut net = net(20, 4);
        net.publish(PeerId(10), record("k", "x"));
        let got = net.retrieve(PeerId(12), PeerId(10), "k");
        assert!(got.is_fetched());
        if let RetrieveOutcome::Fetched { latency, .. } = got {
            assert_eq!(latency, 2_000);
        }
    }

    #[test]
    fn unpublish_removes_from_super_index() {
        let mut net = net(20, 4);
        net.publish(PeerId(10), record("k", "x"));
        net.unpublish(PeerId(10), "k");
        let out = net.search(PeerId(12), "c", &Query::any_keyword("x"));
        assert!(out.hits.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid super count")]
    fn zero_supers_rejected() {
        net(10, 0);
    }

    #[test]
    fn retrieve_failure_kinds_are_counted() {
        let mut net = net(20, 4);
        net.publish(PeerId(10), record("k", "x"));
        assert!(net.retrieve(PeerId(12), PeerId(10), "k").is_fetched());
        // live provider without the object answers RetrieveFail
        assert!(!net.retrieve(PeerId(12), PeerId(11), "k").is_fetched());
        // dead provider: the request is dropped, no response of any kind
        net.set_alive(PeerId(10), false);
        assert!(!net.retrieve(PeerId(12), PeerId(10), "k").is_fetched());
        assert_eq!(net.stats().count(MsgKind::Retrieve), 3);
        assert_eq!(net.stats().count(MsgKind::RetrieveOk), 1);
        assert_eq!(net.stats().count(MsgKind::RetrieveFail), 1);
        assert_eq!(net.stats().dropped, 1);
        assert_eq!(net.stats().retrieves, 3);
        assert_eq!(net.stats().retrieves_ok, 1);
    }

    #[test]
    fn dead_origin_retrieve_sends_no_messages() {
        let mut net = net(20, 4);
        net.publish(PeerId(10), record("k", "x"));
        net.reset_stats();
        net.set_alive(PeerId(12), false);
        assert!(!net.retrieve(PeerId(12), PeerId(10), "k").is_fetched());
        assert_eq!(net.stats().retrieves, 1, "the attempt is still counted");
        assert_eq!(net.stats().messages, 0, "a dead peer cannot send");
    }

    fn guided_net(n: usize, supers: usize) -> SuperPeerNetwork {
        SuperPeerNetwork::new(
            n,
            SuperPeerConfig {
                supers,
                super_degree: 2,
                ttl: 6,
                digests: DigestConfig::guided(),
            },
            Box::new(ConstantLatency(1_000)),
            42,
        )
    }

    #[test]
    fn guided_super_flood_still_finds_records() {
        let mut blind = net(50, 8);
        let mut guided = guided_net(50, 8);
        for target in [PeerId(30), PeerId(45)] {
            blind.publish(target, record(&format!("k{target:?}"), "observer"));
            guided.publish(target, record(&format!("k{target:?}"), "observer"));
        }
        let b = blind.search(PeerId(40), "c", &Query::any_keyword("observer"));
        let g = guided.search(PeerId(40), "c", &Query::any_keyword("observer"));
        assert!(!g.hits.is_empty(), "guided search still reaches a replica");
        // guided hits ⊆ blind hits (same assignment seed, same records)
        let blind_hits: BTreeSet<(String, PeerId)> =
            b.hits.into_iter().map(|h| (h.key, h.provider)).collect();
        for h in &g.hits {
            assert!(blind_hits.contains(&(h.key.clone(), h.provider)), "{h:?}");
        }
        assert!(
            g.messages <= b.messages,
            "guided ({}) must not exceed the blind super flood ({})",
            g.messages,
            b.messages
        );
    }

    #[test]
    fn guided_super_search_counts_digest_traffic() {
        let mut net = guided_net(50, 8);
        net.publish(PeerId(30), record("k", "x"));
        net.search(PeerId(40), "c", &Query::any_keyword("x"));
        // one request per directed super-overlay edge, pushed once
        let edges = 2 * net.super_topology.edge_count() as u64;
        assert_eq!(net.stats().count(MsgKind::DigestRequest), edges);
        assert_eq!(net.stats().count(MsgKind::DigestPush), edges);
        // a second search with no publishes in between pays nothing new
        net.search(PeerId(40), "c", &Query::any_keyword("x"));
        assert_eq!(net.stats().count(MsgKind::DigestRequest), edges);
        assert_eq!(net.stats().count(MsgKind::DigestPush), edges);
    }
}
