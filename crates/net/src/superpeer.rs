//! FastTrack-style super-peer substrate: leaves publish metadata to their
//! super-peer; queries flood only the (much smaller) super-peer overlay.
//!
//! Sits between Napster and Gnutella in the E6 comparison: no single
//! server, but message cost scales with super-peer edges rather than all
//! peers. Every super-peer's record table is an [`IndexNode`], so each
//! super answers a query with a posting-list lookup over its leaves'
//! records instead of scanning them.

use crate::digest::{DigestConfig, RouteTable, RoutingDigest};
use crate::index_node::IndexNode;
use crate::latency::LatencyModel;
use crate::message::{ResourceRecord, SearchHit, Time};
use crate::peer::PeerId;
use crate::pool::serve_batch;
use crate::sim::EventQueue;
use crate::stats::{MsgKind, NetStats, RetrieveOutcome, SearchOutcome};
use crate::topology::Topology;
use crate::traits::{PeerNetwork, SearchRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashSet};
use up2p_store::Query;

/// Configuration for the super-peer substrate.
#[derive(Debug, Clone, Copy)]
pub struct SuperPeerConfig {
    /// Number of super-peers (the first `supers` peer ids).
    pub supers: usize,
    /// Each-side neighbor count of the super-peer ring lattice before
    /// small-world rewiring.
    pub super_degree: usize,
    /// TTL for flooding among super-peers.
    pub ttl: u8,
    /// Routing-digest layer over the super overlay; `enabled: true`
    /// prunes the super-peer flood the way E10's guided Gnutella does.
    pub digests: DigestConfig,
}

impl Default for SuperPeerConfig {
    fn default() -> Self {
        SuperPeerConfig { supers: 8, super_degree: 2, ttl: 4, digests: DigestConfig::default() }
    }
}

/// How a super-overlay query copy propagates (mirrors the flooding
/// substrate's guided-search modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Propagation {
    Flood,
    Guided,
    Walk,
}

/// The super-peer (FastTrack) substrate.
pub struct SuperPeerNetwork {
    config: SuperPeerConfig,
    /// peer index → index of its super-peer (supers map to themselves).
    super_of: Vec<usize>,
    /// Overlay among super-peers; `PeerId` in this graph is the *super
    /// index* (0..supers), not the global peer id.
    super_topology: Topology,
    /// Per-super metadata index over its leaves' records.
    indexes: Vec<IndexNode>,
    /// Per-peer owned object keys (for retrieval).
    owned: Vec<BTreeSet<String>>,
    alive: Vec<bool>,
    latency: Box<dyn LatencyModel + Send + Sync>,
    stats: NetStats,
    /// Per-directed-edge attenuated digests over the super overlay.
    routes: RouteTable,
    /// Seeded source for the random-walk fallback.
    walk_rng: StdRng,
}

impl std::fmt::Debug for SuperPeerNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuperPeerNetwork")
            .field("peers", &self.alive.len())
            .field("config", &self.config)
            .finish()
    }
}

struct SuperQueryEvent {
    /// Destination super index.
    to: usize,
    /// Super indices travelled (last = sender).
    path: Vec<usize>,
    ttl: u8,
    mode: Propagation,
}

/// Read-only borrow of everything one query evaluation consults — the
/// serving plane of the super overlay. [`SuperPeerNetwork::search`]
/// builds it next to the mutable accounting (latency model, walker rng,
/// statistics), and `search_batch` shares one plane across pool workers,
/// giving each request a forked latency model, its own seeded walker rng
/// and a private [`NetStats`] merged back in request order.
struct ServePlane<'a> {
    config: &'a SuperPeerConfig,
    super_of: &'a [usize],
    super_topology: &'a Topology,
    indexes: &'a [IndexNode],
    alive: &'a [bool],
    routes: &'a RouteTable,
}

impl ServePlane<'_> {
    fn is_alive(&self, peer: PeerId) -> bool {
        self.alive.get(peer.index()).copied().unwrap_or(false)
    }

    fn is_super(&self, peer: PeerId) -> bool {
        peer.index() < self.config.supers
    }

    fn super_peer_id(&self, super_index: usize) -> PeerId {
        PeerId(super_index as u32)
    }

    /// Forwards one guided query copy across the super overlay:
    /// digest-selected neighbors first, random walkers as the fallback.
    #[allow(clippy::too_many_arguments)]
    fn forward_guided(
        &self,
        latency: &mut dyn LatencyModel,
        walk_rng: &mut StdRng,
        stats: &mut NetStats,
        t: Time,
        from: usize,
        sender: Option<usize>,
        path: &[usize],
        ttl: u8,
        community: &str,
        query: &Query,
        walk_width: usize,
        outcome: &mut SearchOutcome,
        queue: &mut EventQueue<SuperQueryEvent>,
    ) {
        if ttl == 0 {
            return;
        }
        let mut candidates: Vec<(u8, usize)> = self
            .super_topology
            .neighbors(PeerId(from as u32))
            .map(|p| p.index())
            .filter(|&nb| Some(nb) != sender)
            .filter_map(|nb| {
                self.routes
                    .min_depth(nb as u32, from as u32, community, query, ttl)
                    .map(|d| (d, nb))
            })
            .collect();
        candidates.sort_unstable();
        let targets: Vec<(usize, Propagation)> = if candidates.is_empty() {
            let mut options: Vec<usize> = self
                .super_topology
                .neighbors(PeerId(from as u32))
                .map(|p| p.index())
                .filter(|&nb| Some(nb) != sender)
                .collect();
            let mut walkers = Vec::new();
            while walkers.len() < walk_width && !options.is_empty() {
                let i = walk_rng.gen_range(0..options.len());
                walkers.push((options.swap_remove(i), Propagation::Walk));
            }
            walkers
        } else {
            candidates
                .into_iter()
                .take(self.config.digests.fanout.max(1))
                .map(|(_, nb)| (nb, Propagation::Guided))
                .collect()
        };
        for (nb, mode) in targets {
            stats.sent(MsgKind::Query);
            outcome.messages += 1;
            let at = t + latency.delay(self.super_peer_id(from), self.super_peer_id(nb));
            let mut next_path = path.to_vec();
            next_path.push(from);
            queue.push(at, SuperQueryEvent { to: nb, path: next_path, ttl: ttl - 1, mode });
        }
    }

    /// Runs one query to quiescence against the read-only plane. The
    /// caller has already counted the query, checked the origin is alive
    /// and refreshed digests; this accounts everything else into the
    /// given `stats` (which may be a private per-request accounting on a
    /// pool worker).
    fn search(
        &self,
        latency: &mut dyn LatencyModel,
        walk_rng: &mut StdRng,
        stats: &mut NetStats,
        origin: PeerId,
        community: &str,
        query: &Query,
    ) -> SearchOutcome {
        let mut outcome = SearchOutcome::default();
        let guided = self.config.digests.enabled;
        let s0 = self.super_of[origin.index()];
        let mut uplink: Time = 0;
        if !self.is_super(origin) {
            stats.sent(MsgKind::Query);
            outcome.messages += 1;
            uplink = latency.delay(origin, self.super_peer_id(s0));
            if !self.is_alive(self.super_peer_id(s0)) {
                stats.dropped += 1;
                outcome.latency = uplink;
                return outcome; // orphaned leaf: its super is gone
            }
        }

        let mut queue: EventQueue<SuperQueryEvent> = EventQueue::new();
        let mut seen: HashSet<usize> = HashSet::new();
        let mode = if guided { Propagation::Guided } else { Propagation::Flood };
        queue.push(uplink, SuperQueryEvent { to: s0, path: Vec::new(), ttl: self.config.ttl, mode });

        let mut hit_seen: HashSet<(String, PeerId)> = HashSet::new();
        let mut last_hit_at: Time = 0;
        let mut quiescence: Time = 0;
        while let Some((t, ev)) = queue.pop() {
            quiescence = quiescence.max(t);
            let super_id = self.super_peer_id(ev.to);
            if !self.is_alive(super_id) {
                stats.dropped += 1;
                continue;
            }
            let first_visit = seen.insert(ev.to);
            match ev.mode {
                // a walker survives revisits (it merely skips
                // re-evaluating the index); everything else deduplicates
                Propagation::Walk => {}
                _ if !first_visit => continue,
                _ => {}
            }
            // answer from this super's index: candidates come from the
            // posting lists, liveness filters only that candidate set
            let hops = ev.path.len() as u8 + u8::from(!self.is_super(origin));
            let mut local_hits: Vec<SearchHit> = Vec::new();
            if first_visit {
                let alive = self.alive;
                let hit_seen = &mut hit_seen;
                let local_hits = &mut local_hits;
                self.indexes[ev.to].search(
                    community,
                    query,
                    |p| alive.get(p.index()).copied().unwrap_or(false),
                    |key, p, fields| {
                        if hit_seen.insert((key.to_string(), p)) {
                            local_hits.push(SearchHit {
                                key: key.to_string(),
                                provider: p,
                                fields: fields.clone(),
                                hops,
                            });
                        }
                    },
                );
            }
            if !local_hits.is_empty() {
                // back along super path, then down to the leaf
                let mut back: Time = 0;
                let mut prev = ev.to;
                for &node in ev.path.iter().rev() {
                    stats.sent(MsgKind::QueryHit);
                    outcome.messages += 1;
                    back += latency.delay(self.super_peer_id(prev), self.super_peer_id(node));
                    prev = node;
                }
                if !self.is_super(origin) {
                    stats.sent(MsgKind::QueryHit);
                    outcome.messages += 1;
                    back += latency.delay(self.super_peer_id(s0), origin);
                }
                let arrival = t + back;
                for h in local_hits {
                    stats.hit(h.hops);
                    last_hit_at = last_hit_at.max(arrival);
                    outcome.first_hit_latency =
                        Some(outcome.first_hit_latency.map_or(arrival, |f| f.min(arrival)));
                    outcome.hits.push(h);
                }
                if ev.mode != Propagation::Flood {
                    // frontier stop: this copy found results, stop paying
                    // for forwarding
                    continue;
                }
            }
            if ev.ttl == 0 {
                continue;
            }
            let sender = ev.path.last().copied();
            if ev.mode == Propagation::Flood {
                // flood to neighboring supers
                let neighbors: Vec<usize> = self
                    .super_topology
                    .neighbors(PeerId(ev.to as u32))
                    .map(|p| p.index())
                    .collect();
                for nb in neighbors {
                    if Some(nb) == sender {
                        continue;
                    }
                    stats.sent(MsgKind::Query);
                    outcome.messages += 1;
                    let at =
                        t + latency.delay(self.super_peer_id(ev.to), self.super_peer_id(nb));
                    let mut path = ev.path.clone();
                    path.push(ev.to);
                    queue.push(at, SuperQueryEvent {
                        to: nb,
                        path,
                        ttl: ev.ttl - 1,
                        mode: Propagation::Flood,
                    });
                }
            } else {
                // guided copies and walkers re-consult the digests every
                // hop; a fallback at the origin's super spawns the full
                // walker width, mid-path dead ends continue as one walker
                let width = if sender.is_none() { self.config.digests.walk_width } else { 1 };
                self.forward_guided(
                    latency,
                    walk_rng,
                    stats,
                    t,
                    ev.to,
                    sender,
                    &ev.path,
                    ev.ttl,
                    community,
                    query,
                    width,
                    &mut outcome,
                    &mut queue,
                );
            }
        }

        outcome.latency = if outcome.hits.is_empty() { quiescence } else { last_hit_at };
        if !outcome.hits.is_empty() {
            stats.queries_with_hits += 1;
        }
        outcome
    }
}

impl SuperPeerNetwork {
    /// Creates a network of `n` peers. The first `config.supers` ids are
    /// super-peers; every other peer is assigned to a uniformly random
    /// super (seeded).
    ///
    /// # Panics
    ///
    /// Panics if `config.supers` is zero or exceeds `n`.
    pub fn new(
        n: usize,
        config: SuperPeerConfig,
        latency: Box<dyn LatencyModel + Send + Sync>,
        seed: u64,
    ) -> Self {
        assert!(config.supers > 0 && config.supers <= n, "invalid super count");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut super_of = Vec::with_capacity(n);
        for i in 0..n {
            if i < config.supers {
                super_of.push(i);
            } else {
                super_of.push(rng.gen_range(0..config.supers));
            }
        }
        let super_topology = if config.supers <= 3 {
            Topology::ring_lattice(config.supers, 1)
        } else {
            Topology::small_world(config.supers, config.super_degree, 0.2, seed ^ 0x5eed)
        };
        SuperPeerNetwork {
            config,
            super_of,
            super_topology,
            indexes: std::iter::repeat_with(IndexNode::new).take(config.supers).collect(),
            owned: vec![BTreeSet::new(); n],
            alive: vec![true; n],
            latency,
            stats: NetStats::new(),
            routes: RouteTable::new(config.digests),
            walk_rng: StdRng::seed_from_u64(seed ^ 0x3a1f_7a1c),
        }
    }

    /// The super-peer index a peer is attached to.
    pub fn super_of(&self, peer: PeerId) -> usize {
        self.super_of[peer.index()]
    }

    /// Is the given peer a super-peer?
    pub fn is_super(&self, peer: PeerId) -> bool {
        peer.index() < self.config.supers
    }

    /// Rebuilds dirty routing digests over the super overlay, counting
    /// the `DigestRequest`/`DigestPush` exchange. Lazy, like the flooding
    /// substrate: the next guided search triggers it.
    pub fn refresh_digests(&mut self) {
        let cfg = self.config.digests;
        if !cfg.enabled || !self.routes.needs_refresh() {
            return;
        }
        let indexes = &self.indexes;
        let (requests, pushes) = self.routes.refresh(&self.super_topology, |s| {
            let mut d = RoutingDigest::new(cfg.log2_bits);
            d.add_node(&indexes[s as usize]);
            d
        });
        self.stats.sent_n(MsgKind::DigestRequest, requests);
        self.stats.sent_n(MsgKind::DigestPush, pushes);
    }

}

/// Borrows the read-only serving plane out of a [`SuperPeerNetwork`].
/// A macro rather than a method so the borrow covers only the six
/// serving-state fields — the accounting fields (latency, walker rng,
/// stats) stay independently mutably borrowable next to the plane.
macro_rules! serve_plane {
    ($net:expr) => {
        ServePlane {
            config: &$net.config,
            super_of: &$net.super_of,
            super_topology: &$net.super_topology,
            indexes: &$net.indexes,
            alive: &$net.alive,
            routes: &$net.routes,
        }
    };
}

impl PeerNetwork for SuperPeerNetwork {
    fn protocol_name(&self) -> &'static str {
        "FastTrack"
    }

    fn peer_count(&self) -> usize {
        self.alive.len()
    }

    fn is_alive(&self, peer: PeerId) -> bool {
        self.alive.get(peer.index()).copied().unwrap_or(false)
    }

    fn set_alive(&mut self, peer: PeerId, alive: bool) {
        if let Some(a) = self.alive.get_mut(peer.index()) {
            *a = alive;
        }
    }

    fn publish(&mut self, provider: PeerId, record: ResourceRecord) {
        if !self.is_alive(provider) {
            return;
        }
        let s = self.super_of(provider);
        if !self.is_super(provider) {
            self.stats.sent(MsgKind::Publish); // leaf → super upload
        }
        self.owned[provider.index()].insert(record.key.clone());
        self.indexes[s].insert(provider, &record);
        if self.config.digests.enabled {
            self.routes.mark_dirty(s as u32);
        }
    }

    fn unpublish(&mut self, provider: PeerId, key: &str) {
        let s = self.super_of(provider);
        if !self.is_super(provider) {
            self.stats.sent(MsgKind::Unpublish);
        }
        self.owned[provider.index()].remove(key);
        self.indexes[s].remove(provider, key);
        if self.config.digests.enabled {
            self.routes.mark_dirty(s as u32);
        }
    }

    fn search(&mut self, origin: PeerId, community: &str, query: &Query) -> SearchOutcome {
        self.stats.queries += 1;
        if !self.is_alive(origin) {
            return SearchOutcome::default();
        }
        self.refresh_digests();
        let plane = serve_plane!(self);
        plane.search(
            self.latency.as_mut(),
            &mut self.walk_rng,
            &mut self.stats,
            origin,
            community,
            query,
        )
    }

    fn search_batch(&mut self, requests: &[SearchRequest], workers: usize) -> Vec<SearchOutcome> {
        // Digest maintenance is shared state: pay for it once, up front,
        // exactly as a sequence of searches would (lazy, only if dirty).
        self.refresh_digests();
        // Walker randomness for request `i` is drawn from the shared rng
        // in request order before fanning out, so batch results do not
        // depend on worker scheduling.
        let walk_seeds: Vec<u64> = requests.iter().map(|_| self.walk_rng.gen()).collect();
        let plane = serve_plane!(self);
        let latency = &self.latency;
        let served: Vec<(SearchOutcome, NetStats)> =
            serve_batch(workers, requests.len(), |i| {
                let r = &requests[i];
                let mut stats = NetStats::new();
                stats.queries += 1;
                let outcome = if plane.is_alive(r.origin) {
                    let mut latency = latency.fork(i as u64);
                    let mut walk_rng = StdRng::seed_from_u64(walk_seeds[i]);
                    plane.search(
                        latency.as_mut(),
                        &mut walk_rng,
                        &mut stats,
                        r.origin,
                        &r.community,
                        &r.query,
                    )
                } else {
                    SearchOutcome::default()
                };
                (outcome, stats)
            });
        let mut outcomes = Vec::with_capacity(served.len());
        for (outcome, stats) in served {
            self.stats.merge(&stats);
            outcomes.push(outcome);
        }
        outcomes
    }

    fn retrieve(&mut self, origin: PeerId, provider: PeerId, key: &str) -> RetrieveOutcome {
        self.stats.retrieves += 1;
        if !self.is_alive(origin) {
            // a dead peer cannot send: the request never leaves the origin
            return RetrieveOutcome::Unavailable;
        }
        self.stats.sent(MsgKind::Retrieve);
        if !self.is_alive(provider) {
            self.stats.dropped += 1;
            return RetrieveOutcome::Unavailable;
        }
        if !self.owned[provider.index()].contains(key) {
            self.stats.sent(MsgKind::RetrieveFail);
            return RetrieveOutcome::Unavailable;
        }
        self.stats.sent(MsgKind::RetrieveOk);
        self.stats.retrieves_ok += 1;
        let latency = self.latency.delay(origin, provider) + self.latency.delay(provider, origin);
        RetrieveOutcome::Fetched { provider, latency }
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = NetStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConstantLatency;

    fn record(key: &str, name: &str) -> ResourceRecord {
        ResourceRecord::new(key, "c", vec![("o/name".to_string(), name.to_string())])
    }

    fn net(n: usize, supers: usize) -> SuperPeerNetwork {
        SuperPeerNetwork::new(
            n,
            SuperPeerConfig { supers, super_degree: 2, ttl: 6, ..SuperPeerConfig::default() },
            Box::new(ConstantLatency(1_000)),
            42,
        )
    }

    #[test]
    fn leaves_are_assigned_to_supers() {
        let net = net(50, 5);
        for p in 0..50u32 {
            let s = net.super_of(PeerId(p));
            assert!(s < 5);
            if p < 5 {
                assert_eq!(s, p as usize, "supers are their own super");
                assert!(net.is_super(PeerId(p)));
            }
        }
    }

    #[test]
    fn publish_search_across_supers() {
        let mut net = net(50, 5);
        net.publish(PeerId(30), record("k", "observer"));
        let out = net.search(PeerId(40), "c", &Query::any_keyword("observer"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].provider, PeerId(30));
        assert!(out.messages >= 2, "at least uplink + some flooding");
    }

    #[test]
    fn message_cost_scales_with_supers_not_peers() {
        let mut big_flat = net(400, 5);
        big_flat.publish(PeerId(300), record("k", "x"));
        let out = big_flat.search(PeerId(200), "c", &Query::any_keyword("x"));
        // super overlay has 5 nodes / ~10 edges; cost must not approach 400
        assert!(out.messages < 50, "messages {} should be tiny", out.messages);
        assert_eq!(out.hits.len(), 1);
    }

    #[test]
    fn dead_super_orphans_its_leaves() {
        let mut net = net(20, 4);
        // find a leaf and kill its super
        let leaf = PeerId(15);
        let s = net.super_of(leaf);
        net.publish(PeerId(10), record("k", "x"));
        net.set_alive(PeerId(s as u32), false);
        let out = net.search(leaf, "c", &Query::any_keyword("x"));
        assert!(out.hits.is_empty(), "orphaned leaf cannot search");
    }

    #[test]
    fn dead_provider_filtered() {
        let mut net = net(20, 4);
        net.publish(PeerId(10), record("k", "x"));
        net.set_alive(PeerId(10), false);
        let out = net.search(PeerId(12), "c", &Query::any_keyword("x"));
        assert!(out.hits.is_empty());
        assert!(!net.retrieve(PeerId(12), PeerId(10), "k").is_fetched());
    }

    #[test]
    fn super_origin_searches_without_uplink() {
        let mut net = net(20, 4);
        net.publish(PeerId(0), record("k", "x"));
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].hops, 0, "own index, no uplink hop");
    }

    #[test]
    fn retrieve_round_trip() {
        let mut net = net(20, 4);
        net.publish(PeerId(10), record("k", "x"));
        let got = net.retrieve(PeerId(12), PeerId(10), "k");
        assert!(got.is_fetched());
        if let RetrieveOutcome::Fetched { latency, .. } = got {
            assert_eq!(latency, 2_000);
        }
    }

    #[test]
    fn unpublish_removes_from_super_index() {
        let mut net = net(20, 4);
        net.publish(PeerId(10), record("k", "x"));
        net.unpublish(PeerId(10), "k");
        let out = net.search(PeerId(12), "c", &Query::any_keyword("x"));
        assert!(out.hits.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid super count")]
    fn zero_supers_rejected() {
        net(10, 0);
    }

    #[test]
    fn retrieve_failure_kinds_are_counted() {
        let mut net = net(20, 4);
        net.publish(PeerId(10), record("k", "x"));
        assert!(net.retrieve(PeerId(12), PeerId(10), "k").is_fetched());
        // live provider without the object answers RetrieveFail
        assert!(!net.retrieve(PeerId(12), PeerId(11), "k").is_fetched());
        // dead provider: the request is dropped, no response of any kind
        net.set_alive(PeerId(10), false);
        assert!(!net.retrieve(PeerId(12), PeerId(10), "k").is_fetched());
        assert_eq!(net.stats().count(MsgKind::Retrieve), 3);
        assert_eq!(net.stats().count(MsgKind::RetrieveOk), 1);
        assert_eq!(net.stats().count(MsgKind::RetrieveFail), 1);
        assert_eq!(net.stats().dropped, 1);
        assert_eq!(net.stats().retrieves, 3);
        assert_eq!(net.stats().retrieves_ok, 1);
    }

    #[test]
    fn dead_origin_retrieve_sends_no_messages() {
        let mut net = net(20, 4);
        net.publish(PeerId(10), record("k", "x"));
        net.reset_stats();
        net.set_alive(PeerId(12), false);
        assert!(!net.retrieve(PeerId(12), PeerId(10), "k").is_fetched());
        assert_eq!(net.stats().retrieves, 1, "the attempt is still counted");
        assert_eq!(net.stats().messages, 0, "a dead peer cannot send");
    }

    fn guided_net(n: usize, supers: usize) -> SuperPeerNetwork {
        SuperPeerNetwork::new(
            n,
            SuperPeerConfig {
                supers,
                super_degree: 2,
                ttl: 6,
                digests: DigestConfig::guided(),
            },
            Box::new(ConstantLatency(1_000)),
            42,
        )
    }

    #[test]
    fn guided_super_flood_still_finds_records() {
        let mut blind = net(50, 8);
        let mut guided = guided_net(50, 8);
        for target in [PeerId(30), PeerId(45)] {
            blind.publish(target, record(&format!("k{target:?}"), "observer"));
            guided.publish(target, record(&format!("k{target:?}"), "observer"));
        }
        let b = blind.search(PeerId(40), "c", &Query::any_keyword("observer"));
        let g = guided.search(PeerId(40), "c", &Query::any_keyword("observer"));
        assert!(!g.hits.is_empty(), "guided search still reaches a replica");
        // guided hits ⊆ blind hits (same assignment seed, same records)
        let blind_hits: BTreeSet<(String, PeerId)> =
            b.hits.into_iter().map(|h| (h.key, h.provider)).collect();
        for h in &g.hits {
            assert!(blind_hits.contains(&(h.key.clone(), h.provider)), "{h:?}");
        }
        assert!(
            g.messages <= b.messages,
            "guided ({}) must not exceed the blind super flood ({})",
            g.messages,
            b.messages
        );
    }

    #[test]
    fn batch_serving_is_exactly_sequential_serving_in_flood_mode() {
        let build = || {
            let mut n = net(60, 8);
            for p in [20u32, 35, 50] {
                n.publish(PeerId(p), record(&format!("k{p}"), "observer"));
            }
            n.set_alive(PeerId(41), false); // one dead origin in the batch
            n
        };
        let requests = vec![
            SearchRequest::new(PeerId(40), "c", Query::any_keyword("observer")),
            SearchRequest::new(PeerId(0), "c", Query::any_keyword("observer")),
            SearchRequest::new(PeerId(41), "c", Query::any_keyword("observer")),
            SearchRequest::new(PeerId(42), "c", Query::any_keyword("missing")),
        ];
        let mut seq = build();
        let expected: Vec<SearchOutcome> = requests
            .iter()
            .map(|r| seq.search(r.origin, &r.community, &r.query))
            .collect();
        for workers in [1usize, 4] {
            let mut batch = build();
            let got = batch.search_batch(&requests, workers);
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.hits, e.hits, "workers={workers}");
                assert_eq!(g.messages, e.messages, "workers={workers}");
                assert_eq!(g.latency, e.latency, "workers={workers}");
                assert_eq!(g.first_hit_latency, e.first_hit_latency, "workers={workers}");
            }
            let (s, b) = (seq.stats(), batch.stats());
            assert_eq!(b.messages, s.messages, "workers={workers}");
            assert_eq!(b.by_kind(), s.by_kind(), "workers={workers}");
            assert_eq!(b.queries, s.queries, "workers={workers}");
            assert_eq!(b.queries_with_hits, s.queries_with_hits, "workers={workers}");
            assert_eq!(b.hits, s.hits, "workers={workers}");
            assert_eq!(b.dropped, s.dropped, "workers={workers}");
            assert_eq!(b.hit_hops, s.hit_hops, "workers={workers}");
        }
    }

    #[test]
    fn guided_batch_finds_the_same_hits_and_pays_digests_once() {
        let build = || {
            let mut n = guided_net(50, 8);
            n.publish(PeerId(30), record("k", "x"));
            n
        };
        let mut seq = build();
        let expected = seq.search(PeerId(40), "c", &Query::any_keyword("x"));
        let mut batch = build();
        let requests = vec![
            SearchRequest::new(PeerId(40), "c", Query::any_keyword("x")),
            SearchRequest::new(PeerId(41), "c", Query::any_keyword("x")),
        ];
        let got = batch.search_batch(&requests, 4);
        // digest-selected forwarding is deterministic, so the matching
        // query reproduces the sequential hit set even off-thread
        assert_eq!(got[0].hits, expected.hits);
        assert!(!got[1].hits.is_empty(), "second origin reaches the record too");
        // the lazy digest build is shared state, paid once for the batch
        let edges = 2 * batch.super_topology.edge_count() as u64;
        assert_eq!(batch.stats().count(MsgKind::DigestRequest), edges);
        assert_eq!(batch.stats().count(MsgKind::DigestPush), edges);
        assert_eq!(batch.stats().queries, 2);
    }

    #[test]
    fn guided_super_search_counts_digest_traffic() {
        let mut net = guided_net(50, 8);
        net.publish(PeerId(30), record("k", "x"));
        net.search(PeerId(40), "c", &Query::any_keyword("x"));
        // one request per directed super-overlay edge, pushed once
        let edges = 2 * net.super_topology.edge_count() as u64;
        assert_eq!(net.stats().count(MsgKind::DigestRequest), edges);
        assert_eq!(net.stats().count(MsgKind::DigestPush), edges);
        // a second search with no publishes in between pays nothing new
        net.search(PeerId(40), "c", &Query::any_keyword("x"));
        assert_eq!(net.stats().count(MsgKind::DigestRequest), edges);
        assert_eq!(net.stats().count(MsgKind::DigestPush), edges);
    }
}
