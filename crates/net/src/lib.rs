//! # up2p-net
//!
//! Simulated peer-to-peer substrates for the U-P2P reproduction.
//!
//! The paper deliberately treats the network as a pluggable layer: a
//! community's schema names its `protocol` (Fig. 3: Napster, Gnutella or
//! FastTrack) and the servent only needs create/search/retrieve
//! primitives. This crate provides that trait ([`PeerNetwork`]) and three
//! deterministic discrete-event implementations:
//!
//! * [`CentralizedNetwork`] — Napster-style index server,
//! * [`FloodingNetwork`] — Gnutella-style TTL flooding over an overlay,
//! * [`SuperPeerNetwork`] — FastTrack-style two-tier super-peer network.
//!
//! No 2002 network exists to join, so the substrates reproduce *routing
//! semantics* (which peers are asked, how many messages, how many hops)
//! under seeded latency models, overlay topologies and churn — the
//! quantities experiments E3/E5/E6 report.
//!
//! ```
//! use up2p_net::{
//!     ConstantLatency, FloodingConfig, FloodingNetwork, PeerId, PeerNetwork,
//!     ResourceRecord, Topology,
//! };
//! use up2p_store::Query;
//!
//! let topo = Topology::small_world(64, 2, 0.2, 1);
//! let mut net = FloodingNetwork::new(
//!     topo, Box::new(ConstantLatency(20_000)), FloodingConfig::default());
//! net.publish(PeerId(9), ResourceRecord {
//!     key: "k1".into(),
//!     community: "patterns".into(),
//!     fields: vec![("pattern/name".into(), "Observer".into())],
//! });
//! let out = net.search(PeerId(0), "patterns", &Query::any_keyword("observer"));
//! assert_eq!(out.hits.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod centralized;
pub mod churn;
mod flooding;
mod latency;
mod live;
mod message;
mod peer;
pub mod sim;
mod stats;
mod superpeer;
mod topology;
mod traits;

pub use centralized::CentralizedNetwork;
pub use flooding::{FloodingConfig, FloodingNetwork};
pub use live::LiveNetwork;
pub use latency::{ConstantLatency, CoordinateLatency, LatencyModel, UniformLatency};
pub use message::{Message, MessageKind, ResourceRecord, SearchHit, Time, DEFAULT_TTL};
pub use peer::PeerId;
pub use stats::{NetStats, RetrieveOutcome, SearchOutcome};
pub use superpeer::{SuperPeerConfig, SuperPeerNetwork};
pub use topology::Topology;
pub use traits::{PeerNetwork, ProtocolKind};

/// Builds a substrate of the given kind with sensible defaults for the
/// experiments: `n` peers, seeded topology/latency, all peers online.
///
/// * Napster: constant 20 ms links to the server.
/// * Gnutella: small-world overlay (2k = 4 neighbors, β = 0.2), TTL 7.
/// * FastTrack: ~`sqrt(n)` super-peers, TTL 4 on the super overlay.
pub fn build_network(kind: ProtocolKind, n: usize, seed: u64) -> Box<dyn PeerNetwork + Send> {
    match kind {
        ProtocolKind::Napster => {
            Box::new(CentralizedNetwork::new(n, Box::new(ConstantLatency(20_000))))
        }
        ProtocolKind::Gnutella => {
            let topo = Topology::small_world(n, 2, 0.2, seed);
            Box::new(FloodingNetwork::new(
                topo,
                Box::new(ConstantLatency(20_000)),
                FloodingConfig::default(),
            ))
        }
        ProtocolKind::FastTrack => {
            let supers = (n as f64).sqrt().ceil() as usize;
            let supers = supers.clamp(1, n);
            Box::new(SuperPeerNetwork::new(
                n,
                SuperPeerConfig { supers, super_degree: 2, ttl: 4 },
                Box::new(ConstantLatency(20_000)),
                seed,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use up2p_store::Query;

    #[test]
    fn factory_builds_all_three() {
        for kind in [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack] {
            let mut net = build_network(kind, 64, 7);
            assert_eq!(net.peer_count(), 64);
            assert_eq!(net.protocol_name(), kind.schema_value());
            net.publish(
                PeerId(3),
                ResourceRecord {
                    key: "k".into(),
                    community: "c".into(),
                    fields: vec![("o/name".into(), "target".into())],
                },
            );
            let out = net.search(PeerId(40), "c", &Query::any_keyword("target"));
            assert_eq!(out.hits.len(), 1, "{kind} must find the record");
            assert!(
                net.retrieve(PeerId(40), PeerId(3), "k").is_fetched(),
                "{kind} retrieve"
            );
        }
    }

    #[test]
    fn message_cost_ordering_napster_fasttrack_gnutella() {
        // the E6 headline shape: centralized ≤ super-peer ≤ flooding
        let mut costs = Vec::new();
        for kind in [ProtocolKind::Napster, ProtocolKind::FastTrack, ProtocolKind::Gnutella] {
            let mut net = build_network(kind, 128, 11);
            net.publish(
                PeerId(5),
                ResourceRecord {
                    key: "k".into(),
                    community: "c".into(),
                    fields: vec![("o/name".into(), "x".into())],
                },
            );
            let out = net.search(PeerId(100), "c", &Query::any_keyword("x"));
            costs.push((kind, out.messages));
        }
        assert!(costs[0].1 <= costs[1].1, "{costs:?}");
        assert!(costs[1].1 <= costs[2].1, "{costs:?}");
    }
}
