//! # up2p-net
//!
//! Simulated peer-to-peer substrates for the U-P2P reproduction.
//!
//! The paper deliberately treats the network as a pluggable layer: a
//! community's schema names its `protocol` (Fig. 3: Napster, Gnutella or
//! FastTrack) and the servent only needs create/search/retrieve
//! primitives. This crate provides that trait ([`PeerNetwork`]) and three
//! deterministic discrete-event implementations:
//!
//! * [`CentralizedNetwork`] — Napster-style index server,
//! * [`FloodingNetwork`] — Gnutella-style TTL flooding over an overlay,
//! * [`SuperPeerNetwork`] — FastTrack-style two-tier super-peer network.
//!
//! No 2002 network exists to join, so the substrates reproduce *routing
//! semantics* (which peers are asked, how many messages, how many hops)
//! under seeded latency models, overlay topologies and churn — the
//! quantities experiments E3/E5/E6 report.
//!
//! ```
//! use up2p_net::{
//!     ConstantLatency, FloodingConfig, FloodingNetwork, PeerId, PeerNetwork,
//!     ResourceRecord, Topology,
//! };
//! use up2p_store::Query;
//!
//! let topo = Topology::small_world(64, 2, 0.2, 1);
//! let mut net = FloodingNetwork::new(
//!     topo, Box::new(ConstantLatency(20_000)), FloodingConfig::default());
//! net.publish(PeerId(9), ResourceRecord::new(
//!     "k1",
//!     "patterns",
//!     vec![("pattern/name".to_string(), "Observer".to_string())],
//! ));
//! let out = net.search(PeerId(0), "patterns", &Query::any_keyword("observer"));
//! assert_eq!(out.hits.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod centralized;
pub mod churn;
mod des;
mod digest;
mod event;
mod flooding;
mod index_node;
mod latency;
mod live;
mod message;
mod peer;
mod pool;
mod sharded;
pub mod sim;
mod stats;
mod superpeer;
mod topology;
mod traits;

pub use centralized::CentralizedNetwork;
pub use des::DesNetwork;
pub use digest::{DigestConfig, RouteTable, RoutingDigest};
pub use event::{DesEvent, PropMode};
pub use flooding::{FloodingConfig, FloodingNetwork};
pub use index_node::IndexNode;
pub use live::LiveNetwork;
pub use latency::{ConstantLatency, CoordinateLatency, LatencyModel, LatencySpec, UniformLatency};
pub use message::{Message, MessageKind, ResourceRecord, SearchHit, SharedFields, Time, DEFAULT_TTL};
pub use peer::PeerId;
pub use pool::serve_batch;
pub use sharded::ShardedIndexNode;
pub use stats::{MsgKind, NetStats, RetrieveOutcome, SearchOutcome};
pub use superpeer::{SuperPeerConfig, SuperPeerNetwork};
pub use topology::Topology;
pub use traits::{PeerNetwork, ProtocolKind, SearchRequest};

/// Substrate construction parameters, previously hard-coded in
/// [`build_network`]: latency model, flooding TTL / dedup, and super-peer
/// sizing. [`build_network`] remains the thin all-defaults wrapper.
///
/// ```
/// use up2p_net::{LatencySpec, NetConfig, PeerNetwork, ProtocolKind};
///
/// let config = NetConfig::new()
///     .latency(LatencySpec::Uniform(5_000, 50_000))
///     .ttl(5)
///     .supers(16);
/// let net = up2p_net::build_network_with(ProtocolKind::FastTrack, 256, 7, &config);
/// assert_eq!(net.peer_count(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Link latency model (all substrates).
    pub latency: LatencySpec,
    /// Flooding query TTL (Gnutella).
    pub ttl: u8,
    /// Duplicate suppression (Gnutella; `false` is the E6 ablation).
    pub dedup: bool,
    /// Super-peer count (FastTrack); `None` picks `ceil(sqrt(n))`.
    pub supers: Option<usize>,
    /// Each-side neighbor count of the super-peer overlay (FastTrack).
    pub super_degree: usize,
    /// TTL on the super-peer overlay (FastTrack).
    pub super_ttl: u8,
    /// Routing-digest layer (guided search) for Gnutella and FastTrack.
    /// Disabled by default: blind flooding is the baseline behavior.
    pub digests: DigestConfig,
}

impl Default for NetConfig {
    /// The sizing [`build_network`] has always used: constant 20 ms
    /// links, TTL 7 flooding with dedup, `sqrt(n)` super-peers at degree
    /// 2 and super-overlay TTL 4.
    fn default() -> Self {
        NetConfig {
            latency: LatencySpec::Constant(20_000),
            ttl: DEFAULT_TTL,
            dedup: true,
            supers: None,
            super_degree: 2,
            super_ttl: 4,
            digests: DigestConfig::default(),
        }
    }
}

impl NetConfig {
    /// The default configuration (builder entry point).
    pub fn new() -> NetConfig {
        NetConfig::default()
    }

    /// Sets the link latency model.
    pub fn latency(mut self, spec: LatencySpec) -> NetConfig {
        self.latency = spec;
        self
    }

    /// Sets the flooding TTL.
    pub fn ttl(mut self, ttl: u8) -> NetConfig {
        self.ttl = ttl;
        self
    }

    /// Enables/disables flooding duplicate suppression.
    pub fn dedup(mut self, dedup: bool) -> NetConfig {
        self.dedup = dedup;
        self
    }

    /// Sets an explicit super-peer count.
    pub fn supers(mut self, supers: usize) -> NetConfig {
        self.supers = Some(supers);
        self
    }

    /// Sets the super-peer overlay degree.
    pub fn super_degree(mut self, degree: usize) -> NetConfig {
        self.super_degree = degree;
        self
    }

    /// Sets the TTL used on the super-peer overlay.
    pub fn super_ttl(mut self, ttl: u8) -> NetConfig {
        self.super_ttl = ttl;
        self
    }

    /// Sets the routing-digest (guided search) configuration.
    pub fn digests(mut self, digests: DigestConfig) -> NetConfig {
        self.digests = digests;
        self
    }

    /// The super-peer count an `n`-peer FastTrack substrate gets:
    /// the explicit setting, else `ceil(sqrt(n))`, clamped to `1..=n`.
    pub fn super_count(&self, n: usize) -> usize {
        self.supers.unwrap_or_else(|| (n as f64).sqrt().ceil() as usize).clamp(1, n.max(1))
    }
}

/// Builds a substrate of the given kind from an explicit configuration:
/// `n` peers, seeded topology/latency, all peers online.
pub fn build_network_with(
    kind: ProtocolKind,
    n: usize,
    seed: u64,
    config: &NetConfig,
) -> Box<dyn PeerNetwork + Send> {
    match kind {
        ProtocolKind::Napster => {
            Box::new(CentralizedNetwork::new(n, config.latency.build(n, seed)))
        }
        ProtocolKind::Gnutella => {
            let topo = Topology::small_world(n, 2, 0.2, seed);
            Box::new(FloodingNetwork::new(
                topo,
                config.latency.build(n, seed),
                FloodingConfig { ttl: config.ttl, dedup: config.dedup, digests: config.digests },
            ))
        }
        ProtocolKind::FastTrack => Box::new(SuperPeerNetwork::new(
            n,
            SuperPeerConfig {
                supers: config.super_count(n),
                super_degree: config.super_degree,
                ttl: config.super_ttl,
                digests: config.digests,
            },
            config.latency.build(n, seed),
            seed,
        )),
    }
}

/// Builds a substrate with the default [`NetConfig`] — the experiments'
/// long-standing sizing:
///
/// * Napster: constant 20 ms links to the server.
/// * Gnutella: small-world overlay (2k = 4 neighbors, β = 0.2), TTL 7.
/// * FastTrack: ~`sqrt(n)` super-peers, TTL 4 on the super overlay.
pub fn build_network(kind: ProtocolKind, n: usize, seed: u64) -> Box<dyn PeerNetwork + Send> {
    build_network_with(kind, n, seed, &NetConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use up2p_store::Query;

    #[test]
    fn factory_builds_all_three() {
        for kind in [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack] {
            let mut net = build_network(kind, 64, 7);
            assert_eq!(net.peer_count(), 64);
            assert_eq!(net.protocol_name(), kind.schema_value());
            net.publish(
                PeerId(3),
                ResourceRecord::new("k", "c", vec![("o/name".to_string(), "target".to_string())]),
            );
            let out = net.search(PeerId(40), "c", &Query::any_keyword("target"));
            assert_eq!(out.hits.len(), 1, "{kind} must find the record");
            assert!(
                net.retrieve(PeerId(40), PeerId(3), "k").is_fetched(),
                "{kind} retrieve"
            );
        }
    }

    #[test]
    fn net_config_defaults_match_build_network() {
        let config = NetConfig::default();
        assert_eq!(config.latency, LatencySpec::Constant(20_000));
        assert_eq!(config.ttl, DEFAULT_TTL);
        assert!(config.dedup);
        assert_eq!(config.super_count(64), 8, "sqrt sizing");
        assert_eq!(config.super_count(0), 1, "clamped to at least one");
        // explicit settings override the derived sizing
        assert_eq!(NetConfig::new().supers(3).super_count(64), 3);
        assert_eq!(NetConfig::new().supers(100).super_count(8), 8, "clamped to n");
    }

    #[test]
    fn build_network_with_honors_the_config() {
        let config = NetConfig::new()
            .latency(LatencySpec::Constant(1_000))
            .ttl(2)
            .dedup(false)
            .supers(4)
            .super_degree(1)
            .super_ttl(2);
        for kind in [ProtocolKind::Napster, ProtocolKind::Gnutella, ProtocolKind::FastTrack] {
            let mut net = build_network_with(kind, 32, 7, &config);
            net.publish(
                PeerId(1),
                ResourceRecord::new("k", "c", vec![("o/name".to_string(), "x".to_string())]),
            );
            let out = net.search(PeerId(1), "c", &Query::any_keyword("x"));
            assert_eq!(out.hits.len(), 1, "{kind}: own record is always reachable");
        }
        // Napster latency follows the configured model: 1 ms each way
        let mut net = build_network_with(ProtocolKind::Napster, 4, 7, &config);
        let out = net.search(PeerId(0), "c", &Query::All);
        assert_eq!(out.latency, 2_000);
    }

    #[test]
    fn message_cost_ordering_napster_fasttrack_gnutella() {
        // the E6 headline shape: centralized ≤ super-peer ≤ flooding
        let mut costs = Vec::new();
        for kind in [ProtocolKind::Napster, ProtocolKind::FastTrack, ProtocolKind::Gnutella] {
            let mut net = build_network(kind, 128, 11);
            net.publish(
                PeerId(5),
                ResourceRecord::new("k", "c", vec![("o/name".to_string(), "x".to_string())]),
            );
            let out = net.search(PeerId(100), "c", &Query::any_keyword("x"));
            costs.push((kind, out.messages));
        }
        assert!(costs[0].1 <= costs[1].1, "{costs:?}");
        assert!(costs[1].1 <= costs[2].1, "{costs:?}");
    }
}
