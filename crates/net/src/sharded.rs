//! Community-sharded, read-mostly index node for the serving plane.
//!
//! [`ShardedIndexNode`] is the concurrent counterpart of
//! [`crate::IndexNode`]: the same community-partitioned metadata index
//! (one [`CommunityTable`] per community, identical first-record-wins /
//! last-provider-out semantics — the implementation is literally
//! shared), but every community's table sits behind its own `RwLock`
//! shard so the node can be served from many threads at once:
//!
//! * `search` takes **read guards only** — a router read to resolve the
//!   community to its shard, then a shard read to evaluate the query.
//!   Queries against different communities touch disjoint shards;
//!   queries against the same community share a read guard. Neither
//!   path touches the key table.
//! * `insert`/`upsert`/`remove` serialize on the key-routing table
//!   (`keys`) and then write **only the owning shard**, so a publish
//!   into one community never blocks searches of another.
//!
//! Lock discipline (named classes, registered with the runtime
//! lock-order checker in debug builds and the `up2p-analyzer`
//! declared-order graph):
//!
//! ```text
//! sharded.keys  →  sharded.router  →  sharded.shard
//! ```
//!
//! Writers hold `keys` for the whole mutation and acquire the router
//! and shard guards strictly under it, one shard guard at a time (an
//! upsert that moves a record between communities writes the old and
//! new shard in disjoint critical sections). Readers clone the shard's
//! `Arc` out of the router guard and drop it before locking the shard,
//! so no read path ever nests guards.

use crate::index_node::CommunityTable;
use crate::message::{ResourceRecord, SharedFields};
use crate::peer::PeerId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use up2p_store::{Query, ResourceId};

/// Community name → shard slot plus the shard handles themselves.
/// Written only when a record is first published into a brand-new
/// community; every other operation takes it read-only.
#[derive(Default)]
struct Router {
    names: HashMap<String, u32>,
    shards: Vec<Arc<RwLock<CommunityTable>>>,
}

/// A community-sharded [`crate::IndexNode`] servable from many threads
/// through `&self`.
pub struct ShardedIndexNode {
    /// Lock class `sharded.router` — read-mostly community routing.
    router: RwLock<Router>,
    /// Lock class `sharded.keys` — record key → shard slot, for
    /// community-blind removal and provider checks. Searches never
    /// touch it; writers serialize on it.
    keys: RwLock<HashMap<ResourceId, u32>>,
    /// Write-guard acquisitions across all three lock classes. Test
    /// instrumentation: the search-is-read-only regression asserts this
    /// stays flat across queries.
    write_guards: AtomicU64,
}

impl Default for ShardedIndexNode {
    fn default() -> ShardedIndexNode {
        ShardedIndexNode::new()
    }
}

impl ShardedIndexNode {
    /// Creates an empty sharded index node and (debug builds) registers
    /// the shard lock classes with the runtime lock-order checker.
    pub fn new() -> ShardedIndexNode {
        #[cfg(debug_assertions)]
        {
            static DECLARED: std::sync::Once = std::sync::Once::new();
            DECLARED.call_once(|| {
                parking_lot::declare_order(&["sharded.keys", "sharded.router", "sharded.shard"]);
            });
        }
        ShardedIndexNode {
            router: RwLock::with_name("sharded.router", Router::default()),
            keys: RwLock::with_name("sharded.keys", HashMap::new()),
            write_guards: AtomicU64::new(0),
        }
    }

    /// Number of distinct records currently indexed.
    pub fn len(&self) -> usize {
        let keys = self.keys.read();
        keys.len()
    }

    /// `true` when no records are indexed.
    pub fn is_empty(&self) -> bool {
        let keys = self.keys.read();
        keys.is_empty()
    }

    /// Number of communities with at least one record ever published
    /// (shards are created lazily and never reclaimed).
    pub fn community_count(&self) -> usize {
        let router = self.router.read();
        router.shards.len()
    }

    /// Write-guard acquisitions so far (any lock class). Searches must
    /// leave this unchanged — see the regression test in
    /// `tests/sharded_concurrency.rs`.
    pub fn write_guard_count(&self) -> u64 {
        self.write_guards.load(Ordering::Relaxed)
    }

    /// Clones the shard handle for `slot` out of the router (read
    /// guard dropped on return, so callers lock the shard unnested).
    fn shard(&self, slot: u32) -> Arc<RwLock<CommunityTable>> {
        let router = self.router.read();
        Arc::clone(&router.shards[slot as usize])
    }

    /// Resolves the community's shard slot, materializing the shard on
    /// first publish into a new community (the only router write).
    fn slot_for(&self, community: &str) -> u32 {
        {
            let router = self.router.read();
            if let Some(&slot) = router.names.get(community) {
                return slot;
            }
        }
        self.write_guards.fetch_add(1, Ordering::Relaxed);
        let mut router = self.router.write();
        if let Some(&slot) = router.names.get(community) {
            return slot;
        }
        let slot = router.shards.len() as u32;
        router.names.insert(community.to_string(), slot);
        router.shards.push(Arc::new(RwLock::with_name("sharded.shard", CommunityTable::default())));
        slot
    }

    /// The insert body shared by [`ShardedIndexNode::insert`] and
    /// [`ShardedIndexNode::upsert`]; `keys` is the caller's write guard
    /// on the key table, held for the whole mutation.
    fn insert_locked(
        &self,
        keys: &mut HashMap<ResourceId, u32>,
        provider: PeerId,
        record: &ResourceRecord,
    ) {
        if let Some(&slot) = keys.get(record.key.as_str()) {
            let shard = self.shard(slot);
            self.write_guards.fetch_add(1, Ordering::Relaxed);
            if shard.write().add_provider(record.key.as_str(), provider) {
                return;
            }
            // key table and shard disagree (should not happen); drop the
            // stale key entry and re-index the record fresh
            keys.remove(record.key.as_str());
        }
        let slot = self.slot_for(record.community.as_str());
        let id = ResourceId::from_key(&record.key);
        let shard = self.shard(slot);
        self.write_guards.fetch_add(1, Ordering::Relaxed);
        {
            let mut table = shard.write();
            table.index_record(id.clone(), provider, &record.fields);
        }
        keys.insert(id, slot);
    }

    /// Registers `provider` for the record — first-record-wins, exactly
    /// as [`crate::IndexNode::insert`]. Writes the key table and the one
    /// owning shard; searches of other communities proceed untouched.
    pub fn insert(&self, provider: PeerId, record: &ResourceRecord) {
        self.write_guards.fetch_add(1, Ordering::Relaxed);
        let mut keys = self.keys.write();
        self.insert_locked(&mut keys, provider, record);
    }

    /// Registers `provider` for the record, replacing the stored fields
    /// (and community) when the key is already present while keeping the
    /// accumulated providers — exactly as [`crate::IndexNode::upsert`].
    /// A replace that moves the record between communities writes the
    /// old and new shard in two disjoint critical sections, both under
    /// the key-table guard.
    pub fn upsert(&self, provider: PeerId, record: &ResourceRecord) {
        self.write_guards.fetch_add(1, Ordering::Relaxed);
        let mut keys = self.keys.write();
        let previous = keys.get(record.key.as_str()).copied().and_then(|slot| {
            let shard = self.shard(slot);
            self.write_guards.fetch_add(1, Ordering::Relaxed);
            let taken = shard.write().take_record(record.key.as_str())?;
            keys.remove(record.key.as_str());
            Some(taken.1)
        });
        self.insert_locked(&mut keys, provider, record);
        if let Some(old_providers) = previous {
            if let Some(&slot) = keys.get(record.key.as_str()) {
                let shard = self.shard(slot);
                self.write_guards.fetch_add(1, Ordering::Relaxed);
                shard.write().extend_providers(record.key.as_str(), old_providers);
            }
        }
    }

    /// Withdraws `provider`'s copy of the record; the record's postings
    /// disappear with its last provider.
    pub fn remove(&self, provider: PeerId, key: &str) {
        self.write_guards.fetch_add(1, Ordering::Relaxed);
        let mut keys = self.keys.write();
        let Some(&slot) = keys.get(key) else { return };
        let shard = self.shard(slot);
        self.write_guards.fetch_add(1, Ordering::Relaxed);
        let gone = shard.write().remove_provider(key, provider);
        if gone {
            keys.remove(key);
        }
    }

    /// Is `provider` currently advertising the record?
    pub fn has_provider(&self, key: &str, provider: PeerId) -> bool {
        let slot = {
            let keys = self.keys.read();
            keys.get(key).copied()
        };
        let Some(slot) = slot else { return false };
        let shard = self.shard(slot);
        let table = shard.read();
        table.has_provider(key, provider)
    }

    /// Number of providers advertising the record.
    pub fn provider_count(&self, key: &str) -> usize {
        let slot = {
            let keys = self.keys.read();
            keys.get(key).copied()
        };
        let Some(slot) = slot else { return 0 };
        let shard = self.shard(slot);
        let table = shard.read();
        table.provider_count(key)
    }

    /// Visits every digest entry this node advertises, exactly as
    /// [`crate::IndexNode::for_each_digest_term`]. Each community is
    /// visited under its own shard read guard (a per-shard snapshot, not
    /// a cross-shard one — concurrent writers may land between shards).
    pub fn for_each_digest_term<F>(&self, mut f: F)
    where
        F: FnMut(&str, Option<&str>),
    {
        let entries: Vec<(String, Arc<RwLock<CommunityTable>>)> = {
            let router = self.router.read();
            router
                .names
                .iter()
                .map(|(name, &slot)| (name.clone(), Arc::clone(&router.shards[slot as usize])))
                .collect()
        };
        for (name, shard) in entries {
            let table = shard.read();
            if table.is_empty() {
                continue;
            }
            f(&name, None);
            table.for_each_live_term(|term| f(&name, Some(term)));
        }
    }

    /// Evaluates a community-scoped query against this node's records,
    /// invoking `emit(key, provider, fields)` for every (record, live
    /// provider) pair — read guards only, never the key table. Hit order
    /// matches [`crate::IndexNode::search`]: candidates in insertion
    /// order, providers ascending.
    pub fn search<A, E>(&self, community: &str, query: &Query, alive: A, emit: E)
    where
        A: Fn(PeerId) -> bool,
        E: FnMut(&str, PeerId, &SharedFields),
    {
        let shard = {
            let router = self.router.read();
            let Some(&slot) = router.names.get(community) else { return };
            Arc::clone(&router.shards[slot as usize])
        };
        let table = shard.read();
        table.search(query, alive, emit);
    }
}

impl std::fmt::Debug for ShardedIndexNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedIndexNode")
            .field("records", &self.len())
            .field("communities", &self.community_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(key: &str, community: &str, name: &str) -> ResourceRecord {
        ResourceRecord::new(key, community, vec![("o/name".to_string(), name.to_string())])
    }

    fn hits(node: &ShardedIndexNode, community: &str, query: &Query) -> Vec<(String, PeerId)> {
        let mut out = Vec::new();
        node.search(community, query, |_| true, |key, p, _| out.push((key.to_string(), p)));
        out
    }

    #[test]
    fn mirrors_index_node_round_trip_semantics() {
        let node = ShardedIndexNode::new();
        node.insert(PeerId(1), &record("k1", "patterns", "Observer"));
        node.insert(PeerId(2), &record("k2", "patterns", "Visitor"));
        node.insert(PeerId(3), &record("k3", "songs", "Jazz"));
        assert_eq!(node.len(), 3);
        assert_eq!(node.community_count(), 2);
        assert_eq!(
            hits(&node, "patterns", &Query::any_keyword("observer")),
            vec![("k1".to_string(), PeerId(1))]
        );
        node.remove(PeerId(1), "k1");
        assert!(hits(&node, "patterns", &Query::any_keyword("observer")).is_empty());
        node.remove(PeerId(9), "k2");
        node.remove(PeerId(1), "missing");
        assert_eq!(node.len(), 2);
    }

    #[test]
    fn first_record_wins_and_providers_accumulate() {
        let node = ShardedIndexNode::new();
        node.insert(PeerId(1), &record("k", "c", "original"));
        node.insert(PeerId(2), &record("k", "c", "changed"));
        assert_eq!(node.provider_count("k"), 2);
        assert!(node.has_provider("k", PeerId(2)));
        assert!(!node.has_provider("k", PeerId(3)));
        assert_eq!(hits(&node, "c", &Query::any_keyword("original")).len(), 2);
        assert!(hits(&node, "c", &Query::any_keyword("changed")).is_empty());
        node.remove(PeerId(1), "k");
        node.remove(PeerId(2), "k");
        assert!(node.is_empty());
    }

    #[test]
    fn upsert_replaces_and_can_move_communities() {
        let node = ShardedIndexNode::new();
        node.insert(PeerId(1), &record("k", "c", "original"));
        node.insert(PeerId(2), &record("k", "c", "original"));
        node.upsert(PeerId(1), &record("k", "c", "changed"));
        assert_eq!(
            hits(&node, "c", &Query::any_keyword("changed")),
            vec![("k".to_string(), PeerId(1)), ("k".to_string(), PeerId(2))]
        );
        node.upsert(PeerId(1), &record("k", "d", "moved"));
        assert!(hits(&node, "c", &Query::All).is_empty());
        assert_eq!(hits(&node, "d", &Query::any_keyword("moved")).len(), 2);
        node.upsert(PeerId(3), &record("k2", "c", "fresh"));
        assert_eq!(hits(&node, "c", &Query::any_keyword("fresh")), vec![("k2".to_string(), PeerId(3))]);
    }

    #[test]
    fn search_and_digest_agree_with_index_node_on_an_interleaved_history() {
        // drive both implementations through one randomized-ish op tape
        // and compare observable state at every step
        let sharded = ShardedIndexNode::new();
        let mut linear = crate::IndexNode::new();
        let communities = ["a", "b", "c"];
        for step in 0u32..200 {
            let key = format!("k{}", step % 17);
            let community = communities[(step % 3) as usize];
            let peer = PeerId(step % 5);
            let rec = record(&key, community, &format!("name{} term{}", step % 7, step % 11));
            match step % 4 {
                0 | 1 => {
                    sharded.insert(peer, &rec);
                    linear.insert(peer, &rec);
                }
                2 => {
                    sharded.upsert(peer, &rec);
                    linear.upsert(peer, &rec);
                }
                _ => {
                    sharded.remove(peer, &key);
                    linear.remove(peer, &key);
                }
            }
            assert_eq!(sharded.len(), linear.len(), "step {step}");
            for c in communities {
                let q = Query::any_keyword(&format!("name{}", step % 7));
                let mut a = Vec::new();
                sharded.search(c, &q, |_| true, |k, p, _| a.push((k.to_string(), p)));
                let mut b = Vec::new();
                linear.search(c, &q, |_| true, |k, p, _| b.push((k.to_string(), p)));
                assert_eq!(a, b, "step {step} community {c}");
            }
        }
        let mut a: Vec<(String, Option<String>)> = Vec::new();
        sharded.for_each_digest_term(|c, t| a.push((c.to_string(), t.map(str::to_string))));
        a.sort();
        let mut b: Vec<(String, Option<String>)> = Vec::new();
        linear.for_each_digest_term(|c, t| b.push((c.to_string(), t.map(str::to_string))));
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn liveness_filters_the_candidate_set() {
        let node = ShardedIndexNode::new();
        node.insert(PeerId(1), &record("k", "c", "x"));
        node.insert(PeerId(2), &record("k", "c", "x"));
        let mut v = Vec::new();
        node.search("c", &Query::any_keyword("x"), |p| p == PeerId(2), |_, p, _| v.push(p));
        assert_eq!(v, vec![PeerId(2)]);
    }

    #[test]
    fn hits_share_the_published_metadata_allocation() {
        let node = ShardedIndexNode::new();
        let rec = record("k", "c", "x");
        node.insert(PeerId(1), &rec);
        let mut shared = false;
        node.search("c", &Query::All, |_| true, |_, _, fields| {
            shared = SharedFields::ptr_eq(fields, &rec.fields);
        });
        assert!(shared, "no metadata copy between publish and hit");
    }
}
