//! Napster-style centralized substrate: one index server, direct
//! peer-to-peer transfers.
//!
//! Publish uploads metadata to the server; search is a single
//! request/response round trip; retrieve is a direct connection to the
//! provider learned from the hit. The server answers only with records
//! whose provider is currently online (Napster dropped a user's records
//! with their session). The server's records live in a
//! [`ShardedIndexNode`] — the community-sharded, read-mostly table —
//! so query evaluation is a posting-list lookup behind read guards, and
//! [`PeerNetwork::search_batch`] serves many in-flight queries from a
//! thread pool at once (the multi-core serving plane E9 measures).

use crate::latency::LatencyModel;
use crate::message::{ResourceRecord, SearchHit, Time};
use crate::peer::PeerId;
use crate::pool::serve_batch;
use crate::sharded::ShardedIndexNode;
use crate::stats::{MsgKind, NetStats, RetrieveOutcome, SearchOutcome};
use crate::traits::{PeerNetwork, SearchRequest};
use up2p_store::Query;

/// The centralized (Napster) substrate.
pub struct CentralizedNetwork {
    alive: Vec<bool>,
    /// The server's indexed record table, sharded by community.
    server: ShardedIndexNode,
    latency: Box<dyn LatencyModel + Send + Sync>,
    stats: NetStats,
}

impl std::fmt::Debug for CentralizedNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CentralizedNetwork")
            .field("peers", &self.alive.len())
            .field("records", &self.server.len())
            .finish()
    }
}

impl CentralizedNetwork {
    /// Creates a network of `n` peers, all online, with the given link
    /// latency model (used for peer↔server and peer↔peer links alike).
    pub fn new(n: usize, latency: Box<dyn LatencyModel + Send + Sync>) -> Self {
        CentralizedNetwork {
            alive: vec![true; n],
            server: ShardedIndexNode::new(),
            latency,
            stats: NetStats::new(),
        }
    }

    /// Number of records the server currently indexes.
    pub fn server_record_count(&self) -> usize {
        self.server.len()
    }

    fn rtt(&mut self, a: PeerId, b: PeerId) -> Time {
        self.latency.delay(a, b) + self.latency.delay(b, a)
    }
}

/// Pseudo peer-id used for latency sampling on peer↔server links.
const SERVER: PeerId = PeerId(u32::MAX);

impl PeerNetwork for CentralizedNetwork {
    fn protocol_name(&self) -> &'static str {
        "Napster"
    }

    fn peer_count(&self) -> usize {
        self.alive.len()
    }

    fn is_alive(&self, peer: PeerId) -> bool {
        self.alive.get(peer.index()).copied().unwrap_or(false)
    }

    fn set_alive(&mut self, peer: PeerId, alive: bool) {
        if let Some(a) = self.alive.get_mut(peer.index()) {
            *a = alive;
        }
    }

    fn publish(&mut self, provider: PeerId, record: ResourceRecord) {
        if !self.is_alive(provider) {
            return;
        }
        self.stats.sent(MsgKind::Publish);
        self.server.insert(provider, &record);
    }

    fn unpublish(&mut self, provider: PeerId, key: &str) {
        self.stats.sent(MsgKind::Unpublish);
        self.server.remove(provider, key);
    }

    fn search(&mut self, origin: PeerId, community: &str, query: &Query) -> SearchOutcome {
        self.stats.queries += 1;
        let mut outcome = SearchOutcome::default();
        if !self.is_alive(origin) {
            return outcome;
        }
        // one request up, one response down
        self.stats.sent(MsgKind::Query);
        self.stats.sent(MsgKind::QueryHit);
        outcome.messages = 2;
        outcome.latency = self.rtt(origin, SERVER);
        let alive = &self.alive;
        self.server.search(
            community,
            query,
            |p| alive.get(p.index()).copied().unwrap_or(false),
            |key, provider, fields| {
                outcome.hits.push(SearchHit {
                    key: key.to_string(),
                    provider,
                    fields: fields.clone(),
                    hops: 1,
                });
            },
        );
        for _ in &outcome.hits {
            self.stats.hit(1);
        }
        if !outcome.hits.is_empty() {
            self.stats.queries_with_hits += 1;
            outcome.first_hit_latency = Some(outcome.latency);
        }
        outcome
    }

    fn search_batch(&mut self, requests: &[SearchRequest], workers: usize) -> Vec<SearchOutcome> {
        // the latency model is stateful (&mut), so the per-request RTTs
        // are sampled sequentially in request order — the same call
        // sequence sequential serving makes — before the parallel phase
        let mut rtts: Vec<Option<Time>> = Vec::with_capacity(requests.len());
        for r in requests {
            let rtt =
                if self.is_alive(r.origin) { Some(self.rtt(r.origin, SERVER)) } else { None };
            rtts.push(rtt);
        }
        // parallel phase: read-guard-only evaluation against the shared
        // sharded server from the worker pool
        let server = &self.server;
        let alive = &self.alive;
        let outcomes = serve_batch(workers, requests.len(), |i| {
            let r = &requests[i];
            let mut outcome = SearchOutcome::default();
            let Some(latency) = rtts.get(i).copied().flatten() else { return outcome };
            outcome.messages = 2;
            outcome.latency = latency;
            server.search(
                &r.community,
                &r.query,
                |p| alive.get(p.index()).copied().unwrap_or(false),
                |key, provider, fields| {
                    outcome.hits.push(SearchHit {
                        key: key.to_string(),
                        provider,
                        fields: fields.clone(),
                        hops: 1,
                    });
                },
            );
            if !outcome.hits.is_empty() {
                outcome.first_hit_latency = Some(latency);
            }
            outcome
        });
        // stats merge in request order: identical totals and by_kind()
        // view to issuing the batch through `search` one at a time
        for (outcome, rtt) in outcomes.iter().zip(&rtts) {
            self.stats.queries += 1;
            if rtt.is_none() {
                continue;
            }
            self.stats.sent(MsgKind::Query);
            self.stats.sent(MsgKind::QueryHit);
            for _ in &outcome.hits {
                self.stats.hit(1);
            }
            if !outcome.hits.is_empty() {
                self.stats.queries_with_hits += 1;
            }
        }
        outcomes
    }

    fn retrieve(&mut self, origin: PeerId, provider: PeerId, key: &str) -> RetrieveOutcome {
        self.stats.retrieves += 1;
        if !self.is_alive(origin) {
            // a dead peer cannot send: the request never leaves the origin
            return RetrieveOutcome::Unavailable;
        }
        self.stats.sent(MsgKind::Retrieve);
        if !self.is_alive(provider) {
            self.stats.dropped += 1;
            return RetrieveOutcome::Unavailable;
        }
        if !self.server.has_provider(key, provider) {
            self.stats.sent(MsgKind::RetrieveFail);
            return RetrieveOutcome::Unavailable;
        }
        self.stats.sent(MsgKind::RetrieveOk);
        self.stats.retrieves_ok += 1;
        RetrieveOutcome::Fetched { provider, latency: self.rtt(origin, provider) }
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = NetStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConstantLatency;

    fn record(key: &str, community: &str, name: &str) -> ResourceRecord {
        ResourceRecord::new(key, community, vec![("o/name".to_string(), name.to_string())])
    }

    fn net(n: usize) -> CentralizedNetwork {
        CentralizedNetwork::new(n, Box::new(ConstantLatency(10_000)))
    }

    #[test]
    fn publish_search_retrieve_round_trip() {
        let mut net = net(4);
        net.publish(PeerId(1), record("k1", "patterns", "Observer"));
        let out = net.search(PeerId(0), "patterns", &Query::any_keyword("observer"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].provider, PeerId(1));
        assert_eq!(out.messages, 2);
        assert_eq!(out.latency, 20_000);
        let got = net.retrieve(PeerId(0), PeerId(1), "k1");
        assert!(got.is_fetched());
    }

    #[test]
    fn community_scoping() {
        let mut net = net(3);
        net.publish(PeerId(1), record("k1", "patterns", "Observer"));
        net.publish(PeerId(2), record("k2", "songs", "Observer"));
        let out = net.search(PeerId(0), "patterns", &Query::any_keyword("observer"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].key, "k1");
    }

    #[test]
    fn dead_providers_filtered_from_results() {
        let mut net = net(3);
        net.publish(PeerId(1), record("k1", "c", "x"));
        net.publish(PeerId(2), record("k1", "c", "x"));
        net.set_alive(PeerId(1), false);
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].provider, PeerId(2));
        // retrieval from the dead one fails, from the live one succeeds
        assert!(!net.retrieve(PeerId(0), PeerId(1), "k1").is_fetched());
        assert!(net.retrieve(PeerId(0), PeerId(2), "k1").is_fetched());
        // and one where the provider never had the object fails loudly
        assert!(!net.retrieve(PeerId(0), PeerId(0), "k1").is_fetched());
        assert_eq!(net.stats().count(MsgKind::Retrieve), 3);
        assert_eq!(net.stats().count(MsgKind::RetrieveOk), 1);
        assert_eq!(net.stats().count(MsgKind::RetrieveFail), 1);
        assert_eq!(net.stats().dropped, 1, "the dead provider's request is dropped");
    }

    #[test]
    fn replication_increases_providers() {
        let mut net = net(4);
        net.publish(PeerId(1), record("k1", "c", "x"));
        net.publish(PeerId(3), record("k1", "c", "x"));
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert_eq!(out.hits.len(), 2);
        assert_eq!(out.distinct_keys(), 1);
    }

    #[test]
    fn unpublish_removes_record() {
        let mut net = net(2);
        net.publish(PeerId(1), record("k1", "c", "x"));
        net.unpublish(PeerId(1), "k1");
        assert_eq!(net.server_record_count(), 0);
        let out = net.search(PeerId(0), "c", &Query::All);
        assert!(out.hits.is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let mut net = net(2);
        net.publish(PeerId(1), record("k1", "c", "x"));
        net.search(PeerId(0), "c", &Query::any_keyword("x"));
        net.search(PeerId(0), "c", &Query::any_keyword("zzz"));
        let s = net.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.queries_with_hits, 1);
        assert_eq!(s.query_success_rate(), 0.5);
        assert_eq!(s.count(MsgKind::Publish), 1);
        assert_eq!(s.count(MsgKind::Query), 2);
    }

    #[test]
    fn dead_origin_gets_nothing() {
        let mut net = net(2);
        net.publish(PeerId(1), record("k1", "c", "x"));
        net.set_alive(PeerId(0), false);
        let out = net.search(PeerId(0), "c", &Query::All);
        assert!(out.hits.is_empty());
        assert_eq!(out.messages, 0);
        // the same for retrieves: a dead origin sends nothing
        let before = net.stats().messages;
        assert!(!net.retrieve(PeerId(0), PeerId(1), "k1").is_fetched());
        assert_eq!(net.stats().messages, before, "a dead peer cannot send");
        assert_eq!(net.stats().retrieves, 1);
    }

    #[test]
    fn batch_serving_is_exactly_sequential_serving() {
        // same requests through search() and search_batch() on twin
        // networks: outcomes and cumulative stats must be identical,
        // including the stateful (seeded) latency model's RTT stream
        use crate::latency::UniformLatency;
        for workers in [1, 4] {
            let build = || {
                let mut n = CentralizedNetwork::new(8, Box::new(UniformLatency::new(1_000, 9_000, 7)));
                n.publish(PeerId(1), record("k1", "patterns", "Observer"));
                n.publish(PeerId(2), record("k2", "patterns", "Visitor Observer"));
                n.publish(PeerId(3), record("k3", "songs", "Jazz"));
                n.set_alive(PeerId(5), false);
                n
            };
            let requests = vec![
                SearchRequest::new(PeerId(0), "patterns", Query::any_keyword("observer")),
                SearchRequest::new(PeerId(5), "patterns", Query::any_keyword("observer")),
                SearchRequest::new(PeerId(4), "songs", Query::any_keyword("jazz")),
                SearchRequest::new(PeerId(6), "songs", Query::any_keyword("absent")),
            ];
            let mut sequential = build();
            let expected: Vec<SearchOutcome> = requests
                .iter()
                .map(|r| sequential.search(r.origin, &r.community, &r.query))
                .collect();
            let mut batched = build();
            let got = batched.search_batch(&requests, workers);
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.messages, e.messages);
                assert_eq!(g.latency, e.latency);
                assert_eq!(g.first_hit_latency, e.first_hit_latency);
                let key = |h: &SearchHit| (h.key.clone(), h.provider, h.hops);
                assert_eq!(g.hits.iter().map(key).collect::<Vec<_>>(), e.hits.iter().map(key).collect::<Vec<_>>());
            }
            let (s, b) = (sequential.stats(), batched.stats());
            assert_eq!(s.messages, b.messages, "workers={workers}");
            assert_eq!(s.by_kind(), b.by_kind());
            assert_eq!(s.queries, b.queries);
            assert_eq!(s.queries_with_hits, b.queries_with_hits);
            assert_eq!(s.hits, b.hits);
            assert_eq!(s.hit_hops, b.hit_hops);
        }
    }

    #[test]
    fn hits_share_the_server_metadata() {
        let mut net = net(2);
        let rec = record("k1", "c", "x");
        net.publish(PeerId(1), rec.clone());
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert!(
            crate::message::SharedFields::ptr_eq(&out.hits[0].fields, &rec.fields),
            "hit metadata is the published allocation"
        );
    }
}
