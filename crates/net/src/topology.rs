//! Overlay topology generation.
//!
//! Three families cover the experiments: ring-based k-regular lattices
//! (deterministic baseline), Watts–Strogatz small worlds (Gnutella-like
//! clustering with short paths) and Barabási–Albert scale-free graphs
//! (measured Gnutella degree distributions were heavy-tailed).

use crate::peer::PeerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// An undirected overlay graph over peers `0..n`.
#[derive(Debug, Clone)]
pub struct Topology {
    adjacency: Vec<BTreeSet<PeerId>>,
}

impl Topology {
    /// An empty topology over `n` peers.
    pub fn empty(n: usize) -> Self {
        Topology { adjacency: vec![BTreeSet::new(); n] }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// `true` when the topology has no peers.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Adds an undirected edge (self-loops ignored).
    pub fn connect(&mut self, a: PeerId, b: PeerId) {
        if a != b {
            self.adjacency[a.index()].insert(b);
            self.adjacency[b.index()].insert(a);
        }
    }

    /// Removes an undirected edge.
    pub fn disconnect(&mut self, a: PeerId, b: PeerId) {
        self.adjacency[a.index()].remove(&b);
        self.adjacency[b.index()].remove(&a);
    }

    /// Neighbors of `p` in id order.
    pub fn neighbors(&self, p: PeerId) -> impl Iterator<Item = PeerId> + '_ {
        self.adjacency[p.index()].iter().copied()
    }

    /// Degree of `p`.
    pub fn degree(&self, p: PeerId) -> usize {
        self.adjacency[p.index()].len()
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Ring lattice: each peer connects to its `k` nearest neighbors on
    /// each side (degree `2k` for `n > 2k`).
    pub fn ring_lattice(n: usize, k: usize) -> Self {
        let mut t = Topology::empty(n);
        for i in 0..n {
            for j in 1..=k {
                let other = (i + j) % n;
                t.connect(PeerId(i as u32), PeerId(other as u32));
            }
        }
        t
    }

    /// Watts–Strogatz small world: ring lattice with each edge rewired
    /// with probability `beta`.
    pub fn small_world(n: usize, k: usize, beta: f64, seed: u64) -> Self {
        let mut t = Self::ring_lattice(n, k);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            for j in 1..=k {
                if rng.gen::<f64>() < beta {
                    let a = PeerId(i as u32);
                    let b = PeerId(((i + j) % n) as u32);
                    // pick a new endpoint avoiding self and duplicates
                    for _attempt in 0..16 {
                        let c = PeerId(rng.gen_range(0..n) as u32);
                        if c != a && !t.adjacency[a.index()].contains(&c) {
                            t.disconnect(a, b);
                            t.connect(a, c);
                            break;
                        }
                    }
                }
            }
        }
        t
    }

    /// Barabási–Albert preferential attachment: starts from a small
    /// clique, each new peer attaches to `m` existing peers chosen
    /// proportionally to degree.
    pub fn scale_free(n: usize, m: usize, seed: u64) -> Self {
        let m = m.max(1);
        let mut t = Topology::empty(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let seed_size = (m + 1).min(n);
        // initial clique
        for i in 0..seed_size {
            for j in (i + 1)..seed_size {
                t.connect(PeerId(i as u32), PeerId(j as u32));
            }
        }
        // degree-weighted endpoint pool (each edge contributes both ends)
        let mut pool: Vec<PeerId> = Vec::new();
        for (i, neighbors) in t.adjacency.iter().enumerate() {
            for _ in 0..neighbors.len() {
                pool.push(PeerId(i as u32));
            }
        }
        for i in seed_size..n {
            let new = PeerId(i as u32);
            let mut chosen = BTreeSet::new();
            while chosen.len() < m.min(i) {
                let pick = if pool.is_empty() {
                    PeerId(rng.gen_range(0..i) as u32)
                } else {
                    pool[rng.gen_range(0..pool.len())]
                };
                if pick != new {
                    chosen.insert(pick);
                }
            }
            for c in chosen {
                t.connect(new, c);
                pool.push(new);
                pool.push(c);
            }
        }
        t
    }

    /// Is the graph connected (ignoring isolated zero-degree peers is NOT
    /// done — every peer must be reachable)?
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![PeerId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(p) = stack.pop() {
            for nb in self.neighbors(p) {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    count += 1;
                    stack.push(nb);
                }
            }
        }
        count == n
    }

    /// All peer ids.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> {
        (0..self.len() as u32).map(PeerId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_lattice_degrees() {
        let t = Topology::ring_lattice(10, 2);
        for p in t.peers() {
            assert_eq!(t.degree(p), 4, "{p}");
        }
        assert!(t.is_connected());
        assert_eq!(t.edge_count(), 20);
    }

    #[test]
    fn small_world_stays_connected_mostly() {
        let t = Topology::small_world(100, 3, 0.1, 42);
        assert_eq!(t.len(), 100);
        // rewiring preserves edge count
        assert_eq!(t.edge_count(), 300);
        assert!(t.is_connected(), "beta=0.1 rewiring should keep the ring backbone connected");
    }

    #[test]
    fn scale_free_has_heavy_tail() {
        let t = Topology::scale_free(200, 2, 7);
        assert!(t.is_connected());
        let max_degree = t.peers().map(|p| t.degree(p)).max().unwrap();
        let min_degree = t.peers().map(|p| t.degree(p)).min().unwrap();
        assert!(min_degree >= 2);
        assert!(
            max_degree >= 10,
            "preferential attachment should produce hubs, max degree {max_degree}"
        );
    }

    #[test]
    fn connect_disconnect() {
        let mut t = Topology::empty(3);
        t.connect(PeerId(0), PeerId(1));
        t.connect(PeerId(0), PeerId(0)); // self loop ignored
        assert_eq!(t.degree(PeerId(0)), 1);
        assert!(!t.is_connected()); // peer 2 isolated
        t.connect(PeerId(1), PeerId(2));
        assert!(t.is_connected());
        t.disconnect(PeerId(0), PeerId(1));
        assert_eq!(t.degree(PeerId(0)), 0);
    }

    #[test]
    fn deterministic_generation() {
        let a = Topology::small_world(50, 2, 0.2, 9);
        let b = Topology::small_world(50, 2, 0.2, 9);
        for p in a.peers() {
            assert_eq!(
                a.neighbors(p).collect::<Vec<_>>(),
                b.neighbors(p).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn empty_topology() {
        let t = Topology::empty(0);
        assert!(t.is_empty());
        assert!(t.is_connected());
    }
}
