//! Message and latency accounting for the simulated substrates.

use crate::message::Time;
use std::collections::BTreeMap;

/// Dense discriminant of every message kind the substrates count. The
/// per-message counter is an array bump indexed by this enum — no map
/// lookup, string compare or allocation on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// A metadata query propagating through the overlay.
    Query,
    /// Results travelling back toward the origin.
    QueryHit,
    /// Metadata upload to an index node.
    Publish,
    /// Removal of published metadata.
    Unpublish,
    /// Direct download request.
    Retrieve,
    /// Download response (success).
    RetrieveOk,
    /// Download response (failure).
    RetrieveFail,
    /// Routing digest advertisement to a neighbor (guided search).
    DigestPush,
    /// Digest handshake request to a new neighbor (guided search).
    DigestRequest,
}

impl MsgKind {
    /// Every kind, in counter order.
    pub const ALL: [MsgKind; 9] = [
        MsgKind::Query,
        MsgKind::QueryHit,
        MsgKind::Publish,
        MsgKind::Unpublish,
        MsgKind::Retrieve,
        MsgKind::RetrieveOk,
        MsgKind::RetrieveFail,
        MsgKind::DigestPush,
        MsgKind::DigestRequest,
    ];

    /// Kind name as the experiment tables print it.
    pub fn name(self) -> &'static str {
        match self {
            MsgKind::Query => "Query",
            MsgKind::QueryHit => "QueryHit",
            MsgKind::Publish => "Publish",
            MsgKind::Unpublish => "Unpublish",
            MsgKind::Retrieve => "Retrieve",
            MsgKind::RetrieveOk => "RetrieveOk",
            MsgKind::RetrieveFail => "RetrieveFail",
            MsgKind::DigestPush => "DigestPush",
            MsgKind::DigestRequest => "DigestRequest",
        }
    }
}

/// Cumulative network statistics. Every substrate increments these; the
/// experiment harness reads them to produce the E3/E5/E6 tables.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Total messages sent (any kind).
    pub messages: u64,
    /// Per-kind message counters, indexed by `MsgKind` discriminant.
    kind_counts: [u64; MsgKind::ALL.len()],
    /// Messages dropped at dead peers.
    pub dropped: u64,
    /// Queries issued.
    pub queries: u64,
    /// Queries that returned at least one hit.
    pub queries_with_hits: u64,
    /// Total hits returned.
    pub hits: u64,
    /// Retrievals attempted.
    pub retrieves: u64,
    /// Retrievals that succeeded.
    pub retrieves_ok: u64,
    /// Histogram of hop counts at which hits were found.
    pub hit_hops: BTreeMap<u8, u64>,
}

impl NetStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sent message of the given kind.
    pub fn sent(&mut self, kind: MsgKind) {
        self.messages += 1;
        self.kind_counts[kind as usize] += 1;
    }

    /// Records `n` sent messages of the given kind in one bump (digest
    /// refreshes report whole batches).
    pub fn sent_n(&mut self, kind: MsgKind, n: u64) {
        self.messages += n;
        self.kind_counts[kind as usize] += n;
    }

    /// Messages sent of one kind.
    pub fn count(&self, kind: MsgKind) -> u64 {
        self.kind_counts[kind as usize]
    }

    /// Messages by kind name (`Query`, `QueryHit`, ...), kinds with zero
    /// sends omitted — the reporting view over the dense counters.
    pub fn by_kind(&self) -> BTreeMap<&'static str, u64> {
        MsgKind::ALL
            .into_iter()
            .filter(|&k| self.count(k) > 0)
            .map(|k| (k.name(), self.count(k)))
            .collect()
    }

    /// Folds another accounting into this one — used by the pooled
    /// `search_batch` drivers, which account each request into a private
    /// `NetStats` off-thread and merge them back in request order so the
    /// totals (and [`NetStats::by_kind`]) match sequential serving.
    pub fn merge(&mut self, other: &NetStats) {
        self.messages += other.messages;
        for (mine, theirs) in self.kind_counts.iter_mut().zip(other.kind_counts.iter()) {
            *mine += theirs;
        }
        self.dropped += other.dropped;
        self.queries += other.queries;
        self.queries_with_hits += other.queries_with_hits;
        self.hits += other.hits;
        self.retrieves += other.retrieves;
        self.retrieves_ok += other.retrieves_ok;
        for (&hops, &n) in &other.hit_hops {
            *self.hit_hops.entry(hops).or_insert(0) += n;
        }
    }

    /// Records a hit found at `hops`.
    pub fn hit(&mut self, hops: u8) {
        self.hits += 1;
        *self.hit_hops.entry(hops).or_insert(0) += 1;
    }

    /// Success rate of queries (hits ≥ 1).
    pub fn query_success_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.queries_with_hits as f64 / self.queries as f64
        }
    }

    /// Success rate of retrieves.
    pub fn retrieve_success_rate(&self) -> f64 {
        if self.retrieves == 0 {
            0.0
        } else {
            self.retrieves_ok as f64 / self.retrieves as f64
        }
    }

    /// Mean messages per issued query.
    pub fn messages_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.messages as f64 / self.queries as f64
        }
    }
}

/// Outcome of a single search operation.
#[derive(Debug, Clone, Default)]
pub struct SearchOutcome {
    /// Unique hits (key, provider) in arrival order.
    pub hits: Vec<crate::message::SearchHit>,
    /// Messages generated by this search (queries + hits).
    pub messages: u64,
    /// Virtual time from issue to the *last* hit arrival (or to
    /// quiescence when no hits).
    pub latency: Time,
    /// Virtual time to the first hit, if any.
    pub first_hit_latency: Option<Time>,
}

impl SearchOutcome {
    /// Distinct resource keys among the hits.
    pub fn distinct_keys(&self) -> usize {
        let mut keys: Vec<&str> = self.hits.iter().map(|h| h.key.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }
}

/// Outcome of a retrieve operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetrieveOutcome {
    /// Object fetched from the given provider after the given delay.
    Fetched {
        /// Providing peer.
        provider: crate::peer::PeerId,
        /// Round-trip virtual time.
        latency: Time,
    },
    /// No live provider had the object.
    Unavailable,
}

impl RetrieveOutcome {
    /// `true` for [`RetrieveOutcome::Fetched`].
    pub fn is_fetched(&self) -> bool {
        matches!(self, RetrieveOutcome::Fetched { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let mut s = NetStats::new();
        assert_eq!(s.query_success_rate(), 0.0);
        s.queries = 4;
        s.queries_with_hits = 3;
        assert_eq!(s.query_success_rate(), 0.75);
        s.retrieves = 2;
        s.retrieves_ok = 1;
        assert_eq!(s.retrieve_success_rate(), 0.5);
        s.messages = 40;
        assert_eq!(s.messages_per_query(), 10.0);
    }

    #[test]
    fn kind_counting() {
        let mut s = NetStats::new();
        s.sent(MsgKind::Query);
        s.sent(MsgKind::Query);
        s.sent(MsgKind::QueryHit);
        s.sent_n(MsgKind::DigestPush, 5);
        assert_eq!(s.messages, 8);
        assert_eq!(s.count(MsgKind::Query), 2);
        assert_eq!(s.count(MsgKind::QueryHit), 1);
        assert_eq!(s.count(MsgKind::DigestPush), 5);
        assert_eq!(s.count(MsgKind::Publish), 0);
        let view = s.by_kind();
        assert_eq!(view["Query"], 2);
        assert_eq!(view["QueryHit"], 1);
        assert_eq!(view["DigestPush"], 5);
        assert!(!view.contains_key("Publish"), "zero counts omitted");
        // names stay distinct and in counter order
        let names: Vec<&str> = MsgKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 9);
        assert_eq!(names[0], "Query");
    }

    #[test]
    fn merge_adds_every_counter() {
        let mut a = NetStats::new();
        a.sent(MsgKind::Query);
        a.queries = 1;
        a.hit(2);
        let mut b = NetStats::new();
        b.sent(MsgKind::Query);
        b.sent(MsgKind::QueryHit);
        b.queries = 2;
        b.queries_with_hits = 1;
        b.dropped = 3;
        b.hit(2);
        b.hit(4);
        a.merge(&b);
        assert_eq!(a.messages, 3);
        assert_eq!(a.count(MsgKind::Query), 2);
        assert_eq!(a.count(MsgKind::QueryHit), 1);
        assert_eq!(a.queries, 3);
        assert_eq!(a.queries_with_hits, 1);
        assert_eq!(a.dropped, 3);
        assert_eq!(a.hits, 3);
        assert_eq!(a.hit_hops[&2], 2);
        assert_eq!(a.hit_hops[&4], 1);
    }

    #[test]
    fn hit_histogram() {
        let mut s = NetStats::new();
        s.hit(1);
        s.hit(3);
        s.hit(3);
        assert_eq!(s.hits, 3);
        assert_eq!(s.hit_hops[&3], 2);
    }

    #[test]
    fn outcome_distinct_keys() {
        use crate::message::{SearchHit, SharedFields};
        use crate::peer::PeerId;
        let fields: SharedFields = Vec::new().into();
        let hit = |key: &str, provider, hops| SearchHit {
            key: key.into(),
            provider: PeerId(provider),
            fields: SharedFields::clone(&fields),
            hops,
        };
        let o = SearchOutcome {
            hits: vec![hit("a", 1, 1), hit("a", 2, 2), hit("b", 1, 1)],
            ..SearchOutcome::default()
        };
        assert_eq!(o.distinct_keys(), 2);
        assert!(!RetrieveOutcome::Unavailable.is_fetched());
    }
}
