//! The shared per-node metadata index every record-holding node uses.
//!
//! The paper's servent evaluates community-scoped queries at whichever
//! node holds the records — the Napster server, each FastTrack
//! super-peer, or every Gnutella peer's own share table. [`IndexNode`]
//! is that evaluation engine: a community-partitioned wrapper over
//! [`up2p_store::MetadataIndex`] that turns `search` into a posting-list
//! lookup instead of an O(records) scan, and keeps exactly one shared
//! metadata allocation per record (provider uploads and search hits are
//! refcount bumps).
//!
//! Sub-indexes are created lazily, on the first record published into a
//! community; provider liveness is applied to the candidate set the
//! index produces, never to the full corpus.
//!
//! The per-community slice lives in [`CommunityTable`] so the
//! single-threaded [`IndexNode`] and the read-mostly
//! [`crate::ShardedIndexNode`] share one implementation of the
//! first-record-wins / last-provider-out semantics.

use crate::message::{ResourceRecord, SharedFields};
use crate::peer::PeerId;
use std::collections::{BTreeSet, HashMap};
use up2p_store::{MetadataIndex, Query, ResourceId};

/// One community's slice of an index node: the inverted metadata index
/// plus the provider set per record. [`IndexNode`] holds these inline;
/// [`crate::ShardedIndexNode`] puts each behind its own `RwLock` shard.
#[derive(Debug, Default)]
pub(crate) struct CommunityTable {
    index: MetadataIndex,
    /// Record key → peers currently advertising the record. `BTreeSet`
    /// keeps per-record hit emission deterministic (ascending peer id,
    /// as the pre-index scan produced).
    providers: HashMap<ResourceId, BTreeSet<PeerId>>,
}

impl CommunityTable {
    /// Adds `provider` to an already-indexed key. Returns `false` when
    /// the key is not present here (caller indexes the record fresh).
    pub(crate) fn add_provider(&mut self, key: &str, provider: PeerId) -> bool {
        match self.providers.get_mut(key) {
            Some(set) => {
                set.insert(provider);
                true
            }
            None => false,
        }
    }

    /// Indexes a fresh record (one refcount bump on the shared metadata)
    /// with `provider` as its first advertiser.
    pub(crate) fn index_record(&mut self, id: ResourceId, provider: PeerId, fields: &SharedFields) {
        self.index.insert_shared(id.clone(), SharedFields::clone(fields));
        self.providers.insert(id, BTreeSet::from([provider]));
    }

    /// Removes the record and its postings outright, returning the
    /// provider set it had (for upsert's provider-preserving replace).
    pub(crate) fn take_record(&mut self, key: &str) -> Option<(ResourceId, BTreeSet<PeerId>)> {
        let (id, providers) = self.providers.remove_entry(key)?;
        self.index.remove(&id);
        Some((id, providers))
    }

    /// Merges `extra` into the record's provider set (no-op when the key
    /// is absent).
    pub(crate) fn extend_providers(&mut self, key: &str, extra: BTreeSet<PeerId>) {
        if let Some(set) = self.providers.get_mut(key) {
            set.extend(extra);
        }
    }

    /// Withdraws `provider`'s copy of the record. When the last provider
    /// leaves, the record's postings are removed from the sub-index
    /// (targeted replay — cost proportional to the record, not the
    /// index). Returns `true` exactly when the record disappeared.
    pub(crate) fn remove_provider(&mut self, key: &str, provider: PeerId) -> bool {
        let Some(providers) = self.providers.get_mut(key) else { return false };
        providers.remove(&provider);
        if !providers.is_empty() {
            return false;
        }
        if let Some((id, _)) = self.providers.remove_entry(key) {
            self.index.remove(&id);
        }
        true
    }

    /// Is `provider` currently advertising the record?
    pub(crate) fn has_provider(&self, key: &str, provider: PeerId) -> bool {
        self.providers.get(key).is_some_and(|set| set.contains(&provider))
    }

    /// Number of providers advertising the record.
    pub(crate) fn provider_count(&self, key: &str) -> usize {
        self.providers.get(key).map_or(0, BTreeSet::len)
    }

    /// `true` when no live records remain in this community.
    pub(crate) fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Visits each live interned term (keyword token or normalized exact
    /// value) of this community — the digest vocabulary.
    pub(crate) fn for_each_live_term<F: FnMut(&str)>(&self, f: F) {
        self.index.for_each_live_term(f);
    }

    /// Evaluates a query against this community's records, invoking
    /// `emit(key, provider, fields)` for every (record, live provider)
    /// pair. Candidates arrive in insertion order, providers in
    /// ascending peer id.
    pub(crate) fn search<A, E>(&self, query: &Query, alive: A, mut emit: E)
    where
        A: Fn(PeerId) -> bool,
        E: FnMut(&str, PeerId, &SharedFields),
    {
        self.index.for_each_match(query, |id, fields| {
            if let Some(providers) = self.providers.get(id) {
                for &p in providers {
                    if alive(p) {
                        emit(id.as_hex(), p, fields);
                    }
                }
            }
        });
    }
}

/// A community-partitioned metadata index held by one record-storing
/// network node.
///
/// Semantics mirror the original linear share tables exactly (the
/// equivalence is property-tested against `Query::matches_fields`):
///
/// * [`IndexNode::insert`] keeps the first record published under a key
///   and only adds providers afterwards (the `or_insert` semantics the
///   centralized server and super-peer tables had), while
///   [`IndexNode::upsert`] replaces the stored record (the overwrite
///   semantics a peer's own share table had),
/// * a record disappears when its last provider withdraws,
/// * `search` evaluates one community's sub-index and filters candidate
///   records through a caller-supplied liveness predicate.
#[derive(Debug, Default)]
pub struct IndexNode {
    /// Community name → slot in `communities` (sub-indexes are created
    /// lazily on first publish).
    names: HashMap<String, u32>,
    communities: Vec<CommunityTable>,
    /// Record key → community slot, for community-blind removal and
    /// provider checks.
    by_key: HashMap<ResourceId, u32>,
}

impl IndexNode {
    /// Creates an empty index node.
    pub fn new() -> IndexNode {
        IndexNode::default()
    }

    /// Number of distinct records currently indexed.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// `true` when no records are indexed.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Number of communities with at least one record ever published
    /// (sub-indexes are lazy — this counts materialized ones).
    pub fn community_count(&self) -> usize {
        self.communities.len()
    }

    /// Registers `provider` for the record. The first publish of a key
    /// indexes the record's fields (one refcount bump on the shared
    /// metadata); subsequent publishes of the same key are provider-set
    /// insertions only, regardless of the fields they carry — exactly
    /// the first-record-wins semantics the linear tables had.
    pub fn insert(&mut self, provider: PeerId, record: &ResourceRecord) {
        if let Some(&slot) = self.by_key.get(record.key.as_str()) {
            if self.communities[slot as usize].add_provider(record.key.as_str(), provider) {
                return;
            }
            // key table and provider table disagree (should not happen);
            // drop the stale key entry and re-index the record fresh
            self.by_key.remove(record.key.as_str());
        }
        let slot = match self.names.get(record.community.as_str()) {
            Some(&slot) => slot,
            None => {
                let slot = self.communities.len() as u32;
                self.names.insert(record.community.clone(), slot);
                self.communities.push(CommunityTable::default());
                slot
            }
        };
        let id = ResourceId::from_key(&record.key);
        self.communities[slot as usize].index_record(id.clone(), provider, &record.fields);
        self.by_key.insert(id, slot);
    }

    /// Registers `provider` for the record, replacing the stored fields
    /// (and community) when the key is already present — the
    /// last-publish-wins semantics a peer's *own* share table has
    /// (flooding and live peers overwrote their `BTreeMap` entry
    /// wholesale). Providers accumulated under the old record are kept.
    pub fn upsert(&mut self, provider: PeerId, record: &ResourceRecord) {
        let previous = self.by_key.get(record.key.as_str()).copied().and_then(|slot| {
            let taken = self.communities[slot as usize].take_record(record.key.as_str())?;
            self.by_key.remove(record.key.as_str());
            Some(taken.1)
        });
        self.insert(provider, record);
        if let Some(old_providers) = previous {
            if let Some(&slot) = self.by_key.get(record.key.as_str()) {
                self.communities[slot as usize].extend_providers(record.key.as_str(), old_providers);
            }
        }
    }

    /// Withdraws `provider`'s copy of the record; the record's postings
    /// disappear with its last provider.
    pub fn remove(&mut self, provider: PeerId, key: &str) {
        let Some(&slot) = self.by_key.get(key) else { return };
        if self.communities[slot as usize].remove_provider(key, provider) {
            self.by_key.remove(key);
        }
    }

    /// Is `provider` currently advertising the record?
    pub fn has_provider(&self, key: &str, provider: PeerId) -> bool {
        self.by_key
            .get(key)
            .is_some_and(|&slot| self.communities[slot as usize].has_provider(key, provider))
    }

    /// Number of providers advertising the record.
    pub fn provider_count(&self, key: &str) -> usize {
        self.by_key
            .get(key)
            .map_or(0, |&slot| self.communities[slot as usize].provider_count(key))
    }

    /// Visits every digest entry this node's share table advertises:
    /// `(community, None)` once per community with live records, then
    /// `(community, Some(term))` for each live interned term (keyword
    /// token or normalized exact value) of that community — the exact
    /// vocabulary a [`crate::RoutingDigest`] of this node hashes.
    /// Communities whose records have all been withdrawn are skipped, so
    /// a rebuilt digest forgets them.
    pub fn for_each_digest_term<F>(&self, mut f: F)
    where
        F: FnMut(&str, Option<&str>),
    {
        for (name, &slot) in &self.names {
            let sub = &self.communities[slot as usize];
            if sub.is_empty() {
                continue;
            }
            f(name, None);
            sub.for_each_live_term(|term| f(name, Some(term)));
        }
    }

    /// Evaluates a community-scoped query against this node's records,
    /// invoking `emit(key, provider, fields)` for every (record, live
    /// provider) pair. `alive` filters the candidate set the index
    /// produced — the full corpus is never scanned. Candidates arrive in
    /// insertion order, providers in ascending peer id.
    pub fn search<A, E>(&self, community: &str, query: &Query, alive: A, emit: E)
    where
        A: Fn(PeerId) -> bool,
        E: FnMut(&str, PeerId, &SharedFields),
    {
        let Some(&slot) = self.names.get(community) else { return };
        self.communities[slot as usize].search(query, alive, emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(key: &str, community: &str, name: &str) -> ResourceRecord {
        ResourceRecord::new(key, community, vec![("o/name".to_string(), name.to_string())])
    }

    fn hits(node: &IndexNode, community: &str, query: &Query) -> Vec<(String, PeerId)> {
        let mut out = Vec::new();
        node.search(community, query, |_| true, |key, p, _| out.push((key.to_string(), p)));
        out
    }

    #[test]
    fn insert_search_remove_round_trip() {
        let mut node = IndexNode::new();
        node.insert(PeerId(1), &record("k1", "patterns", "Observer"));
        node.insert(PeerId(2), &record("k2", "patterns", "Visitor"));
        assert_eq!(node.len(), 2);
        assert_eq!(
            hits(&node, "patterns", &Query::any_keyword("observer")),
            vec![("k1".to_string(), PeerId(1))]
        );
        node.remove(PeerId(1), "k1");
        assert!(hits(&node, "patterns", &Query::any_keyword("observer")).is_empty());
        assert_eq!(node.len(), 1);
        // removing an absent key or provider is a no-op
        node.remove(PeerId(9), "k2");
        node.remove(PeerId(1), "missing");
        assert_eq!(node.len(), 1);
    }

    #[test]
    fn communities_partition_lazily() {
        let mut node = IndexNode::new();
        assert_eq!(node.community_count(), 0);
        node.insert(PeerId(1), &record("k1", "patterns", "Observer"));
        assert_eq!(node.community_count(), 1);
        node.insert(PeerId(2), &record("k2", "songs", "Observer"));
        assert_eq!(node.community_count(), 2);
        assert_eq!(hits(&node, "patterns", &Query::any_keyword("observer")).len(), 1);
        assert_eq!(hits(&node, "songs", &Query::any_keyword("observer")).len(), 1);
        assert!(hits(&node, "absent", &Query::All).is_empty());
    }

    #[test]
    fn replicas_share_one_record_and_leave_one_at_a_time() {
        let mut node = IndexNode::new();
        node.insert(PeerId(1), &record("k", "c", "x"));
        node.insert(PeerId(3), &record("k", "c", "x"));
        assert_eq!(node.len(), 1);
        assert_eq!(node.provider_count("k"), 2);
        assert_eq!(
            hits(&node, "c", &Query::All),
            vec![("k".to_string(), PeerId(1)), ("k".to_string(), PeerId(3))]
        );
        assert!(node.has_provider("k", PeerId(3)));
        assert!(!node.has_provider("k", PeerId(2)));
        node.remove(PeerId(1), "k");
        assert_eq!(node.provider_count("k"), 1);
        assert_eq!(node.len(), 1);
        node.remove(PeerId(3), "k");
        assert!(node.is_empty());
    }

    #[test]
    fn liveness_filters_the_candidate_set() {
        let mut node = IndexNode::new();
        node.insert(PeerId(1), &record("k", "c", "x"));
        node.insert(PeerId(2), &record("k", "c", "x"));
        let out = {
            let mut v = Vec::new();
            node.search("c", &Query::any_keyword("x"), |p| p == PeerId(2), |_, p, _| v.push(p));
            v
        };
        assert_eq!(out, vec![PeerId(2)]);
    }

    #[test]
    fn hits_share_the_published_metadata_allocation() {
        let mut node = IndexNode::new();
        let rec = record("k", "c", "x");
        node.insert(PeerId(1), &rec);
        let mut shared = false;
        node.search("c", &Query::All, |_| true, |_, _, fields| {
            shared = SharedFields::ptr_eq(fields, &rec.fields);
        });
        assert!(shared, "no metadata copy between publish and hit");
    }

    #[test]
    fn upsert_replaces_the_stored_record() {
        let mut node = IndexNode::new();
        node.insert(PeerId(1), &record("k", "c", "original"));
        node.insert(PeerId(2), &record("k", "c", "original"));
        node.upsert(PeerId(1), &record("k", "c", "changed"));
        assert_eq!(node.len(), 1);
        assert!(hits(&node, "c", &Query::any_keyword("original")).is_empty());
        // both providers survive the replacement
        assert_eq!(
            hits(&node, "c", &Query::any_keyword("changed")),
            vec![("k".to_string(), PeerId(1)), ("k".to_string(), PeerId(2))]
        );
        // an upsert can also move the record to another community
        node.upsert(PeerId(1), &record("k", "d", "moved"));
        assert!(hits(&node, "c", &Query::All).is_empty());
        assert_eq!(hits(&node, "d", &Query::any_keyword("moved")).len(), 2);
        // and behaves as a plain insert for a fresh key
        node.upsert(PeerId(3), &record("k2", "c", "fresh"));
        assert_eq!(hits(&node, "c", &Query::any_keyword("fresh")), vec![("k2".to_string(), PeerId(3))]);
    }

    #[test]
    fn first_record_wins_for_a_key() {
        // matches the old BTreeMap or_insert semantics: a second publish
        // of the same key only adds a provider, even with new fields
        let mut node = IndexNode::new();
        node.insert(PeerId(1), &record("k", "c", "original"));
        node.insert(PeerId(2), &record("k", "c", "changed"));
        assert_eq!(hits(&node, "c", &Query::any_keyword("original")).len(), 2);
        assert!(hits(&node, "c", &Query::any_keyword("changed")).is_empty());
    }

    #[test]
    fn digest_terms_cover_live_communities_only() {
        let mut node = IndexNode::new();
        node.insert(PeerId(1), &record("k1", "patterns", "Observer Pattern"));
        node.insert(PeerId(2), &record("k2", "songs", "Jazz"));
        let collect = |node: &IndexNode| {
            let mut v: Vec<(String, Option<String>)> = Vec::new();
            node.for_each_digest_term(|c, t| v.push((c.to_string(), t.map(str::to_string))));
            v.sort();
            v
        };
        let terms = collect(&node);
        // community markers plus tokens plus the normalized exact value
        assert!(terms.contains(&("patterns".to_string(), None)));
        assert!(terms.contains(&("patterns".to_string(), Some("observer".to_string()))));
        assert!(terms.contains(&("patterns".to_string(), Some("observer pattern".to_string()))));
        assert!(terms.contains(&("songs".to_string(), Some("jazz".to_string()))));
        // withdrawing a community's last record drops it from the digest
        // vocabulary even though its sub-index slot persists
        node.remove(PeerId(1), "k1");
        let terms = collect(&node);
        assert!(!terms.iter().any(|(c, _)| c == "patterns"));
        assert!(terms.contains(&("songs".to_string(), None)));
    }
}
