//! A live, threaded [`PeerNetwork`]: every peer is an OS thread, messages
//! travel over channels, and searches complete under a wall-clock
//! deadline — evidence that the paper's "generic interface with
//! primitives for create, search and retrieve" is not bound to
//! discrete-event simulation. The same `Servent` drives it unchanged.
//!
//! Protocol: Gnutella-style flooding with per-query duplicate suppression;
//! hits are returned to the querying peer on a per-search response channel
//! (out-of-band, like a direct HTTP callback — the 2002 clients' PUSH
//! descriptor played a similar role). Each peer thread evaluates queries
//! against its own [`crate::ShardedIndexNode`], the read-mostly
//! community-sharded share table: query evaluation takes read guards
//! only, so a publish into one community never stalls concurrent
//! searches of another — and concurrent searches of the *same*
//! community share a read guard instead of convoying on a mutex.
//!
//! Forward accounting is per-query, not global: every in-flight query
//! carries its own atomic forward counter in the message, so the
//! threads serving one query never contend on a counter with the
//! threads serving another, and batch serving can attribute messages
//! to requests exactly. (The previous design funneled every forward of
//! every query through one shared `AtomicU64`.)

use crate::message::{ResourceRecord, SearchHit, DEFAULT_TTL};
use crate::peer::PeerId;
use crate::sharded::ShardedIndexNode;
use crate::stats::{MsgKind, NetStats, RetrieveOutcome, SearchOutcome};
use crate::topology::Topology;
use crate::traits::{PeerNetwork, SearchRequest};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use up2p_store::Query;

enum LiveMsg {
    Query {
        query_id: u64,
        reply: Sender<SearchHit>,
        /// This query's forward counter: bumped once per overlay
        /// crossing by whichever peer thread forwards it.
        forwards: Arc<AtomicU64>,
        community: String,
        query: Query,
        ttl: u8,
        hops: u8,
    },
    Shutdown,
}

struct PeerState {
    tx: Sender<LiveMsg>,
    alive: Arc<AtomicBool>,
    shared: Arc<ShardedIndexNode>,
}

/// A query in flight: issued, not yet drained.
struct PendingSearch {
    reply_rx: Receiver<SearchHit>,
    forwards: Arc<AtomicU64>,
    started: Instant,
}

/// A threaded flooding network. Peers live as long as the network; drop
/// shuts every thread down.
pub struct LiveNetwork {
    peers: Vec<PeerState>,
    handles: Vec<std::thread::JoinHandle<()>>,
    stats: NetStats,
    next_query_id: u64,
    /// How long a search waits for hits to arrive.
    pub search_deadline: Duration,
}

impl std::fmt::Debug for LiveNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveNetwork").field("peers", &self.peers.len()).finish()
    }
}

impl LiveNetwork {
    /// Spawns one thread per peer over the given overlay.
    pub fn new(topology: Topology) -> LiveNetwork {
        let n = topology.len();
        let mut txs = Vec::with_capacity(n);
        let mut rxs: Vec<Receiver<LiveMsg>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let mut peers = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (i, rx) in rxs.into_iter().enumerate() {
            let alive = Arc::new(AtomicBool::new(true));
            // the shard lock classes (sharded.*) are named, so the
            // debug-build order checker and the static analyzer cover
            // the live substrate's locking through the shared node
            let shared = Arc::new(ShardedIndexNode::new());
            let neighbor_txs: Vec<Sender<LiveMsg>> = topology
                .neighbors(PeerId(i as u32))
                .map(|nb| txs[nb.index()].clone())
                .collect();
            let own_id = PeerId(i as u32);
            let thread_alive = Arc::clone(&alive);
            let thread_shared = Arc::clone(&shared);
            let handle = std::thread::spawn(move || {
                peer_loop(own_id, rx, neighbor_txs, thread_alive, thread_shared)
            });
            peers.push(PeerState { tx: txs[i].clone(), alive, shared });
            handles.push(handle);
        }
        LiveNetwork {
            peers,
            handles,
            stats: NetStats::new(),
            next_query_id: 1,
            search_deadline: Duration::from_millis(200),
        }
    }

    /// Issues one query into the overlay without waiting for replies.
    /// Returns `None` when the origin is unknown or offline (the query
    /// never leaves — same accounting as a failed [`PeerNetwork::search`]).
    fn issue(&mut self, origin: PeerId, community: &str, query: &Query) -> Option<PendingSearch> {
        self.stats.queries += 1;
        let p = self.peers.get(origin.index())?;
        if !p.alive.load(Ordering::Relaxed) {
            return None;
        }
        let query_id = self.next_query_id;
        self.next_query_id += 1;
        let (reply_tx, reply_rx) = unbounded::<SearchHit>();
        let forwards = Arc::new(AtomicU64::new(0));
        let started = Instant::now();
        let _ = p.tx.send(LiveMsg::Query {
            query_id,
            reply: reply_tx,
            forwards: Arc::clone(&forwards),
            community: community.to_string(),
            query: query.clone(),
            ttl: DEFAULT_TTL,
            hops: 0,
        });
        Some(PendingSearch { reply_rx, forwards, started })
    }

    /// Collects an in-flight query's hits until the deadline, then folds
    /// its forward counter into the stats — per-request accounting
    /// identical to sequential serving.
    fn drain(&mut self, pending: PendingSearch) -> SearchOutcome {
        let mut outcome = SearchOutcome::default();
        let mut dedup: HashMap<(String, PeerId), ()> = HashMap::new();
        let deadline = pending.started + self.search_deadline;
        while let Some(remaining) = deadline.checked_duration_since(Instant::now()) {
            match pending.reply_rx.recv_timeout(remaining) {
                Ok(hit) => {
                    if dedup.insert((hit.key.clone(), hit.provider), ()).is_none() {
                        let arrival = pending.started.elapsed().as_micros() as u64;
                        outcome.first_hit_latency =
                            Some(outcome.first_hit_latency.map_or(arrival, |f| f.min(arrival)));
                        outcome.latency = arrival;
                        self.stats.hit(hit.hops);
                        // each hit crossed the reply channel: a QueryHit
                        // message the provider sent back to the origin
                        self.stats.sent(MsgKind::QueryHit);
                        outcome.hits.push(hit);
                    }
                }
                Err(_) => break,
            }
        }
        // every overlay crossing counted by the peer threads is a Query
        // forward — attribute them to the kind counter instead of bumping
        // the raw total (which used to leave `by_kind()` blind to live
        // traffic: the stat-conservation drift up2p-analyzer flags)
        let forwarded = pending.forwards.load(Ordering::Relaxed);
        self.stats.sent_n(MsgKind::Query, forwarded);
        outcome.messages = forwarded;
        if !outcome.hits.is_empty() {
            self.stats.queries_with_hits += 1;
        }
        outcome
    }
}

fn peer_loop(
    own_id: PeerId,
    rx: Receiver<LiveMsg>,
    neighbors: Vec<Sender<LiveMsg>>,
    alive: Arc<AtomicBool>,
    shared: Arc<ShardedIndexNode>,
) {
    let mut seen: HashSet<u64> = HashSet::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            LiveMsg::Shutdown => return,
            LiveMsg::Query { query_id, reply, forwards, community, query, ttl, hops } => {
                if !alive.load(Ordering::Relaxed) {
                    continue; // dead peers drop traffic
                }
                if !seen.insert(query_id) {
                    continue; // duplicate suppression (GUID cache)
                }
                // evaluation takes read guards only (inside the sharded
                // node) and the hits are sent after they drop: a slow or
                // blocked reply channel must never extend how long a
                // shard is read-pinned against publishes
                let mut hits: Vec<SearchHit> = Vec::new();
                shared.search(&community, &query, |_| true, |key, _, fields| {
                    hits.push(SearchHit {
                        key: key.to_string(),
                        provider: own_id,
                        fields: fields.clone(),
                        hops,
                    });
                });
                for hit in hits {
                    // ignore send failure: the searcher may have
                    // stopped listening after its deadline
                    let _ = reply.send(hit);
                }
                if ttl > 0 {
                    for nb in &neighbors {
                        forwards.fetch_add(1, Ordering::Relaxed);
                        let _ = nb.send(LiveMsg::Query {
                            query_id,
                            reply: reply.clone(),
                            forwards: Arc::clone(&forwards),
                            community: community.clone(),
                            query: query.clone(),
                            ttl: ttl - 1,
                            hops: hops + 1,
                        });
                    }
                }
            }
        }
    }
}

impl Drop for LiveNetwork {
    fn drop(&mut self) {
        for p in &self.peers {
            let _ = p.tx.send(LiveMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl PeerNetwork for LiveNetwork {
    fn protocol_name(&self) -> &'static str {
        "Gnutella" // same routing semantics, live transport
    }

    fn peer_count(&self) -> usize {
        self.peers.len()
    }

    fn is_alive(&self, peer: PeerId) -> bool {
        self.peers
            .get(peer.index())
            .map(|p| p.alive.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    fn set_alive(&mut self, peer: PeerId, alive: bool) {
        if let Some(p) = self.peers.get(peer.index()) {
            p.alive.store(alive, Ordering::Relaxed);
        }
    }

    fn publish(&mut self, provider: PeerId, record: ResourceRecord) {
        let Some(p) = self.peers.get(provider.index()) else { return };
        // a peer republishing a key replaces its own record (upsert);
        // the write lands on the one shard owning the community while
        // searches of other communities keep flowing
        p.shared.upsert(provider, &record);
    }

    fn unpublish(&mut self, provider: PeerId, key: &str) {
        if let Some(p) = self.peers.get(provider.index()) {
            p.shared.remove(provider, key);
        }
    }

    fn search(&mut self, origin: PeerId, community: &str, query: &Query) -> SearchOutcome {
        match self.issue(origin, community, query) {
            Some(pending) => self.drain(pending),
            None => SearchOutcome::default(),
        }
    }

    fn search_batch(&mut self, requests: &[SearchRequest], workers: usize) -> Vec<SearchOutcome> {
        // the serving parallelism here is the peer threads themselves:
        // issuing the whole batch up front puts every query in flight at
        // once (they propagate and get answered concurrently), then the
        // replies are drained in request order under overlapping
        // deadlines — wall-clock cost ~one deadline, not one per request
        let _ = workers;
        let pending: Vec<Option<PendingSearch>> = requests
            .iter()
            .map(|r| self.issue(r.origin, &r.community, &r.query))
            .collect();
        pending
            .into_iter()
            .map(|p| match p {
                Some(pending) => self.drain(pending),
                None => SearchOutcome::default(),
            })
            .collect()
    }

    fn retrieve(&mut self, origin: PeerId, provider: PeerId, key: &str) -> RetrieveOutcome {
        self.stats.retrieves += 1;
        if !self.is_alive(origin) {
            // a dead peer cannot send: the request never leaves the origin
            return RetrieveOutcome::Unavailable;
        }
        self.stats.sent(MsgKind::Retrieve);
        if !self.is_alive(provider) {
            self.stats.dropped += 1;
            return RetrieveOutcome::Unavailable;
        }
        let has = self
            .peers
            .get(provider.index())
            .map(|p| p.shared.has_provider(key, provider))
            .unwrap_or(false);
        if !has {
            self.stats.sent(MsgKind::RetrieveFail);
            return RetrieveOutcome::Unavailable;
        }
        self.stats.sent(MsgKind::RetrieveOk);
        self.stats.retrieves_ok += 1;
        RetrieveOutcome::Fetched { provider, latency: 0 }
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = NetStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(key: &str, name: &str) -> ResourceRecord {
        ResourceRecord::new(key, "c", vec![("o/name".to_string(), name.to_string())])
    }

    fn live(n: usize) -> LiveNetwork {
        LiveNetwork::new(Topology::small_world(n, 2, 0.2, 7))
    }

    #[test]
    fn publish_search_over_threads() {
        let mut net = live(16);
        let rec = record("k1", "observer");
        net.publish(PeerId(9), rec.clone());
        let out = net.search(PeerId(0), "c", &Query::any_keyword("observer"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].provider, PeerId(9));
        assert!(out.messages > 0, "flooding sent real messages");
        // hit metadata is the published allocation (refcount bump across
        // threads, no copy, no routing side-channel fields)
        assert_eq!(out.hits[0].fields, rec.fields);
    }

    #[test]
    fn community_scoping_and_misses() {
        let mut net = live(8);
        net.publish(PeerId(3), record("k1", "observer"));
        let out = net.search(PeerId(0), "other", &Query::any_keyword("observer"));
        assert!(out.hits.is_empty());
        let out = net.search(PeerId(0), "c", &Query::any_keyword("missing"));
        assert!(out.hits.is_empty());
    }

    #[test]
    fn dead_peers_drop_out() {
        let mut net = live(12);
        net.publish(PeerId(5), record("k1", "x"));
        net.set_alive(PeerId(5), false);
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert!(out.hits.is_empty(), "dead provider must not answer");
        assert!(!net.retrieve(PeerId(0), PeerId(5), "k1").is_fetched());
        net.set_alive(PeerId(5), true);
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert_eq!(out.hits.len(), 1);
        assert!(net.retrieve(PeerId(0), PeerId(5), "k1").is_fetched());
    }

    #[test]
    fn duplicate_suppression_bounds_live_messages() {
        let mut net = live(16);
        let out = net.search(PeerId(0), "c", &Query::any_keyword("nothing"));
        // small-world n=16, 2k=4: 32 edges → ≤ 64 directed crossings
        assert!(out.messages <= 64 + 16, "messages {} too high", out.messages);
    }

    #[test]
    fn servent_runs_unchanged_on_live_transport() {
        // the protocol-independence claim, live: the same Servent code
        // that drives the simulated substrates drives threads
        use up2p_core_shim::*;
        let mut net = live(16);
        roundtrip(&mut net);
    }

    /// Minimal servent-shaped round trip without depending on up2p-core
    /// (which would be a dependency cycle): publish a community-shaped
    /// record, find it, retrieve it.
    mod up2p_core_shim {
        use super::*;

        pub fn roundtrip(net: &mut LiveNetwork) {
            net.publish(
                PeerId(2),
                ResourceRecord::new(
                    "community-object",
                    "up2p:root",
                    vec![
                        ("community/name".to_string(), "mp3".to_string()),
                        ("community/keywords".to_string(), "music audio".to_string()),
                    ],
                ),
            );
            let out = net.search(PeerId(11), "up2p:root", &Query::any_keyword("music"));
            assert_eq!(out.hits.len(), 1, "community discovered over live transport");
            assert!(net
                .retrieve(PeerId(11), out.hits[0].provider, &out.hits[0].key)
                .is_fetched());
        }
    }

    #[test]
    fn live_traffic_lands_in_kind_counters() {
        // regression: live search traffic used to bump only the raw
        // `messages` total, leaving `by_kind()` blind to the transport
        let mut net = live(8);
        net.publish(PeerId(3), record("k1", "x"));
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert_eq!(out.hits.len(), 1);
        let stats = net.stats();
        assert_eq!(stats.count(MsgKind::Query), out.messages, "forwards are Query messages");
        assert_eq!(stats.count(MsgKind::QueryHit), 1, "each deduped hit is a QueryHit");
        assert_eq!(stats.messages, out.messages + 1, "total = forwards + hits");
        assert!(stats.by_kind().contains_key("Query"));
    }

    #[test]
    fn batch_serving_matches_sequential_hits_and_accounting() {
        let mut net = live(16);
        net.publish(PeerId(9), record("k1", "observer"));
        net.publish(PeerId(4), record("k2", "visitor"));
        net.set_alive(PeerId(6), false);
        let requests = vec![
            SearchRequest::new(PeerId(0), "c", Query::any_keyword("observer")),
            SearchRequest::new(PeerId(1), "c", Query::any_keyword("visitor")),
            SearchRequest::new(PeerId(6), "c", Query::any_keyword("observer")), // dead origin
            SearchRequest::new(PeerId(2), "c", Query::any_keyword("nothing")),
        ];
        let outcomes = net.search_batch(&requests, 4);
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[0].hits.len(), 1);
        assert_eq!(outcomes[0].hits[0].provider, PeerId(9));
        assert_eq!(outcomes[1].hits.len(), 1);
        assert_eq!(outcomes[1].hits[0].provider, PeerId(4));
        assert!(outcomes[2].hits.is_empty(), "dead origin never issues");
        assert_eq!(outcomes[2].messages, 0);
        assert!(outcomes[3].hits.is_empty());
        // per-request forward attribution sums to the batch totals,
        // exactly as sequential serving accounts them
        let stats = net.stats();
        assert_eq!(stats.queries, 4);
        assert_eq!(stats.queries_with_hits, 2);
        let forwarded: u64 = outcomes.iter().map(|o| o.messages).sum();
        assert_eq!(stats.count(MsgKind::Query), forwarded);
        assert_eq!(stats.count(MsgKind::QueryHit), 2);
        assert_eq!(stats.messages, forwarded + 2, "total = forwards + hits");
    }

    #[test]
    fn concurrent_publishes_land_during_in_flight_queries() {
        // the read-mostly claim end to end: queries already in flight
        // keep being served while records are published into other
        // communities (writes touch only the owning shard)
        let mut net = live(8);
        net.publish(PeerId(3), record("k1", "x"));
        let requests: Vec<SearchRequest> =
            (0..4).map(|i| SearchRequest::new(PeerId(i), "c", Query::any_keyword("x"))).collect();
        let pendings: Vec<Option<PendingSearch>> =
            requests.iter().map(|r| net.issue(r.origin, &r.community, &r.query)).collect();
        for i in 0..8u32 {
            net.publish(
                PeerId(i % 8),
                ResourceRecord::new(
                    format!("other{i}"),
                    format!("community{i}"),
                    vec![("o/name".to_string(), "y".to_string())],
                ),
            );
        }
        for pending in pendings.into_iter().flatten() {
            let out = net.drain(pending);
            assert_eq!(out.hits.len(), 1, "in-flight query still answered");
        }
    }

    #[test]
    fn unpublish_live() {
        let mut net = live(8);
        net.publish(PeerId(3), record("k1", "x"));
        net.unpublish(PeerId(3), "k1");
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert!(out.hits.is_empty());
    }

    #[test]
    fn shutdown_is_clean() {
        let net = live(8);
        drop(net); // must not hang or panic
    }
}
