//! Gnutella-style flooding substrate: TTL-limited query broadcast over an
//! overlay graph with duplicate suppression, hits routed back along the
//! reverse path.
//!
//! Publishing is free (objects are shared from the provider's own store;
//! no metadata leaves the peer), searching costs O(edges within the TTL
//! horizon) messages — exactly the trade-off against Napster that
//! experiment E6 measures. Each peer's share table is an [`IndexNode`],
//! so the per-node evaluation a query pays at every visited peer is a
//! posting-list lookup, not a scan of the peer's records.

use crate::index_node::IndexNode;
use crate::latency::LatencyModel;
use crate::message::{ResourceRecord, SearchHit, SharedFields, Time, DEFAULT_TTL};
use crate::peer::PeerId;
use crate::sim::EventQueue;
use crate::stats::{MsgKind, NetStats, RetrieveOutcome, SearchOutcome};
use crate::topology::Topology;
use crate::traits::PeerNetwork;
use std::collections::HashSet;
use up2p_store::Query;

/// Tuning knobs for the flooding substrate.
#[derive(Debug, Clone, Copy)]
pub struct FloodingConfig {
    /// Initial query TTL in overlay hops.
    pub ttl: u8,
    /// Drop duplicate query arrivals (Gnutella's GUID cache). Disabling
    /// this is the E6 ablation `flooding_no_dedup`.
    pub dedup: bool,
}

impl Default for FloodingConfig {
    fn default() -> Self {
        FloodingConfig { ttl: DEFAULT_TTL, dedup: true }
    }
}

/// The flooding (Gnutella) substrate.
pub struct FloodingNetwork {
    topology: Topology,
    alive: Vec<bool>,
    /// Per-peer local share table (each peer indexes only its own
    /// records; the provider of every record at slot `i` is peer `i`).
    shared: Vec<IndexNode>,
    latency: Box<dyn LatencyModel + Send>,
    config: FloodingConfig,
    stats: NetStats,
}

impl std::fmt::Debug for FloodingNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FloodingNetwork")
            .field("peers", &self.alive.len())
            .field("edges", &self.topology.edge_count())
            .field("config", &self.config)
            .finish()
    }
}

/// A query copy in flight. `path` is the route travelled so far,
/// *excluding* the destination (the last element is the immediate
/// sender); hits found at the destination travel back along it.
struct QueryEvent {
    to: PeerId,
    path: Vec<PeerId>,
    ttl: u8,
}

impl FloodingNetwork {
    /// Creates a flooding network over the given overlay with all peers
    /// online.
    pub fn new(
        topology: Topology,
        latency: Box<dyn LatencyModel + Send>,
        config: FloodingConfig,
    ) -> Self {
        let n = topology.len();
        FloodingNetwork {
            topology,
            alive: vec![true; n],
            shared: std::iter::repeat_with(IndexNode::new).take(n).collect(),
            latency,
            config,
            stats: NetStats::new(),
        }
    }

    /// The overlay graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The configuration in effect.
    pub fn config(&self) -> FloodingConfig {
        self.config
    }

    /// Number of records shared by one peer.
    pub fn shared_count(&self, peer: PeerId) -> usize {
        self.shared.get(peer.index()).map_or(0, IndexNode::len)
    }

    /// Evaluates a query against one peer's share table, collecting
    /// `(key, fields)` pairs (the provider is the peer itself).
    fn local_matches(&self, peer: PeerId, community: &str, query: &Query) -> Vec<(String, SharedFields)> {
        let mut matches = Vec::new();
        self.shared[peer.index()].search(community, query, |_| true, |key, _, fields| {
            matches.push((key.to_string(), fields.clone()));
        });
        matches
    }
}

impl PeerNetwork for FloodingNetwork {
    fn protocol_name(&self) -> &'static str {
        "Gnutella"
    }

    fn peer_count(&self) -> usize {
        self.alive.len()
    }

    fn is_alive(&self, peer: PeerId) -> bool {
        self.alive.get(peer.index()).copied().unwrap_or(false)
    }

    fn set_alive(&mut self, peer: PeerId, alive: bool) {
        if let Some(a) = self.alive.get_mut(peer.index()) {
            *a = alive;
        }
    }

    fn publish(&mut self, provider: PeerId, record: ResourceRecord) {
        // Gnutella shares from the local store: no message is sent, and
        // republishing a key replaces the peer's own record (upsert).
        if let Some(node) = self.shared.get_mut(provider.index()) {
            node.upsert(provider, &record);
        }
    }

    fn unpublish(&mut self, provider: PeerId, key: &str) {
        if let Some(node) = self.shared.get_mut(provider.index()) {
            node.remove(provider, key);
        }
    }

    fn search(&mut self, origin: PeerId, community: &str, query: &Query) -> SearchOutcome {
        self.stats.queries += 1;
        let mut outcome = SearchOutcome::default();
        if !self.is_alive(origin) {
            return outcome;
        }
        let mut hit_seen: HashSet<(String, PeerId)> = HashSet::new();
        // local results cost nothing (the servent consults its own
        // repository before the network)
        for (key, fields) in self.local_matches(origin, community, query) {
            hit_seen.insert((key.clone(), origin));
            outcome.hits.push(SearchHit { key, provider: origin, fields, hops: 0 });
            self.stats.hit(0);
            outcome.first_hit_latency = Some(0);
        }

        let mut queue: EventQueue<QueryEvent> = EventQueue::new();
        let mut seen: HashSet<PeerId> = HashSet::new();
        seen.insert(origin);
        if self.config.ttl > 0 {
            let neighbors: Vec<PeerId> = self.topology.neighbors(origin).collect();
            for nb in neighbors {
                self.stats.sent(MsgKind::Query);
                outcome.messages += 1;
                let at = self.latency.delay(origin, nb);
                queue.push(at, QueryEvent { to: nb, path: vec![origin], ttl: self.config.ttl - 1 });
            }
        }

        let mut last_hit_at: Time = 0;
        let mut quiescence: Time = 0;
        while let Some((t, ev)) = queue.pop() {
            quiescence = quiescence.max(t);
            if !self.is_alive(ev.to) {
                self.stats.dropped += 1;
                continue;
            }
            if self.config.dedup && !seen.insert(ev.to) {
                continue; // duplicate query arrival, dropped by GUID cache
            }
            // evaluate against this peer's share-table index
            let matches = self.local_matches(ev.to, community, query);
            if !matches.is_empty() {
                // QueryHit routes back along the reverse path: one message
                // per edge, arriving after the summed reverse delays
                let mut back_latency: Time = 0;
                let mut prev = ev.to;
                for &node in ev.path.iter().rev() {
                    self.stats.sent(MsgKind::QueryHit);
                    outcome.messages += 1;
                    back_latency += self.latency.delay(prev, node);
                    prev = node;
                }
                let arrival = t + back_latency;
                let hops = ev.path.len() as u8;
                for (key, fields) in matches {
                    if hit_seen.insert((key.clone(), ev.to)) {
                        outcome.hits.push(SearchHit { key, provider: ev.to, fields, hops });
                        self.stats.hit(hops);
                        last_hit_at = last_hit_at.max(arrival);
                        outcome.first_hit_latency = Some(
                            outcome.first_hit_latency.map_or(arrival, |f| f.min(arrival)),
                        );
                    }
                }
            }
            // forward to all neighbors except the immediate sender
            if ev.ttl > 0 {
                let sender = *ev.path.last().expect("path never empty");
                let neighbors: Vec<PeerId> = self.topology.neighbors(ev.to).collect();
                for nb in neighbors {
                    if nb == sender {
                        continue;
                    }
                    self.stats.sent(MsgKind::Query);
                    outcome.messages += 1;
                    let at = t + self.latency.delay(ev.to, nb);
                    let mut path = ev.path.clone();
                    path.push(ev.to);
                    queue.push(at, QueryEvent { to: nb, path, ttl: ev.ttl - 1 });
                }
            }
        }

        outcome.latency = if outcome.hits.is_empty() { quiescence } else { last_hit_at };
        if !outcome.hits.is_empty() {
            self.stats.queries_with_hits += 1;
        }
        outcome
    }

    fn retrieve(&mut self, origin: PeerId, provider: PeerId, key: &str) -> RetrieveOutcome {
        self.stats.retrieves += 1;
        self.stats.sent(MsgKind::Retrieve);
        let available = self.is_alive(origin)
            && self.is_alive(provider)
            && self.shared[provider.index()].has_provider(key, provider);
        if !available {
            return RetrieveOutcome::Unavailable;
        }
        self.stats.sent(MsgKind::RetrieveOk);
        self.stats.retrieves_ok += 1;
        let latency = self.latency.delay(origin, provider) + self.latency.delay(provider, origin);
        RetrieveOutcome::Fetched { provider, latency }
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = NetStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConstantLatency;

    fn record(key: &str, name: &str) -> ResourceRecord {
        ResourceRecord::new(key, "c", vec![("o/name".to_string(), name.to_string())])
    }

    fn line(n: usize) -> FloodingNetwork {
        // 0 - 1 - 2 - ... - (n-1)
        let mut t = Topology::empty(n);
        for i in 0..n - 1 {
            t.connect(PeerId(i as u32), PeerId(i as u32 + 1));
        }
        FloodingNetwork::new(t, Box::new(ConstantLatency(1_000)), FloodingConfig::default())
    }

    #[test]
    fn finds_object_within_ttl() {
        let mut net = line(5);
        net.publish(PeerId(3), record("k", "observer"));
        let out = net.search(PeerId(0), "c", &Query::any_keyword("observer"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].provider, PeerId(3));
        assert_eq!(out.hits[0].hops, 3);
        // query travelled 3 edges there, hit 3 edges back: 6000us
        assert_eq!(out.first_hit_latency, Some(6_000));
    }

    #[test]
    fn ttl_bounds_reach() {
        let mut t = Topology::empty(6);
        for i in 0..5 {
            t.connect(PeerId(i), PeerId(i + 1));
        }
        let mut net = FloodingNetwork::new(
            t,
            Box::new(ConstantLatency(1_000)),
            FloodingConfig { ttl: 2, dedup: true },
        );
        net.publish(PeerId(5), record("far", "x"));
        net.publish(PeerId(2), record("near", "x"));
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        let keys: Vec<&str> = out.hits.iter().map(|h| h.key.as_str()).collect();
        assert_eq!(keys, vec!["near"], "ttl 2 reaches peer 2 but not peer 5");
    }

    #[test]
    fn local_hits_are_free() {
        let mut net = line(3);
        net.publish(PeerId(0), record("k", "x"));
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].hops, 0);
        assert_eq!(out.first_hit_latency, Some(0));
    }

    #[test]
    fn dedup_caps_messages_on_cyclic_graphs() {
        let cycle = |dedup| {
            let mut t = Topology::empty(4);
            // complete graph — worst case for duplicate queries
            for i in 0..4u32 {
                for j in (i + 1)..4 {
                    t.connect(PeerId(i), PeerId(j));
                }
            }
            let mut net = FloodingNetwork::new(
                t,
                Box::new(ConstantLatency(1_000)),
                FloodingConfig { ttl: 4, dedup },
            );
            net.publish(PeerId(3), record("k", "x"));
            let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
            out.messages
        };
        let with = cycle(true);
        let without = cycle(false);
        assert!(
            without > with * 2,
            "no-dedup should blow up message count: {without} vs {with}"
        );
    }

    #[test]
    fn dead_peers_break_the_path() {
        let mut net = line(5);
        net.publish(PeerId(4), record("k", "x"));
        net.set_alive(PeerId(2), false);
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert!(out.hits.is_empty(), "peer 2 is the only route to peer 4");
        assert!(net.stats().dropped > 0);
    }

    #[test]
    fn replicas_found_on_both_sides() {
        let mut net = line(7);
        net.publish(PeerId(1), record("k", "x"));
        net.publish(PeerId(5), record("k", "x"));
        let out = net.search(PeerId(3), "c", &Query::any_keyword("x"));
        assert_eq!(out.hits.len(), 2);
        assert_eq!(out.distinct_keys(), 1);
        let providers: Vec<PeerId> = out.hits.iter().map(|h| h.provider).collect();
        assert!(providers.contains(&PeerId(1)) && providers.contains(&PeerId(5)));
    }

    #[test]
    fn retrieve_requires_live_provider_with_object() {
        let mut net = line(3);
        net.publish(PeerId(2), record("k", "x"));
        assert!(net.retrieve(PeerId(0), PeerId(2), "k").is_fetched());
        assert!(!net.retrieve(PeerId(0), PeerId(1), "k").is_fetched(), "peer 1 lacks it");
        net.set_alive(PeerId(2), false);
        assert!(!net.retrieve(PeerId(0), PeerId(2), "k").is_fetched());
        assert_eq!(net.stats().retrieves, 3);
        assert_eq!(net.stats().retrieves_ok, 1);
    }

    #[test]
    fn unpublish_stops_hits() {
        let mut net = line(3);
        net.publish(PeerId(1), record("k", "x"));
        net.unpublish(PeerId(1), "k");
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert!(out.hits.is_empty());
        assert_eq!(net.shared_count(PeerId(1)), 0);
    }

    #[test]
    fn republish_updates_the_peers_own_record() {
        // a peer's share table keeps last-publish-wins semantics: the
        // same key republished with new metadata serves the new fields
        let mut net = line(3);
        net.publish(PeerId(1), record("k", "old name"));
        net.publish(PeerId(1), record("k", "new name"));
        assert_eq!(net.shared_count(PeerId(1)), 1);
        assert!(net.search(PeerId(0), "c", &Query::any_keyword("old")).hits.is_empty());
        let out = net.search(PeerId(0), "c", &Query::any_keyword("new"));
        assert_eq!(out.hits.len(), 1);
    }

    #[test]
    fn community_scoping_respected() {
        let mut net = line(3);
        net.publish(
            PeerId(1),
            ResourceRecord::new("k", "other", vec![("o/name".to_string(), "x".to_string())]),
        );
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert!(out.hits.is_empty());
    }

    #[test]
    fn message_count_bounded_by_edge_budget() {
        // with dedup, forwards ≤ 2 * edges (each edge crossed at most once
        // per direction) plus hit back-propagation
        let t = Topology::ring_lattice(20, 2);
        let edges = t.edge_count() as u64;
        let mut net =
            FloodingNetwork::new(t, Box::new(ConstantLatency(1_000)), FloodingConfig::default());
        let out = net.search(PeerId(0), "c", &Query::any_keyword("nothing"));
        assert!(out.messages <= edges * 2, "{} > {}", out.messages, edges * 2);
    }
}
