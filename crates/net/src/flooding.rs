//! Gnutella-style flooding substrate: TTL-limited query broadcast over an
//! overlay graph with duplicate suppression, hits routed back along the
//! reverse path.
//!
//! Publishing is free (objects are shared from the provider's own store;
//! no metadata leaves the peer), searching costs O(edges within the TTL
//! horizon) messages — exactly the trade-off against Napster that
//! experiment E6 measures. Each peer's share table is an [`IndexNode`],
//! so the per-node evaluation a query pays at every visited peer is a
//! posting-list lookup, not a scan of the peer's records.
//!
//! With [`DigestConfig::enabled`] the substrate switches to *guided*
//! search (experiment E10): forwarding consults per-neighbor
//! [`crate::RouteTable`] digests, follows only the most promising
//! neighbors, stops at the first peer with local hits, and falls back to
//! TTL'd random walkers when no digest matches.

use crate::digest::{DigestConfig, RouteTable, RoutingDigest};
use crate::index_node::IndexNode;
use crate::latency::LatencyModel;
use crate::message::{ResourceRecord, SearchHit, SharedFields, Time, DEFAULT_TTL};
use crate::peer::PeerId;
use crate::sim::EventQueue;
use crate::stats::{MsgKind, NetStats, RetrieveOutcome, SearchOutcome};
use crate::topology::Topology;
use crate::traits::PeerNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use up2p_store::Query;

/// Tuning knobs for the flooding substrate.
#[derive(Debug, Clone, Copy)]
pub struct FloodingConfig {
    /// Initial query TTL in overlay hops.
    pub ttl: u8,
    /// Drop duplicate query arrivals (Gnutella's GUID cache). Disabling
    /// this is the E6 ablation `flooding_no_dedup`.
    pub dedup: bool,
    /// Routing-digest layer; `enabled: true` switches searches from
    /// blind flooding to guided forwarding (E10).
    pub digests: DigestConfig,
}

impl Default for FloodingConfig {
    fn default() -> Self {
        FloodingConfig { ttl: DEFAULT_TTL, dedup: true, digests: DigestConfig::default() }
    }
}

/// How a query copy propagates (guided search only; blind flooding uses
/// `Flood` throughout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Propagation {
    /// Forward to every neighbor except the sender (baseline).
    Flood,
    /// Forward along digest-selected neighbors, capped at the fanout.
    Guided,
    /// Random-walk fallback: no digest matched, keep one walker alive.
    Walk,
}

/// The flooding (Gnutella) substrate.
pub struct FloodingNetwork {
    topology: Topology,
    alive: Vec<bool>,
    /// Per-peer local share table (each peer indexes only its own
    /// records; the provider of every record at slot `i` is peer `i`).
    shared: Vec<IndexNode>,
    latency: Box<dyn LatencyModel + Send + Sync>,
    config: FloodingConfig,
    stats: NetStats,
    /// Per-directed-edge attenuated digests (guided search only).
    routes: RouteTable,
    /// Seeded source for the random-walk fallback; part of the
    /// deterministic state, not wall-clock randomness.
    walk_rng: StdRng,
}

impl std::fmt::Debug for FloodingNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FloodingNetwork")
            .field("peers", &self.alive.len())
            .field("edges", &self.topology.edge_count())
            .field("config", &self.config)
            .finish()
    }
}

/// A query copy in flight. `path` is the route travelled so far,
/// *excluding* the destination (the last element is the immediate
/// sender); hits found at the destination travel back along it.
struct QueryEvent {
    to: PeerId,
    path: Vec<PeerId>,
    ttl: u8,
    mode: Propagation,
}

impl FloodingNetwork {
    /// Creates a flooding network over the given overlay with all peers
    /// online.
    pub fn new(
        topology: Topology,
        latency: Box<dyn LatencyModel + Send + Sync>,
        config: FloodingConfig,
    ) -> Self {
        let n = topology.len();
        FloodingNetwork {
            topology,
            alive: vec![true; n],
            shared: std::iter::repeat_with(IndexNode::new).take(n).collect(),
            latency,
            config,
            stats: NetStats::new(),
            routes: RouteTable::new(config.digests),
            walk_rng: StdRng::seed_from_u64(0xd16e_57ed ^ n as u64),
        }
    }

    /// The overlay graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The configuration in effect.
    pub fn config(&self) -> FloodingConfig {
        self.config
    }

    /// Number of records shared by one peer.
    pub fn shared_count(&self, peer: PeerId) -> usize {
        self.shared.get(peer.index()).map_or(0, IndexNode::len)
    }

    /// Evaluates a query against one peer's share table, collecting
    /// `(key, fields)` pairs (the provider is the peer itself).
    fn local_matches(&self, peer: PeerId, community: &str, query: &Query) -> Vec<(String, SharedFields)> {
        let mut matches = Vec::new();
        self.shared[peer.index()].search(community, query, |_| true, |key, _, fields| {
            matches.push((key.to_string(), fields.clone()));
        });
        matches
    }

    /// Rebuilds dirty routing digests and repropagates the attenuated
    /// layers, counting the `DigestRequest`/`DigestPush` exchange the
    /// refresh costs. A no-op when guided search is disabled or nothing
    /// changed since the last refresh; guided searches call this lazily,
    /// the way a servent batches digest updates onto its keep-alives.
    pub fn refresh_digests(&mut self) {
        let cfg = self.config.digests;
        if !cfg.enabled || !self.routes.needs_refresh() {
            return;
        }
        let shared = &self.shared;
        let (requests, pushes) = self.routes.refresh(&self.topology, |p| {
            let mut d = RoutingDigest::new(cfg.log2_bits);
            d.add_node(&shared[p as usize]);
            d
        });
        self.stats.sent_n(MsgKind::DigestRequest, requests);
        self.stats.sent_n(MsgKind::DigestPush, pushes);
    }

    /// Forwards one guided query copy from `from`: digest-matching
    /// neighbors (closest plausible match first, capped at the fanout)
    /// when any exist, else up to `walk_width` random walkers so stale
    /// or saturated digests degrade to extra messages, not misses.
    #[allow(clippy::too_many_arguments)]
    fn forward_guided(
        &mut self,
        t: Time,
        from: PeerId,
        sender: Option<PeerId>,
        path: &[PeerId],
        ttl: u8,
        community: &str,
        query: &Query,
        walk_width: usize,
        outcome: &mut SearchOutcome,
        queue: &mut EventQueue<QueryEvent>,
    ) {
        if ttl == 0 {
            return;
        }
        let mut candidates: Vec<(u8, PeerId)> = self
            .topology
            .neighbors(from)
            .filter(|&nb| Some(nb) != sender)
            .filter_map(|nb| {
                self.routes.min_depth(nb.0, from.0, community, query, ttl).map(|d| (d, nb))
            })
            .collect();
        candidates.sort_unstable();
        let targets: Vec<(PeerId, Propagation)> = if candidates.is_empty() {
            let mut options: Vec<PeerId> =
                self.topology.neighbors(from).filter(|&nb| Some(nb) != sender).collect();
            let mut walkers = Vec::new();
            while walkers.len() < walk_width && !options.is_empty() {
                let i = self.walk_rng.gen_range(0..options.len());
                walkers.push((options.swap_remove(i), Propagation::Walk));
            }
            walkers
        } else {
            candidates
                .into_iter()
                .take(self.config.digests.fanout.max(1))
                .map(|(_, nb)| (nb, Propagation::Guided))
                .collect()
        };
        for (nb, mode) in targets {
            self.stats.sent(MsgKind::Query);
            outcome.messages += 1;
            let at = t + self.latency.delay(from, nb);
            let mut next_path = path.to_vec();
            next_path.push(from);
            queue.push(at, QueryEvent { to: nb, path: next_path, ttl: ttl - 1, mode });
        }
    }
}

impl PeerNetwork for FloodingNetwork {
    fn protocol_name(&self) -> &'static str {
        "Gnutella"
    }

    fn peer_count(&self) -> usize {
        self.alive.len()
    }

    fn is_alive(&self, peer: PeerId) -> bool {
        self.alive.get(peer.index()).copied().unwrap_or(false)
    }

    fn set_alive(&mut self, peer: PeerId, alive: bool) {
        if let Some(a) = self.alive.get_mut(peer.index()) {
            *a = alive;
        }
    }

    fn publish(&mut self, provider: PeerId, record: ResourceRecord) {
        // Gnutella shares from the local store: no message is sent, and
        // republishing a key replaces the peer's own record (upsert).
        if let Some(node) = self.shared.get_mut(provider.index()) {
            node.upsert(provider, &record);
            if self.config.digests.enabled {
                self.routes.mark_dirty(provider.0);
            }
        }
    }

    fn unpublish(&mut self, provider: PeerId, key: &str) {
        if let Some(node) = self.shared.get_mut(provider.index()) {
            node.remove(provider, key);
            if self.config.digests.enabled {
                self.routes.mark_dirty(provider.0);
            }
        }
    }

    fn search(&mut self, origin: PeerId, community: &str, query: &Query) -> SearchOutcome {
        self.stats.queries += 1;
        let mut outcome = SearchOutcome::default();
        if !self.is_alive(origin) {
            return outcome;
        }
        let guided = self.config.digests.enabled;
        if guided {
            self.refresh_digests();
        }
        let mut hit_seen: HashSet<(String, PeerId)> = HashSet::new();
        // local results cost nothing (the servent consults its own
        // repository before the network)
        for (key, fields) in self.local_matches(origin, community, query) {
            hit_seen.insert((key.clone(), origin));
            outcome.hits.push(SearchHit { key, provider: origin, fields, hops: 0 });
            self.stats.hit(0);
            outcome.first_hit_latency = Some(0);
        }

        let mut queue: EventQueue<QueryEvent> = EventQueue::new();
        let mut seen: HashSet<PeerId> = HashSet::new();
        seen.insert(origin);
        if self.config.ttl > 0 {
            if guided {
                // frontier stop: local hits already satisfy the query, so
                // a guided search pays no network messages at all
                if outcome.hits.is_empty() {
                    self.forward_guided(
                        0,
                        origin,
                        None,
                        &[],
                        self.config.ttl,
                        community,
                        query,
                        self.config.digests.walk_width,
                        &mut outcome,
                        &mut queue,
                    );
                }
            } else {
                let neighbors: Vec<PeerId> = self.topology.neighbors(origin).collect();
                for nb in neighbors {
                    self.stats.sent(MsgKind::Query);
                    outcome.messages += 1;
                    let at = self.latency.delay(origin, nb);
                    queue.push(at, QueryEvent {
                        to: nb,
                        path: vec![origin],
                        ttl: self.config.ttl - 1,
                        mode: Propagation::Flood,
                    });
                }
            }
        }

        let mut last_hit_at: Time = 0;
        let mut quiescence: Time = 0;
        while let Some((t, ev)) = queue.pop() {
            quiescence = quiescence.max(t);
            if !self.is_alive(ev.to) {
                self.stats.dropped += 1;
                continue;
            }
            let first_visit = seen.insert(ev.to);
            match ev.mode {
                // duplicate query arrival, dropped by the GUID cache
                Propagation::Flood if self.config.dedup && !first_visit => continue,
                // a guided copy is always deduplicated; a walker survives
                // revisits (it merely skips re-evaluating the share table)
                Propagation::Guided if !first_visit => continue,
                _ => {}
            }
            // evaluate against this peer's share-table index
            let evaluate = first_visit || ev.mode == Propagation::Flood;
            let matches = if evaluate {
                self.local_matches(ev.to, community, query)
            } else {
                Vec::new()
            };
            if !matches.is_empty() {
                // QueryHit routes back along the reverse path: one message
                // per edge, arriving after the summed reverse delays
                let mut back_latency: Time = 0;
                let mut prev = ev.to;
                for &node in ev.path.iter().rev() {
                    self.stats.sent(MsgKind::QueryHit);
                    outcome.messages += 1;
                    back_latency += self.latency.delay(prev, node);
                    prev = node;
                }
                let arrival = t + back_latency;
                let hops = ev.path.len() as u8;
                for (key, fields) in matches {
                    if hit_seen.insert((key.clone(), ev.to)) {
                        outcome.hits.push(SearchHit { key, provider: ev.to, fields, hops });
                        self.stats.hit(hops);
                        last_hit_at = last_hit_at.max(arrival);
                        outcome.first_hit_latency = Some(
                            outcome.first_hit_latency.map_or(arrival, |f| f.min(arrival)),
                        );
                    }
                }
                if ev.mode != Propagation::Flood {
                    // frontier stop: this copy found results, stop paying
                    // for forwarding (other copies keep exploring)
                    continue;
                }
            }
            if ev.ttl == 0 {
                continue;
            }
            // every queued event carries at least the origin in its path;
            // an empty one would be a malformed event — drop it
            let Some(&sender) = ev.path.last() else { continue };
            if ev.mode == Propagation::Flood {
                // forward to all neighbors except the immediate sender
                let neighbors: Vec<PeerId> = self.topology.neighbors(ev.to).collect();
                for nb in neighbors {
                    if nb == sender {
                        continue;
                    }
                    self.stats.sent(MsgKind::Query);
                    outcome.messages += 1;
                    let at = t + self.latency.delay(ev.to, nb);
                    let mut path = ev.path.clone();
                    path.push(ev.to);
                    queue.push(at, QueryEvent {
                        to: nb,
                        path,
                        ttl: ev.ttl - 1,
                        mode: Propagation::Flood,
                    });
                }
            } else {
                // guided copies and walkers re-consult the digests every
                // hop (a walker escaping a stale region resumes guided
                // forwarding); mid-path dead ends continue as one walker
                self.forward_guided(
                    t,
                    ev.to,
                    Some(sender),
                    &ev.path,
                    ev.ttl,
                    community,
                    query,
                    1,
                    &mut outcome,
                    &mut queue,
                );
            }
        }

        outcome.latency = if outcome.hits.is_empty() { quiescence } else { last_hit_at };
        if !outcome.hits.is_empty() {
            self.stats.queries_with_hits += 1;
        }
        outcome
    }

    fn retrieve(&mut self, origin: PeerId, provider: PeerId, key: &str) -> RetrieveOutcome {
        self.stats.retrieves += 1;
        if !self.is_alive(origin) {
            // a dead peer cannot send: the request never leaves the origin
            return RetrieveOutcome::Unavailable;
        }
        self.stats.sent(MsgKind::Retrieve);
        if !self.is_alive(provider) {
            self.stats.dropped += 1;
            return RetrieveOutcome::Unavailable;
        }
        if !self.shared[provider.index()].has_provider(key, provider) {
            self.stats.sent(MsgKind::RetrieveFail);
            return RetrieveOutcome::Unavailable;
        }
        self.stats.sent(MsgKind::RetrieveOk);
        self.stats.retrieves_ok += 1;
        let latency = self.latency.delay(origin, provider) + self.latency.delay(provider, origin);
        RetrieveOutcome::Fetched { provider, latency }
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = NetStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConstantLatency;

    fn record(key: &str, name: &str) -> ResourceRecord {
        ResourceRecord::new(key, "c", vec![("o/name".to_string(), name.to_string())])
    }

    fn line(n: usize) -> FloodingNetwork {
        // 0 - 1 - 2 - ... - (n-1)
        let mut t = Topology::empty(n);
        for i in 0..n - 1 {
            t.connect(PeerId(i as u32), PeerId(i as u32 + 1));
        }
        FloodingNetwork::new(t, Box::new(ConstantLatency(1_000)), FloodingConfig::default())
    }

    #[test]
    fn finds_object_within_ttl() {
        let mut net = line(5);
        net.publish(PeerId(3), record("k", "observer"));
        let out = net.search(PeerId(0), "c", &Query::any_keyword("observer"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].provider, PeerId(3));
        assert_eq!(out.hits[0].hops, 3);
        // query travelled 3 edges there, hit 3 edges back: 6000us
        assert_eq!(out.first_hit_latency, Some(6_000));
    }

    #[test]
    fn ttl_bounds_reach() {
        let mut t = Topology::empty(6);
        for i in 0..5 {
            t.connect(PeerId(i), PeerId(i + 1));
        }
        let mut net = FloodingNetwork::new(
            t,
            Box::new(ConstantLatency(1_000)),
            FloodingConfig { ttl: 2, ..FloodingConfig::default() },
        );
        net.publish(PeerId(5), record("far", "x"));
        net.publish(PeerId(2), record("near", "x"));
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        let keys: Vec<&str> = out.hits.iter().map(|h| h.key.as_str()).collect();
        assert_eq!(keys, vec!["near"], "ttl 2 reaches peer 2 but not peer 5");
    }

    #[test]
    fn local_hits_are_free() {
        let mut net = line(3);
        net.publish(PeerId(0), record("k", "x"));
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].hops, 0);
        assert_eq!(out.first_hit_latency, Some(0));
    }

    #[test]
    fn dedup_caps_messages_on_cyclic_graphs() {
        let cycle = |dedup| {
            let mut t = Topology::empty(4);
            // complete graph — worst case for duplicate queries
            for i in 0..4u32 {
                for j in (i + 1)..4 {
                    t.connect(PeerId(i), PeerId(j));
                }
            }
            let mut net = FloodingNetwork::new(
                t,
                Box::new(ConstantLatency(1_000)),
                FloodingConfig { ttl: 4, dedup, ..FloodingConfig::default() },
            );
            net.publish(PeerId(3), record("k", "x"));
            let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
            out.messages
        };
        let with = cycle(true);
        let without = cycle(false);
        assert!(
            without > with * 2,
            "no-dedup should blow up message count: {without} vs {with}"
        );
    }

    #[test]
    fn dead_peers_break_the_path() {
        let mut net = line(5);
        net.publish(PeerId(4), record("k", "x"));
        net.set_alive(PeerId(2), false);
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert!(out.hits.is_empty(), "peer 2 is the only route to peer 4");
        assert!(net.stats().dropped > 0);
    }

    #[test]
    fn replicas_found_on_both_sides() {
        let mut net = line(7);
        net.publish(PeerId(1), record("k", "x"));
        net.publish(PeerId(5), record("k", "x"));
        let out = net.search(PeerId(3), "c", &Query::any_keyword("x"));
        assert_eq!(out.hits.len(), 2);
        assert_eq!(out.distinct_keys(), 1);
        let providers: Vec<PeerId> = out.hits.iter().map(|h| h.provider).collect();
        assert!(providers.contains(&PeerId(1)) && providers.contains(&PeerId(5)));
    }

    #[test]
    fn retrieve_requires_live_provider_with_object() {
        let mut net = line(3);
        net.publish(PeerId(2), record("k", "x"));
        assert!(net.retrieve(PeerId(0), PeerId(2), "k").is_fetched());
        assert!(!net.retrieve(PeerId(0), PeerId(1), "k").is_fetched(), "peer 1 lacks it");
        net.set_alive(PeerId(2), false);
        assert!(!net.retrieve(PeerId(0), PeerId(2), "k").is_fetched());
        assert_eq!(net.stats().retrieves, 3);
        assert_eq!(net.stats().retrieves_ok, 1);
        // per-kind accounting: every live-origin attempt sends Retrieve;
        // a live provider without the object answers RetrieveFail; a dead
        // provider answers nothing (the request is dropped)
        assert_eq!(net.stats().count(MsgKind::Retrieve), 3);
        assert_eq!(net.stats().count(MsgKind::RetrieveOk), 1);
        assert_eq!(net.stats().count(MsgKind::RetrieveFail), 1);
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn dead_origin_retrieve_sends_no_messages() {
        let mut net = line(3);
        net.publish(PeerId(2), record("k", "x"));
        net.set_alive(PeerId(0), false);
        assert!(!net.retrieve(PeerId(0), PeerId(2), "k").is_fetched());
        assert_eq!(net.stats().retrieves, 1, "the attempt is still counted");
        assert_eq!(net.stats().messages, 0, "a dead peer cannot send");
    }

    #[test]
    fn unpublish_stops_hits() {
        let mut net = line(3);
        net.publish(PeerId(1), record("k", "x"));
        net.unpublish(PeerId(1), "k");
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert!(out.hits.is_empty());
        assert_eq!(net.shared_count(PeerId(1)), 0);
    }

    #[test]
    fn republish_updates_the_peers_own_record() {
        // a peer's share table keeps last-publish-wins semantics: the
        // same key republished with new metadata serves the new fields
        let mut net = line(3);
        net.publish(PeerId(1), record("k", "old name"));
        net.publish(PeerId(1), record("k", "new name"));
        assert_eq!(net.shared_count(PeerId(1)), 1);
        assert!(net.search(PeerId(0), "c", &Query::any_keyword("old")).hits.is_empty());
        let out = net.search(PeerId(0), "c", &Query::any_keyword("new"));
        assert_eq!(out.hits.len(), 1);
    }

    #[test]
    fn community_scoping_respected() {
        let mut net = line(3);
        net.publish(
            PeerId(1),
            ResourceRecord::new("k", "other", vec![("o/name".to_string(), "x".to_string())]),
        );
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert!(out.hits.is_empty());
    }

    #[test]
    fn message_count_bounded_by_edge_budget() {
        // with dedup, forwards ≤ 2 * edges (each edge crossed at most once
        // per direction) plus hit back-propagation
        let t = Topology::ring_lattice(20, 2);
        let edges = t.edge_count() as u64;
        let mut net =
            FloodingNetwork::new(t, Box::new(ConstantLatency(1_000)), FloodingConfig::default());
        let out = net.search(PeerId(0), "c", &Query::any_keyword("nothing"));
        assert!(out.messages <= edges * 2, "{} > {}", out.messages, edges * 2);
    }

    fn guided_line(n: usize) -> FloodingNetwork {
        let mut t = Topology::empty(n);
        for i in 0..n - 1 {
            t.connect(PeerId(i as u32), PeerId(i as u32 + 1));
        }
        let config =
            FloodingConfig { digests: DigestConfig::guided(), ..FloodingConfig::default() };
        FloodingNetwork::new(t, Box::new(ConstantLatency(1_000)), config)
    }

    #[test]
    fn guided_search_follows_the_digest_trail() {
        let mut net = guided_line(6);
        net.publish(PeerId(4), record("k", "observer"));
        let out = net.search(PeerId(0), "c", &Query::any_keyword("observer"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].provider, PeerId(4));
        // a line has one digest-matching direction: 4 Query hops out,
        // 4 QueryHit hops back, nothing else
        assert_eq!(out.messages, 8);
        assert_eq!(net.stats().count(MsgKind::Query), 4);
        assert_eq!(net.stats().count(MsgKind::QueryHit), 4);
        // the digest handshake was paid once, one request per directed edge
        assert_eq!(net.stats().count(MsgKind::DigestRequest), 10);
        assert!(net.stats().count(MsgKind::DigestPush) >= 10);
    }

    #[test]
    fn guided_search_prunes_hopeless_directions() {
        let mut net = guided_line(6);
        net.publish(PeerId(1), record("k", "x"));
        // origin 2 sees a depth-1 match toward 1 and nothing toward 3:
        // one Query, one QueryHit, and the frontier stop ends it there
        let out = net.search(PeerId(2), "c", &Query::any_keyword("x"));
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.messages, 2);
    }

    #[test]
    fn guided_local_hits_cost_nothing() {
        let mut net = guided_line(4);
        net.publish(PeerId(0), record("k", "x"));
        net.publish(PeerId(3), record("k2", "x"));
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        // frontier stop at the origin: the local hit satisfies the query
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].hops, 0);
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn guided_search_refreshes_after_unpublish() {
        let mut net = guided_line(5);
        net.publish(PeerId(4), record("k", "x"));
        assert_eq!(net.search(PeerId(0), "c", &Query::any_keyword("x")).hits.len(), 1);
        net.unpublish(PeerId(4), "k");
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert!(out.hits.is_empty(), "a removed record is never resurrected");
        // no digest matches anywhere, so the search degrades to the
        // fallback walkers: at most walk_width TTL'd walks, far below the
        // flood cost (which would still cross every edge)
        let bound = (net.config().ttl as u64) * net.config().digests.walk_width as u64;
        assert!(out.messages <= bound, "{} > {bound}", out.messages);
    }

    #[test]
    fn walk_fallback_survives_stale_digests() {
        // peer death does NOT dirty the digests (a real overlay only
        // notices through timeouts), so the guided path toward the dead
        // provider goes stale; the walker fallback keeps exploring and
        // the search still terminates without false hits
        let mut net = guided_line(5);
        net.publish(PeerId(3), record("k", "x"));
        assert_eq!(net.search(PeerId(0), "c", &Query::any_keyword("x")).hits.len(), 1);
        net.set_alive(PeerId(3), false);
        let out = net.search(PeerId(0), "c", &Query::any_keyword("x"));
        assert!(out.hits.is_empty(), "dead providers never produce hits");
        assert!(net.stats().dropped > 0, "the stale trail ends at the dead peer");
    }

    #[test]
    fn guided_hits_are_a_subset_of_flooding_hits() {
        // same topology, same records; guided may return fewer hits
        // (frontier stop) but never one flooding would not have found
        let build = |guided: bool| {
            let t = Topology::small_world(24, 2, 0.2, 9);
            let digests =
                if guided { DigestConfig::guided() } else { DigestConfig::default() };
            let mut net = FloodingNetwork::new(
                t,
                Box::new(ConstantLatency(1_000)),
                FloodingConfig { digests, ..FloodingConfig::default() },
            );
            for i in [3u32, 11, 19] {
                net.publish(PeerId(i), record(&format!("k{i}"), "needle"));
            }
            net
        };
        let flood_hits: std::collections::BTreeSet<(String, PeerId)> = build(false)
            .search(PeerId(0), "c", &Query::any_keyword("needle"))
            .hits
            .into_iter()
            .map(|h| (h.key, h.provider))
            .collect();
        let guided = build(true).search(PeerId(0), "c", &Query::any_keyword("needle"));
        for h in &guided.hits {
            assert!(
                flood_hits.contains(&(h.key.clone(), h.provider)),
                "guided found {h:?} that flooding missed"
            );
        }
        assert!(!guided.hits.is_empty(), "digests lead to at least one replica");
    }
}
