//! Peer churn models for availability experiments (E5).
//!
//! Two views of churn are provided: an i.i.d. *snapshot* (each peer online
//! with probability `availability` at query time — the standard analytical
//! model where an object with `r` replicas is findable with probability
//! `1-(1-a)^r`), and an explicit on/off *schedule* with exponential
//! session and downtime durations for trace-driven simulation.

use crate::message::Time;
use crate::peer::PeerId;
use crate::traits::PeerNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Applies an i.i.d. liveness snapshot: every peer except those in
/// `pinned` is set online with probability `availability`.
///
/// # Panics
///
/// Panics if `availability` is outside `[0, 1]`.
pub fn apply_snapshot(
    net: &mut dyn PeerNetwork,
    availability: f64,
    pinned: &[PeerId],
    rng: &mut StdRng,
) {
    assert!((0.0..=1.0).contains(&availability), "availability must be a probability");
    for i in 0..net.peer_count() {
        let p = PeerId(i as u32);
        if pinned.contains(&p) {
            net.set_alive(p, true);
        } else {
            net.set_alive(p, rng.gen::<f64>() < availability);
        }
    }
}

/// Restores every peer to online.
pub fn revive_all(net: &mut dyn PeerNetwork) {
    for i in 0..net.peer_count() {
        net.set_alive(PeerId(i as u32), true);
    }
}

/// One liveness transition in a churn schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Virtual time of the transition.
    pub at: Time,
    /// Affected peer.
    pub peer: PeerId,
    /// New liveness.
    pub online: bool,
}

/// Generates an exponential on/off schedule for every peer over
/// `[0, horizon)`. Peers start online; session lengths are exponential
/// with mean `mean_session`, downtimes with mean `mean_downtime`.
pub fn exponential_schedule(
    peers: usize,
    horizon: Time,
    mean_session: Time,
    mean_downtime: Time,
    seed: u64,
) -> Vec<ChurnEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    for p in 0..peers {
        let mut t: Time = 0;
        let mut online = true;
        loop {
            let mean = if online { mean_session } else { mean_downtime };
            let draw = sample_exponential(&mut rng, mean);
            t = t.saturating_add(draw);
            if t >= horizon {
                break;
            }
            online = !online;
            events.push(ChurnEvent { at: t, peer: PeerId(p as u32), online });
        }
    }
    events.sort_by_key(|e| (e.at, e.peer));
    events
}

fn sample_exponential(rng: &mut StdRng, mean: Time) -> Time {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-u.ln() * mean as f64) as Time
}

/// Expected availability of an object with `replicas` copies when each
/// peer is online with probability `availability` — the analytical curve
/// E5 compares the simulation against.
pub fn expected_availability(availability: f64, replicas: u32) -> f64 {
    1.0 - (1.0 - availability).powi(replicas as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConstantLatency;
    use crate::topology::Topology;
    use crate::{FloodingConfig, FloodingNetwork};

    fn net(n: usize) -> FloodingNetwork {
        FloodingNetwork::new(
            Topology::ring_lattice(n, 2),
            Box::new(ConstantLatency(1_000)),
            FloodingConfig::default(),
        )
    }

    #[test]
    fn snapshot_respects_probability_roughly() {
        let mut net = net(1000);
        let mut rng = StdRng::seed_from_u64(7);
        apply_snapshot(&mut net, 0.3, &[], &mut rng);
        let alive = (0..1000).filter(|&i| net.is_alive(PeerId(i))).count();
        assert!((200..400).contains(&alive), "got {alive}, expected ≈300");
    }

    #[test]
    fn snapshot_pins_peers() {
        let mut net = net(100);
        let mut rng = StdRng::seed_from_u64(7);
        apply_snapshot(&mut net, 0.0, &[PeerId(5)], &mut rng);
        assert!(net.is_alive(PeerId(5)));
        assert!(!net.is_alive(PeerId(6)));
        revive_all(&mut net);
        assert!(net.is_alive(PeerId(6)));
    }

    #[test]
    fn extreme_probabilities() {
        let mut net = net(50);
        let mut rng = StdRng::seed_from_u64(1);
        apply_snapshot(&mut net, 1.0, &[], &mut rng);
        assert!((0..50).all(|i| net.is_alive(PeerId(i))));
        apply_snapshot(&mut net, 0.0, &[], &mut rng);
        assert!((0..50).all(|i| !net.is_alive(PeerId(i))));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let mut net = net(10);
        let mut rng = StdRng::seed_from_u64(1);
        apply_snapshot(&mut net, 1.5, &[], &mut rng);
    }

    #[test]
    fn schedule_is_sorted_and_alternates() {
        let events = exponential_schedule(20, 1_000_000, 100_000, 50_000, 3);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // per-peer transitions must alternate starting with "go offline"
        for p in 0..20u32 {
            let mine: Vec<bool> = events
                .iter()
                .filter(|e| e.peer == PeerId(p))
                .map(|e| e.online)
                .collect();
            for (i, &online) in mine.iter().enumerate() {
                assert_eq!(online, i % 2 == 1, "peer {p} transition {i}");
            }
        }
    }

    #[test]
    fn schedule_respects_horizon() {
        let events = exponential_schedule(5, 100_000, 10_000, 10_000, 9);
        assert!(events.iter().all(|e| e.at < 100_000));
    }

    #[test]
    fn analytic_availability_curve() {
        assert!((expected_availability(0.5, 1) - 0.5).abs() < 1e-12);
        assert!((expected_availability(0.5, 2) - 0.75).abs() < 1e-12);
        assert!((expected_availability(0.3, 5) - (1.0 - 0.7f64.powi(5))).abs() < 1e-12);
        assert_eq!(expected_availability(1.0, 1), 1.0);
        assert_eq!(expected_availability(0.0, 10), 0.0);
    }
}
