//! Property tests: the inverted index must agree exactly with the
//! reference (linear scan) query semantics, and the CMIP filter syntax
//! must round-trip through `Display`.

use proptest::prelude::*;
use std::collections::BTreeSet;
use up2p_store::{parse_cmip, MetadataIndex, Query, Repository, ResourceId, ValuePattern};

fn word() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("observer".to_string()),
        Just("factory".to_string()),
        Just("jazz".to_string()),
        Just("modal".to_string()),
        Just("pattern".to_string()),
        Just("gof".to_string()),
        "[a-z]{2,6}",
    ]
}

fn field_path() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("obj/name".to_string()),
        Just("obj/category".to_string()),
        Just("obj/keywords".to_string()),
    ]
}

fn object_fields() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(
        (field_path(), prop::collection::vec(word(), 1..4).prop_map(|ws| ws.join(" "))),
        1..5,
    )
}

fn pattern_strategy() -> impl Strategy<Value = ValuePattern> {
    (word(), 0u8..5).prop_map(|(w, kind)| match kind {
        0 => ValuePattern::Exact(w),
        1 => ValuePattern::Prefix(w),
        2 => ValuePattern::Suffix(w),
        3 => ValuePattern::Contains(w),
        _ => ValuePattern::Present,
    })
}

fn leaf_query() -> impl Strategy<Value = Query> {
    prop_oneof![
        (field_path(), pattern_strategy())
            .prop_map(|(field, pattern)| Query::Match { field, pattern }),
        (field_path(), word()).prop_map(|(f, w)| Query::keyword(f, &w)),
        word().prop_map(|w| Query::any_keyword(&w)),
        Just(Query::All),
    ]
}

fn query_strategy() -> impl Strategy<Value = Query> {
    leaf_query().prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Query::And),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Query::Or),
            inner.prop_map(|q| Query::Not(Box::new(q))),
        ]
    })
}

proptest! {
    /// The inverted index and the reference linear scan agree on every
    /// query for every corpus.
    #[test]
    fn index_equals_reference_scan(
        objects in prop::collection::vec(object_fields(), 1..12),
        query in query_strategy(),
    ) {
        let mut ix = MetadataIndex::new();
        let mut reference: Vec<(ResourceId, Vec<(String, String)>)> = Vec::new();
        for (i, fields) in objects.iter().enumerate() {
            let id = ResourceId::for_bytes(&[i as u8]);
            ix.insert(id.clone(), fields.clone());
            reference.push((id, fields.clone()));
        }
        let via_index = ix.execute(&query);
        let via_scan: BTreeSet<ResourceId> = reference
            .iter()
            .filter(|(_, fields)| query.matches_fields(fields))
            .map(|(id, _)| id.clone())
            .collect();
        prop_assert_eq!(via_index, via_scan, "query: {}", query);
    }

    /// Any query tree prints as a CMIP filter that reparses to the same
    /// tree (modulo keyword-token normalization, which Display preserves).
    #[test]
    fn cmip_display_round_trips(query in query_strategy()) {
        let text = query.to_string();
        let reparsed = parse_cmip(&text).unwrap();
        prop_assert_eq!(query, reparsed, "text: {}", text);
    }

    /// Repository insert/remove keeps len, membership and search
    /// consistent.
    #[test]
    fn repository_insert_remove_consistent(
        names in prop::collection::btree_set("[a-z]{3,8}", 1..8),
    ) {
        let mut repo = Repository::new();
        let paths = vec!["o/name".to_string()];
        let mut ids = Vec::new();
        for n in &names {
            let xml = format!("<o><name>{n}</name></o>");
            ids.push(repo.insert_xml("c", &xml, &paths).unwrap());
        }
        prop_assert_eq!(repo.len(), names.len());
        for (n, id) in names.iter().zip(&ids) {
            let hits = repo.search(Some("c"), &Query::eq("name", n));
            prop_assert!(hits.iter().any(|o| &o.id == id));
        }
        // remove everything; store must end empty with no stale postings
        for id in &ids {
            repo.remove(id);
        }
        prop_assert!(repo.is_empty());
        for n in &names {
            prop_assert!(repo.search(None, &Query::eq("name", n)).is_empty());
        }
    }

    /// The CMIP parser never panics on arbitrary input.
    #[test]
    fn cmip_parser_never_panics(s in "\\PC{0,60}") {
        let _ = parse_cmip(&s);
    }

    /// Interleaved insert / remove / re-insert (the targeted-removal
    /// rewrite's safety net): after every operation the index agrees with
    /// a linear `matches_fields` scan, and removing everything returns
    /// the posting counts to the empty baseline.
    #[test]
    fn remove_interleaving_keeps_index_consistent(
        objects in prop::collection::vec(object_fields(), 1..10),
        ops in prop::collection::vec((0u8..3, 0usize..10), 1..25),
        query in query_strategy(),
    ) {
        let mut ix = MetadataIndex::new();
        type Slot = (ResourceId, Option<Vec<(String, String)>>);
        let mut reference: Vec<Slot> = objects
            .iter()
            .enumerate()
            .map(|(i, f)| (ResourceId::for_bytes(&[i as u8]), Some(f.clone())))
            .collect();
        for (i, fields) in objects.iter().enumerate() {
            ix.insert(reference[i].0.clone(), fields.clone());
        }
        let baseline = {
            let s = ix.stats();
            (s.token_postings, s.exact_postings)
        };
        for (op, slot) in ops {
            let slot = slot % reference.len();
            let (id, fields) = (reference[slot].0.clone(), objects[slot].clone());
            match op {
                0 => {
                    ix.remove(&id);
                    reference[slot].1 = None;
                }
                1 => {
                    ix.insert(id.clone(), fields.clone());
                    reference[slot].1 = Some(fields);
                }
                _ => {
                    // re-insert with mutated fields, then restore
                    let mut mutated = fields.clone();
                    mutated.push(("obj/extra".to_string(), "mutant".to_string()));
                    ix.insert(id.clone(), mutated);
                    ix.insert(id.clone(), fields.clone());
                    reference[slot].1 = Some(fields);
                }
            }
            let via_index = ix.execute(&query);
            let via_scan: BTreeSet<ResourceId> = reference
                .iter()
                .filter(|(_, f)| f.as_ref().is_some_and(|f| query.matches_fields(f)))
                .map(|(id, _)| id.clone())
                .collect();
            prop_assert_eq!(via_index, via_scan, "after op {} on slot {}: {}", op, slot, &query);
        }
        // restore the original corpus: postings must return to baseline
        for (i, fields) in objects.iter().enumerate() {
            ix.insert(reference[i].0.clone(), fields.clone());
        }
        let s = ix.stats();
        prop_assert_eq!((s.token_postings, s.exact_postings), baseline);
        prop_assert_eq!(s.objects, objects.len());
        // and removing everything empties every posting list
        for (id, _) in &reference {
            ix.remove(id);
        }
        let s = ix.stats();
        prop_assert_eq!((s.objects, s.token_postings, s.exact_postings), (0, 0, 0));
        prop_assert!(ix.is_empty());
    }

    /// `insert_batch` is observationally identical to sequential inserts
    /// for any corpus (including duplicate ids within the batch).
    #[test]
    fn batch_insert_equals_sequential(
        objects in prop::collection::vec(object_fields(), 1..10),
        dup in 0u8..2,
        query in query_strategy(),
    ) {
        let mut items: Vec<(ResourceId, Vec<(String, String)>)> = objects
            .iter()
            .enumerate()
            .map(|(i, f)| (ResourceId::for_bytes(&[i as u8]), f.clone()))
            .collect();
        if dup == 1 {
            // repeat the first id with the last object's fields: last wins
            let fields = objects.last().unwrap().clone();
            items.push((items[0].0.clone(), fields));
        }
        let mut batched = MetadataIndex::new();
        batched.insert_batch(items.clone());
        let mut sequential = MetadataIndex::new();
        for (id, fields) in items {
            sequential.insert(id, fields);
        }
        prop_assert_eq!(batched.execute(&query), sequential.execute(&query), "{}", &query);
        let (b, s) = (batched.stats(), sequential.stats());
        prop_assert_eq!(b.token_postings, s.token_postings);
        prop_assert_eq!(b.exact_postings, s.exact_postings);
        prop_assert_eq!(b.objects, s.objects);
    }
}
