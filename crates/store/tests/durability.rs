//! Crash-injection and corruption tests for the durable store.
//!
//! The harness runs a fixed publish/remove workload against a
//! [`DurableRepository`] mounted on [`FailFs`], which kills the
//! filesystem at a chosen total byte offset — the write that crosses the
//! budget is torn at exactly that byte and every later operation fails,
//! leaving the directory the way a power cut would. Recovery then runs
//! over the real filesystem, and the recovered repository must equal the
//! in-memory oracle after some exact prefix of the attempted operations:
//! at least every acknowledged one, at most one more (a record can be
//! fully written while its fsync acknowledgment is lost). Nothing in
//! between — no half-visible record — and never a panic.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use up2p_store::{
    DurableOptions, DurableRepository, FailFs, Query, Repository, StoreError, SyncPolicy,
};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir()
        .join(format!("up2p-durability-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// One step of the workload. `Remove(sel)` targets `ids[sel % ids.len()]`
/// among the ids published so far (a no-op when it was already removed),
/// so the same op list is replayable against the oracle and the store.
#[derive(Debug, Clone, Copy)]
enum Op {
    Publish(u32),
    Remove(usize),
}

fn xml_for(n: u32) -> String {
    format!(
        "<track><title>Crash Test Song {n}</title><artist>The Torn Writes {}</artist>\
         <genre>genre{}</genre></track>",
        n % 5,
        n % 3
    )
}

fn index_paths() -> Vec<String> {
    vec!["track/title".into(), "track/artist".into(), "track/genre".into()]
}

/// The oracle: the first `upto` ops applied to a plain in-memory
/// repository (no WAL, no crash).
fn oracle(ops: &[Op], upto: usize) -> Repository {
    let mut repo = Repository::new();
    let mut ids = Vec::new();
    for op in &ops[..upto] {
        match op {
            Op::Publish(n) => {
                ids.push(repo.insert_xml("tracks", &xml_for(*n), &index_paths()).expect("valid xml"));
            }
            Op::Remove(sel) => {
                if !ids.is_empty() {
                    repo.remove(&ids[sel % ids.len()].clone());
                }
            }
        }
    }
    repo
}

/// Applies ops to the durable store until the first injected failure,
/// returning how many were acknowledged.
fn apply_until_crash(store: &mut DurableRepository, ops: &[Op]) -> usize {
    let mut ids = Vec::new();
    for (acked, op) in ops.iter().enumerate() {
        let result: Result<(), StoreError> = match op {
            Op::Publish(n) => {
                store.publish_xml("tracks", &xml_for(*n), &index_paths()).map(|id| ids.push(id))
            }
            Op::Remove(sel) => {
                if ids.is_empty() {
                    Ok(())
                } else {
                    let id = ids[sel % ids.len()].clone();
                    store.remove(&id).map(|_| ())
                }
            }
        };
        if result.is_err() {
            return acked;
        }
    }
    ops.len()
}

fn probe_queries() -> Vec<Query> {
    vec![
        Query::any_keyword("crash"),
        Query::any_keyword("torn"),
        Query::keyword("genre", "genre1"),
        Query::eq("artist", "the torn writes 2"),
        Query::and([Query::any_keyword("song"), Query::keyword("genre", "genre0")]),
        Query::All,
    ]
}

/// Structural + behavioral equality between a recovered repository and
/// an oracle state. `approx_bytes` is deliberately excluded: the
/// oracle's interner retains strings from removed objects that a
/// recovered index never saw.
fn same_state(recovered: &Repository, expect: &Repository) -> bool {
    if recovered.len() != expect.len() {
        return false;
    }
    type ObjectDump = Vec<(String, String, String, Vec<(String, String)>)>;
    let dump = |r: &Repository| -> ObjectDump {
        r.iter()
            .map(|o| (o.id.to_string(), o.community.clone(), o.xml.clone(), o.fields.to_vec()))
            .collect()
    };
    if dump(recovered) != dump(expect) {
        return false;
    }
    let (a, b) = (recovered.index_stats(), expect.index_stats());
    if (a.objects, a.fields, a.token_postings, a.exact_postings)
        != (b.objects, b.fields, b.token_postings, b.exact_postings)
    {
        return false;
    }
    probe_queries().iter().all(|q| {
        let hits = |r: &Repository| -> Vec<String> {
            r.search(None, q).iter().map(|o| o.id.to_string()).collect()
        };
        hits(recovered) == hits(expect)
    })
}

/// Runs the workload with the filesystem set to die after `budget`
/// bytes, recovers, and asserts the recovered state is an exact op
/// prefix covering at least every acknowledged op.
fn run_kill_case(ops: &[Op], budget: u64, opts: DurableOptions, tag: &str) {
    let dir = fresh_dir(tag);
    let fs = FailFs::new(budget);
    let opened = DurableRepository::open_with_fs(Box::new(fs.clone()), &dir, opts);
    let acked = match opened {
        Ok(mut store) => apply_until_crash(&mut store, ops),
        Err(_) => {
            // died during initialization: either no manifest was
            // committed yet (recover refuses, cleanly) or an empty
            // generation was — both mean zero ops
            if let Ok((repo, _)) = DurableRepository::recover(&dir) {
                assert!(
                    same_state(&repo, &Repository::new()),
                    "budget {budget}: init crash must recover empty"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
            return;
        }
    };
    let (recovered, report) = DurableRepository::recover(&dir)
        .unwrap_or_else(|e| panic!("budget {budget}: committed store failed recovery: {e}"));
    let attempted = (acked + 1).min(ops.len());
    let matched = (acked..=attempted).find(|&k| same_state(&recovered, &oracle(ops, k)));
    assert!(
        matched.is_some(),
        "budget {budget}: recovered {} objects (report {report:?}) matches no op prefix in \
         [{acked}, {attempted}]",
        recovered.len(),
    );
    // reopening read-write over the crash scar must also work, truncate
    // the torn tail and accept new appends
    let mut reopened = DurableRepository::open(&dir, DurableOptions::default())
        .unwrap_or_else(|e| panic!("budget {budget}: reopen failed: {e}"));
    let id = reopened
        .publish_xml("tracks", &xml_for(9_999), &index_paths())
        .unwrap_or_else(|e| panic!("budget {budget}: append after recovery failed: {e}"));
    drop(reopened);
    let (after, _) = DurableRepository::recover(&dir).expect("recover after append");
    assert!(after.contains(&id), "budget {budget}: post-recovery append lost");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The fixed workload the deterministic offset sweeps use: 36 publishes
/// interleaved with removes, including republished duplicates.
fn sweep_ops() -> Vec<Op> {
    let mut ops = Vec::new();
    for n in 0..36u32 {
        ops.push(Op::Publish(n % 30)); // %30 → six republished duplicates
        if n % 3 == 2 {
            ops.push(Op::Remove((n as usize) * 7 + 1));
        }
    }
    ops
}

/// Total bytes the workload writes when nothing fails, so kill offsets
/// can be chosen to land inside it.
fn measure_total_bytes(ops: &[Op], opts: DurableOptions, tag: &str) -> u64 {
    let dir = fresh_dir(tag);
    let fs = FailFs::unlimited();
    let mut store =
        DurableRepository::open_with_fs(Box::new(fs.clone()), &dir, opts).expect("open");
    assert_eq!(apply_until_crash(&mut store, ops), ops.len());
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    fs.bytes_written()
}

#[test]
fn crash_recovery_sweep_over_100_wal_offsets() {
    let ops = sweep_ops();
    let opts = DurableOptions { sync: SyncPolicy::EveryRecord, compact_every: None };
    let total = measure_total_bytes(&ops, opts, "measure-wal");
    let offsets: BTreeSet<u64> = (0..=105u64).map(|i| i * total / 105).collect();
    assert!(offsets.len() > 100, "workload too small to pick 100+ distinct offsets");
    for budget in offsets {
        run_kill_case(&ops, budget, opts, "sweep-wal");
    }
}

#[test]
fn crash_recovery_sweep_through_compactions() {
    // auto-compaction every 7 records: kills land inside segment writes,
    // WAL swaps and manifest renames, not just WAL appends
    let ops = sweep_ops();
    let opts = DurableOptions { sync: SyncPolicy::EveryRecord, compact_every: Some(7) };
    let total = measure_total_bytes(&ops, opts, "measure-compact");
    for i in 0..=40u64 {
        run_kill_case(&ops, i * total / 40, opts, "sweep-compact");
    }
}

proptest! {
    /// Random workloads, random kill offset, batched sync policies:
    /// recovery always lands on an exact op prefix.
    #[test]
    fn random_workload_recovers_to_exact_prefix(
        raw_ops in prop::collection::vec((0u32..40, 0usize..64, any::<bool>()), 4..40),
        kill_num in 1u64..96,
        policy in 0u8..3,
        compact_every in prop_oneof![Just(None), (2usize..9).prop_map(Some)],
    ) {
        let ops: Vec<Op> = raw_ops
            .iter()
            .map(|&(n, sel, publish)| if publish { Op::Publish(n) } else { Op::Remove(sel) })
            .collect();
        let sync = match policy {
            0 => SyncPolicy::EveryRecord,
            1 => SyncPolicy::EveryN(4),
            _ => SyncPolicy::Manual,
        };
        let opts = DurableOptions { sync, compact_every };
        let total = measure_total_bytes(&ops, opts, "prop-measure");
        run_kill_case(&ops, kill_num * total / 96, opts, "prop-kill");
    }
}

#[test]
fn wal_bitflips_and_truncations_recover_a_prefix_without_panicking() {
    let dir = fresh_dir("wal-corrupt");
    let n_ops = 10usize;
    {
        let mut store = DurableRepository::open(&dir, DurableOptions::default()).expect("open");
        for n in 0..n_ops as u32 {
            store.publish_xml("tracks", &xml_for(n), &index_paths()).expect("publish");
        }
    }
    let wal_path = std::fs::read_dir(&dir)
        .expect("dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "log"))
        .expect("wal file");
    let pristine = std::fs::read(&wal_path).expect("read wal");
    let oracle_states: Vec<Repository> = (0..=n_ops)
        .map(|k| oracle(&(0..n_ops as u32).map(Op::Publish).collect::<Vec<_>>(), k))
        .collect();
    let positions: Vec<usize> =
        (0..pristine.len()).filter(|i| *i < 24 || i % 7 == 0).collect();
    for &i in &positions {
        // single byte flip: recovery stops at the damaged frame and
        // yields an exact publish prefix
        let mut bad = pristine.clone();
        bad[i] ^= 0x10;
        std::fs::write(&wal_path, &bad).expect("write");
        let (repo, report) = DurableRepository::recover(&dir).expect("flip must not error");
        assert!(
            oracle_states.iter().any(|o| same_state(&repo, o)),
            "flip at byte {i}: {} objects is not a clean prefix", repo.len()
        );
        assert!(report.wal_records <= n_ops);
        // truncation at the same point: also a clean prefix
        std::fs::write(&wal_path, &pristine[..i]).expect("write");
        let (repo, _) = DurableRepository::recover(&dir).expect("truncation must not error");
        assert!(
            oracle_states.iter().any(|o| same_state(&repo, o)),
            "truncation at byte {i}: {} objects is not a clean prefix", repo.len()
        );
    }
    // undamaged log still recovers everything
    std::fs::write(&wal_path, &pristine).expect("restore");
    let (repo, report) = DurableRepository::recover(&dir).expect("pristine");
    assert!(same_state(&repo, &oracle_states[n_ops]));
    assert_eq!(report.torn_bytes, 0);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn segment_corruption_is_detected_never_papered_over() {
    let dir = fresh_dir("seg-corrupt");
    {
        let mut store = DurableRepository::open(&dir, DurableOptions::default()).expect("open");
        for n in 0..8u32 {
            store.publish_xml("tracks", &xml_for(n), &index_paths()).expect("publish");
        }
        store.compact().expect("compact");
    }
    let seg_path = std::fs::read_dir(&dir)
        .expect("dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "up2p"))
        .expect("segment file");
    let pristine = std::fs::read(&seg_path).expect("read segment");
    // a committed segment is load-bearing: any flip or truncation must
    // surface as Corrupt (silently dropping compacted objects would lose
    // acknowledged data), and must never panic
    for i in (0..pristine.len()).step_by(11).chain([0, 3, 8, pristine.len() - 1]) {
        let mut bad = pristine.clone();
        bad[i] ^= 0x08;
        std::fs::write(&seg_path, &bad).expect("write");
        assert!(
            matches!(DurableRepository::recover(&dir), Err(StoreError::Corrupt(_))),
            "flip at segment byte {i} went undetected"
        );
        assert!(
            matches!(Repository::load_dir(&dir), Err(StoreError::Corrupt(_))),
            "load_dir fast path must refuse the damaged segment too (byte {i})"
        );
        std::fs::write(&seg_path, &pristine[..i]).expect("write");
        assert!(
            matches!(DurableRepository::recover(&dir), Err(StoreError::Corrupt(_))),
            "truncation at segment byte {i} went undetected"
        );
    }
    std::fs::write(&seg_path, &pristine).expect("restore");
    let (repo, _) = DurableRepository::recover(&dir).expect("pristine segment");
    assert_eq!(repo.len(), 8);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn corrupt_manifest_refuses_cleanly() {
    let dir = fresh_dir("manifest-corrupt");
    {
        let mut store = DurableRepository::open(&dir, DurableOptions::default()).expect("open");
        store.publish_xml("tracks", &xml_for(0), &index_paths()).expect("publish");
    }
    std::fs::write(dir.join("MANIFEST"), "up2p-manifest 999\nnope\n").expect("write");
    assert!(matches!(DurableRepository::recover(&dir), Err(StoreError::Corrupt(_))));
    assert!(matches!(
        DurableRepository::open(&dir, DurableOptions::default()),
        Err(StoreError::Corrupt(_))
    ));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
