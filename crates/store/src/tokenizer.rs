//! Tokenization of metadata values for the inverted index.

/// Stopwords excluded from keyword indexing. Small and era-appropriate;
/// disable with [`tokenize_with`]'s `keep_stopwords`.
pub const STOPWORDS: &[&str] =
    &["a", "an", "and", "are", "as", "at", "be", "by", "for", "in", "is", "it", "of", "on",
      "or", "the", "to", "with"];

/// Splits `text` into lowercase alphanumeric tokens, dropping stopwords.
///
/// ```
/// assert_eq!(
///     up2p_store::tokenize("The Observer pattern, by GoF!"),
///     vec!["observer", "pattern", "gof"]
/// );
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    tokenize_with(text, false)
}

/// Tokenizes with explicit stopword control.
pub fn tokenize_with(text: &str, keep_stopwords: bool) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
        .filter(|t| keep_stopwords || !STOPWORDS.contains(&t.as_str()))
        .collect()
}

thread_local! {
    static TOKEN_PASSES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of tokenization passes (one per field value fed through
/// [`for_each_token`]) performed *on this thread* since it started.
///
/// This is the observability hook the persistence tests use to prove the
/// durable recovery path never re-tokenizes: sample before and after a
/// load and assert the delta is zero. Thread-local so parallel test
/// binaries cannot interfere with each other's counts.
pub fn token_passes() -> u64 {
    TOKEN_PASSES.with(|c| c.get())
}

/// Visits each indexable token of `text` (same token stream as
/// [`tokenize`], stopwords dropped) without allocating a `String` per
/// token: already-lowercase ASCII tokens are passed through as slices of
/// `text`, and only mixed-case / non-ASCII tokens are lowercased into a
/// single reused buffer. This is the indexing/removal hot path.
pub(crate) fn for_each_token(text: &str, mut f: impl FnMut(&str)) {
    TOKEN_PASSES.with(|c| c.set(c.get() + 1));
    for raw in text.split(|c: char| !c.is_alphanumeric()) {
        if raw.is_empty() {
            continue;
        }
        if raw.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()) {
            if !STOPWORDS.contains(&raw) {
                f(raw);
            }
        } else {
            // same lowercasing as `tokenize` (str::to_lowercase, which
            // handles e.g. final sigma) — rare path, one allocation
            let lowered = raw.to_lowercase();
            if !STOPWORDS.contains(&lowered.as_str()) {
                f(&lowered);
            }
        }
    }
}

/// Normalizes a value for exact-match indexing (lowercased, whitespace
/// collapsed).
pub fn normalize(value: &str) -> String {
    value.split_whitespace().collect::<Vec<_>>().join(" ").to_lowercase()
}

/// `true` when `normalize(s) == s`, checked without allocating. Lets the
/// comparison hot paths skip re-normalizing values that are already in
/// canonical form (everything the index stores, every compiled pattern).
pub fn is_normalized(s: &str) -> bool {
    let mut prev_space = true; // rejects a leading space and double spaces
    for c in s.chars() {
        if c == ' ' {
            if prev_space {
                return false;
            }
            prev_space = true;
        } else if c.is_whitespace() || !c.to_lowercase().eq(std::iter::once(c)) {
            return false;
        } else {
            prev_space = false;
        }
    }
    s.is_empty() || !prev_space // rejects a trailing space
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_lowercases() {
        assert_eq!(tokenize("Abstract-Factory (GoF)"), vec!["abstract", "factory", "gof"]);
    }

    #[test]
    fn drops_stopwords_by_default() {
        assert_eq!(tokenize("the cat and the hat"), vec!["cat", "hat"]);
        assert_eq!(
            tokenize_with("the cat", true),
            vec!["the", "cat"]
        );
    }

    #[test]
    fn numbers_are_tokens() {
        assert_eq!(tokenize("track 7 of 12"), vec!["track", "7", "12"]);
    }

    #[test]
    fn empty_and_punct_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("... --- !!!").is_empty());
    }

    #[test]
    fn normalize_collapses_space_and_case() {
        assert_eq!(normalize("  Abstract   Factory "), "abstract factory");
    }

    #[test]
    fn unicode_tokens_survive() {
        assert_eq!(tokenize("Queensrÿche déjà-vu"), vec!["queensrÿche", "déjà", "vu"]);
    }

    #[test]
    fn for_each_token_agrees_with_tokenize() {
        for text in [
            "The Observer pattern, by GoF!",
            "Abstract-Factory (GoF)",
            "track 7 of 12",
            "Queensrÿche déjà-vu",
            "ΟΔΟΣ uphill",
            "",
            "... --- !!!",
        ] {
            let mut via_visitor = Vec::new();
            for_each_token(text, |t| via_visitor.push(t.to_string()));
            assert_eq!(via_visitor, tokenize(text), "{text:?}");
        }
    }

    #[test]
    fn token_passes_counts_visitor_runs() {
        let before = token_passes();
        for_each_token("one pass", |_| {});
        for_each_token("two", |_| {});
        assert_eq!(token_passes() - before, 2);
        // normalization is not a tokenization pass
        let before = token_passes();
        let _ = normalize("Not Counted");
        assert_eq!(token_passes(), before);
    }

    #[test]
    fn is_normalized_agrees_with_normalize() {
        for s in [
            "", "abstract factory", "Abstract Factory", " leading", "trailing ", "two  spaces",
            "tab\there", "ǅungla", "déjà vu", "İstanbul", "a", " ", "x y z",
        ] {
            assert_eq!(is_normalized(s), normalize(s) == s, "{s:?}");
        }
    }
}
