//! Tokenization of metadata values for the inverted index.

/// Stopwords excluded from keyword indexing. Small and era-appropriate;
/// disable with [`tokenize_with`]'s `keep_stopwords`.
pub const STOPWORDS: &[&str] =
    &["a", "an", "and", "are", "as", "at", "be", "by", "for", "in", "is", "it", "of", "on",
      "or", "the", "to", "with"];

/// Splits `text` into lowercase alphanumeric tokens, dropping stopwords.
///
/// ```
/// assert_eq!(
///     up2p_store::tokenize("The Observer pattern, by GoF!"),
///     vec!["observer", "pattern", "gof"]
/// );
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    tokenize_with(text, false)
}

/// Tokenizes with explicit stopword control.
pub fn tokenize_with(text: &str, keep_stopwords: bool) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
        .filter(|t| keep_stopwords || !STOPWORDS.contains(&t.as_str()))
        .collect()
}

/// Normalizes a value for exact-match indexing (lowercased, whitespace
/// collapsed).
pub fn normalize(value: &str) -> String {
    value.split_whitespace().collect::<Vec<_>>().join(" ").to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_lowercases() {
        assert_eq!(tokenize("Abstract-Factory (GoF)"), vec!["abstract", "factory", "gof"]);
    }

    #[test]
    fn drops_stopwords_by_default() {
        assert_eq!(tokenize("the cat and the hat"), vec!["cat", "hat"]);
        assert_eq!(
            tokenize_with("the cat", true),
            vec!["the", "cat"]
        );
    }

    #[test]
    fn numbers_are_tokens() {
        assert_eq!(tokenize("track 7 of 12"), vec!["track", "7", "12"]);
    }

    #[test]
    fn empty_and_punct_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("... --- !!!").is_empty());
    }

    #[test]
    fn normalize_collapses_space_and_case() {
        assert_eq!(normalize("  Abstract   Factory "), "abstract factory");
    }

    #[test]
    fn unicode_tokens_survive() {
        assert_eq!(tokenize("Queensrÿche déjà-vu"), vec!["queensrÿche", "déjà", "vu"]);
    }
}
