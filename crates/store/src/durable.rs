//! The durable repository: WAL-ahead mutation, segment compaction and
//! crash recovery layered over [`Repository`].
//!
//! Every publish/remove is encoded as a [`WalRecord`] and appended to
//! the live WAL *before* the in-memory repository and index mutate, so
//! an acknowledged operation survives any crash (under
//! [`SyncPolicy::EveryRecord`]; batched policies trade the unsynced tail
//! for throughput but still recover to a clean record boundary).
//! Compaction folds the live object set into one immutable, sorted,
//! pre-tokenized segment file and starts a fresh WAL; a manifest written
//! via temp-file + rename is the single commit point, so a crash at any
//! byte of compaction leaves the previous generation fully intact.
//!
//! Recovery ([`DurableRepository::recover`], also reachable through
//! [`Repository::load_dir`]'s manifest fast path) loads the segment and
//! replays the WAL tail. Both carry [`PreparedField`]s — the normalized
//! values and keyword tokens computed once at publish — so rebuilding
//! the posting lists never runs the tokenizer, which is what makes
//! restart cheap for the churn-heavy peers the paper's availability
//! argument cares about (experiment E12 quantifies the speedup).

use crate::digest::ResourceId;
use crate::error::StoreError;
use crate::fsio::{RealFs, StoreFs};
use crate::index::prepare_fields;
use crate::repository::{Repository, StoredObject};
use crate::segment::{load_segment, read_manifest, write_manifest, write_segment, Manifest};
use crate::wal::{replay, SyncPolicy, Wal, WalRecord};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use up2p_xml::Document;

/// Tuning knobs for a [`DurableRepository`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// WAL fsync policy; [`SyncPolicy::EveryRecord`] (the default) makes
    /// every acknowledged operation crash-durable.
    pub sync: SyncPolicy,
    /// Compact automatically once the live WAL holds this many records;
    /// `None` (the default) leaves compaction to explicit
    /// [`compact`](DurableRepository::compact) calls.
    pub compact_every: Option<usize>,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions { sync: SyncPolicy::EveryRecord, compact_every: None }
    }
}

/// What recovery found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation named by the committed manifest.
    pub generation: u64,
    /// Objects loaded from the segment file (0 when none is committed).
    pub segment_objects: usize,
    /// Valid records replayed from the WAL tail.
    pub wal_records: usize,
    /// Bytes of torn/corrupt WAL tail discarded past the valid prefix.
    pub torn_bytes: u64,
}

/// A [`Repository`] whose mutations are write-ahead logged and whose
/// state compacts into segment files (see the module docs).
///
/// ```
/// use up2p_store::{DurableOptions, DurableRepository, Query};
/// let dir = std::env::temp_dir().join(format!("up2p-durable-doc-{}", std::process::id()));
/// let _ = std::fs::remove_dir_all(&dir);
/// let mut store = DurableRepository::open(&dir, DurableOptions::default())?;
/// let id = store.publish_xml(
///     "patterns",
///     "<pattern><name>Observer</name></pattern>",
///     &["pattern/name".into()],
/// )?;
/// drop(store); // crash or shutdown —
/// let reopened = DurableRepository::open(&dir, DurableOptions::default())?;
/// assert!(reopened.repository().contains(&id));
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok::<(), up2p_store::StoreError>(())
/// ```
#[derive(Debug)]
pub struct DurableRepository {
    repo: Repository,
    dir: PathBuf,
    fs: Box<dyn StoreFs>,
    wal: Wal,
    manifest: Manifest,
    wal_records: usize,
    opts: DurableOptions,
}

impl DurableRepository {
    /// Opens (or initializes) a durable store in `dir` on the real
    /// filesystem: recovers from the committed manifest when one exists,
    /// otherwise creates generation 0 (empty WAL, no segment).
    ///
    /// # Errors
    ///
    /// I/O failures and [`StoreError::Corrupt`] when committed files are
    /// damaged beyond the recoverable torn-tail case.
    pub fn open(dir: &Path, opts: DurableOptions) -> Result<DurableRepository, StoreError> {
        Self::open_with_fs(Box::new(RealFs), dir, opts)
    }

    /// [`open`](Self::open) with an explicit filesystem — the seam the
    /// crash-injection suites use to run the same store over
    /// [`FailFs`](crate::FailFs).
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open), plus whatever failures `fs` injects.
    pub fn open_with_fs(
        fs: Box<dyn StoreFs>,
        dir: &Path,
        opts: DurableOptions,
    ) -> Result<DurableRepository, StoreError> {
        std::fs::create_dir_all(dir)?;
        match read_manifest(dir)? {
            Some(manifest) => {
                let (repo, valid_len, report) = replay_state(dir, &manifest)?;
                let wal =
                    Wal::open_end(&*fs, &dir.join(&manifest.wal), valid_len, opts.sync)?;
                Ok(DurableRepository {
                    repo,
                    dir: dir.to_path_buf(),
                    fs,
                    wal,
                    manifest,
                    wal_records: report.wal_records,
                    opts,
                })
            }
            None => {
                let manifest =
                    Manifest { generation: 0, segment: None, wal: Manifest::wal_name(0) };
                let wal = Wal::create(&*fs, &dir.join(&manifest.wal), opts.sync)?;
                write_manifest(&*fs, dir, &manifest)?;
                Ok(DurableRepository {
                    repo: Repository::new(),
                    dir: dir.to_path_buf(),
                    fs,
                    wal,
                    manifest,
                    wal_records: 0,
                    opts,
                })
            }
        }
    }

    /// Read-only recovery: rebuilds a [`Repository`] from the manifest's
    /// segment + WAL tail without taking over the directory (no
    /// truncation, no new files). This is [`Repository::load_dir`]'s
    /// fast path.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when `dir` has no manifest or a committed
    /// file is damaged; I/O and XML errors from reading object bodies.
    pub fn recover(dir: &Path) -> Result<(Repository, RecoveryReport), StoreError> {
        let manifest = read_manifest(dir)?.ok_or_else(|| {
            StoreError::Corrupt(format!("{}: no durable-store manifest", dir.display()))
        })?;
        let (repo, _, report) = replay_state(dir, &manifest)?;
        Ok((repo, report))
    }

    /// Writes a plain [`Repository`]'s current state as a fresh durable
    /// generation in `dir`: one compacted segment, an empty WAL and the
    /// committing manifest. This is how the servent's `save_state`
    /// produces a directory that [`Repository::load_dir`] recovers
    /// without re-tokenizing.
    ///
    /// # Errors
    ///
    /// I/O failures from writing the generation's files.
    pub fn save_snapshot(repo: &Repository, dir: &Path) -> Result<(), StoreError> {
        std::fs::create_dir_all(dir)?;
        let generation = match read_manifest(dir) {
            Ok(Some(m)) => m.generation + 1,
            _ => 0,
        };
        let fs = RealFs;
        let records: Vec<WalRecord> = repo.iter().map(publish_record).collect();
        let seg_name = Manifest::segment_name(generation);
        write_segment(&fs, &dir.join(&seg_name), records.len() as u32, records.iter())?;
        let wal_name = Manifest::wal_name(generation);
        drop(Wal::create(&fs, &dir.join(&wal_name), SyncPolicy::EveryRecord)?);
        let manifest = Manifest { generation, segment: Some(seg_name), wal: wal_name };
        write_manifest(&fs, dir, &manifest)?;
        Ok(())
    }

    /// Durably publishes an object from XML text: the WAL record is
    /// written (and synced, per policy) before the repository mutates.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidXml`] when the text does not parse; I/O
    /// failures from the WAL append (on which the in-memory state is
    /// left untouched).
    pub fn publish_xml(
        &mut self,
        community: &str,
        xml: &str,
        index_paths: &[String],
    ) -> Result<ResourceId, StoreError> {
        let doc = Document::parse(xml)?;
        self.publish_doc(community, doc, index_paths)
    }

    /// Durably publishes a parsed document, extracting the given field
    /// paths.
    ///
    /// # Errors
    ///
    /// I/O failures from the WAL append.
    pub fn publish_doc(
        &mut self,
        community: &str,
        doc: Document,
        index_paths: &[String],
    ) -> Result<ResourceId, StoreError> {
        let fields = Repository::extract_fields(&doc, index_paths);
        self.publish_fields(community, doc, fields)
    }

    /// Durably publishes with pre-extracted fields. Tokenization happens
    /// exactly once, here; the prepared form rides the WAL record so
    /// recovery replays it for free.
    ///
    /// # Errors
    ///
    /// I/O failures from the WAL append.
    pub fn publish_fields(
        &mut self,
        community: &str,
        doc: Document,
        fields: impl Into<std::sync::Arc<[(String, String)]>>,
    ) -> Result<ResourceId, StoreError> {
        let fields = fields.into();
        let xml = doc.to_xml_string();
        let prep = prepare_fields(&fields);
        let rec = WalRecord::Publish {
            community: community.to_string(),
            xml,
            fields: fields.to_vec(),
            prep: prep.clone(),
        };
        self.wal.append(&rec)?;
        self.wal_records += 1;
        let id = self.repo.insert_prepared(community, doc, fields, &prep);
        self.maybe_compact()?;
        Ok(id)
    }

    /// Durably removes an object. A no-op (and no WAL record) when the
    /// id is not stored.
    ///
    /// # Errors
    ///
    /// I/O failures from the WAL append (on which the object stays).
    pub fn remove(&mut self, id: &ResourceId) -> Result<Option<StoredObject>, StoreError> {
        if !self.repo.contains(id) {
            return Ok(None);
        }
        self.wal.append(&WalRecord::Remove { id: id.to_string() })?;
        self.wal_records += 1;
        let removed = self.repo.remove(id);
        self.maybe_compact()?;
        Ok(removed)
    }

    /// Forces every appended WAL record to stable storage — the explicit
    /// durability barrier for [`SyncPolicy::EveryN`]/[`SyncPolicy::Manual`].
    ///
    /// # Errors
    ///
    /// I/O failures from the fsync.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync().map_err(StoreError::Io)
    }

    /// Folds the live object set into the next segment generation and
    /// starts a fresh WAL. The manifest rename at the end is the commit
    /// point: a crash anywhere before it leaves the previous generation
    /// authoritative, and the partially written next-generation files are
    /// simply ignored by recovery. Retired files are garbage-collected
    /// best-effort after the commit.
    ///
    /// # Errors
    ///
    /// I/O failures; on error the in-memory store still points at the
    /// old (intact) generation.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let generation = self.manifest.generation + 1;
        let records: Vec<WalRecord> = self.repo.iter().map(publish_record).collect();
        let seg_name = Manifest::segment_name(generation);
        write_segment(&*self.fs, &self.dir.join(&seg_name), records.len() as u32, records.iter())?;
        let wal_name = Manifest::wal_name(generation);
        let new_wal = Wal::create(&*self.fs, &self.dir.join(&wal_name), self.opts.sync)?;
        let manifest = Manifest { generation, segment: Some(seg_name), wal: wal_name };
        write_manifest(&*self.fs, &self.dir, &manifest)?;
        // committed: swap in the new generation, then GC the old
        let old = std::mem::replace(&mut self.manifest, manifest);
        self.wal = new_wal;
        self.wal_records = 0;
        let _ = self.fs.remove_file(&self.dir.join(&old.wal));
        if let Some(seg) = &old.segment {
            let _ = self.fs.remove_file(&self.dir.join(seg));
        }
        Ok(())
    }

    /// The in-memory repository (all reads go straight here; mutation
    /// must go through the durable methods so the WAL stays ahead).
    pub fn repository(&self) -> &Repository {
        &self.repo
    }

    /// Current committed generation.
    pub fn generation(&self) -> u64 {
        self.manifest.generation
    }

    /// Records appended to the live WAL since the last compaction.
    pub fn wal_records(&self) -> usize {
        self.wal_records
    }

    fn maybe_compact(&mut self) -> Result<(), StoreError> {
        if self.opts.compact_every.is_some_and(|n| self.wal_records >= n.max(1)) {
            self.compact()?;
        }
        Ok(())
    }
}

/// Encodes a stored object as the publish-shaped record compaction and
/// snapshots persist (re-tokenizing once; recovery then never does).
fn publish_record(obj: &StoredObject) -> WalRecord {
    WalRecord::Publish {
        community: obj.community.clone(),
        xml: obj.xml.clone(),
        fields: obj.fields.to_vec(),
        prep: prepare_fields(&obj.fields),
    }
}

/// Rebuilds the repository a manifest describes: segment first, then the
/// WAL tail's valid prefix, last-operation-per-id wins. Returns the WAL's
/// valid byte length (where an appender may resume) alongside the report.
fn replay_state(
    dir: &Path,
    manifest: &Manifest,
) -> Result<(Repository, u64, RecoveryReport), StoreError> {
    let segment_records = match &manifest.segment {
        Some(name) => load_segment(&dir.join(name))?,
        None => Vec::new(),
    };
    let segment_objects = segment_records.len();
    let wal_bytes = match std::fs::read(dir.join(&manifest.wal)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(StoreError::Io(e)),
    };
    let tail = replay(&wal_bytes);
    let mut live: BTreeMap<ResourceId, WalRecord> = BTreeMap::new();
    for rec in segment_records.into_iter().chain(tail.records.iter().cloned()) {
        match rec {
            WalRecord::Publish { ref community, ref xml, .. } => {
                let id = ResourceId::for_object(community, xml);
                live.insert(id, rec);
            }
            WalRecord::Remove { id } => {
                live.remove(id.as_str());
            }
        }
    }
    let mut items = Vec::with_capacity(live.len());
    for rec in live.into_values() {
        let WalRecord::Publish { community, xml, fields, prep } = rec else {
            continue; // unreachable: removes never enter the map
        };
        let doc = Document::parse(&xml)?;
        items.push((community, doc, fields, prep));
    }
    let mut repo = Repository::new();
    repo.insert_prepared_batch(items);
    let report = RecoveryReport {
        generation: manifest.generation,
        segment_objects,
        wal_records: tail.records.len(),
        torn_bytes: tail.torn_bytes,
    };
    Ok((repo, tail.valid_len, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("up2p-durable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn track(n: u32) -> String {
        format!("<track><title>Song number {n}</title><artist>Band {}</artist></track>", n % 7)
    }

    fn paths() -> Vec<String> {
        vec!["track/title".into(), "track/artist".into()]
    }

    #[test]
    fn publish_remove_survive_reopen() {
        let d = dir("reopen");
        let mut ids = Vec::new();
        {
            let mut store = DurableRepository::open(&d, DurableOptions::default()).unwrap();
            for n in 0..10 {
                ids.push(store.publish_xml("tracks", &track(n), &paths()).unwrap());
            }
            store.remove(&ids[3]).unwrap();
            assert!(store.remove(&ids[3]).unwrap().is_none());
        }
        let store = DurableRepository::open(&d, DurableOptions::default()).unwrap();
        assert_eq!(store.repository().len(), 9);
        assert!(!store.repository().contains(&ids[3]));
        assert!(store.repository().contains(&ids[9]));
        let hits = store.repository().search(Some("tracks"), &Query::any_keyword("number"));
        assert_eq!(hits.len(), 9);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn compaction_preserves_state_and_drops_old_generation() {
        let d = dir("compact");
        let mut store = DurableRepository::open(&d, DurableOptions::default()).unwrap();
        let mut ids = Vec::new();
        for n in 0..20 {
            ids.push(store.publish_xml("tracks", &track(n), &paths()).unwrap());
        }
        store.remove(&ids[0]).unwrap();
        assert_eq!(store.generation(), 0);
        store.compact().unwrap();
        assert_eq!(store.generation(), 1);
        assert_eq!(store.wal_records(), 0);
        // the retired generation's files are gone
        assert!(!d.join(Manifest::wal_name(0)).exists());
        // post-compaction appends land in the new WAL and reopen cleanly
        store.publish_xml("tracks", &track(99), &paths()).unwrap();
        drop(store);
        let (repo, report) = DurableRepository::recover(&d).unwrap();
        assert_eq!(report.generation, 1);
        assert_eq!(report.segment_objects, 19);
        assert_eq!(report.wal_records, 1);
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(repo.len(), 20);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn auto_compaction_triggers_on_threshold() {
        let d = dir("auto");
        let opts =
            DurableOptions { sync: SyncPolicy::Manual, compact_every: Some(5) };
        let mut store = DurableRepository::open(&d, opts).unwrap();
        for n in 0..12 {
            store.publish_xml("tracks", &track(n), &paths()).unwrap();
        }
        assert_eq!(store.generation(), 2, "12 records, threshold 5 → 2 compactions");
        assert!(store.wal_records() < 5);
        drop(store);
        let (repo, _) = DurableRepository::recover(&d).unwrap();
        assert_eq!(repo.len(), 12);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn snapshot_of_plain_repository_recovers() {
        let d = dir("snapshot");
        let mut repo = Repository::new();
        for n in 0..6 {
            repo.insert_xml("tracks", &track(n), &paths()).unwrap();
        }
        DurableRepository::save_snapshot(&repo, &d).unwrap();
        let (recovered, report) = DurableRepository::recover(&d).unwrap();
        assert_eq!(report.segment_objects, 6);
        assert_eq!(recovered.len(), 6);
        // snapshotting again bumps the generation
        DurableRepository::save_snapshot(&repo, &d).unwrap();
        let (_, report) = DurableRepository::recover(&d).unwrap();
        assert_eq!(report.generation, 1);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn recover_rejects_non_durable_dir() {
        let d = dir("nonstore");
        std::fs::create_dir_all(&d).unwrap();
        assert!(matches!(DurableRepository::recover(&d), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn republish_same_object_stays_idempotent_through_recovery() {
        let d = dir("idem");
        let mut store = DurableRepository::open(&d, DurableOptions::default()).unwrap();
        let a = store.publish_xml("tracks", &track(1), &paths()).unwrap();
        let b = store.publish_xml("tracks", &track(1), &paths()).unwrap();
        assert_eq!(a, b);
        assert_eq!(store.repository().len(), 1);
        drop(store);
        let (repo, report) = DurableRepository::recover(&d).unwrap();
        assert_eq!(repo.len(), 1);
        assert_eq!(report.wal_records, 2);
        std::fs::remove_dir_all(&d).unwrap();
    }
}
