//! Structured metadata queries.
//!
//! Three query surfaces share this AST (the paper used CMIP-formatted
//! queries and listed "richer languages such as the XML Query language" as
//! future work):
//!
//! * programmatic construction ([`Query`] builders),
//! * the CMIP/LDAP-style filter text syntax ([`crate::parse_cmip`]),
//! * XPath queries evaluated per-object ([`crate::Repository::xpath_search`]).

use crate::tokenizer::normalize;
use std::fmt;

/// How a field value is compared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValuePattern {
    /// Case-insensitive equality on the normalized value.
    Exact(String),
    /// Value starts with the fragment (`observ*`).
    Prefix(String),
    /// Value ends with the fragment (`*pattern`).
    Suffix(String),
    /// Value contains the fragment (`*serve*`).
    Contains(String),
    /// Field merely has to be present with any value (`*`).
    Present,
}

impl ValuePattern {
    /// Compiles a pattern from a CMIP-style value with optional leading /
    /// trailing `*` wildcards.
    pub fn from_wildcard(raw: &str) -> ValuePattern {
        match (raw.starts_with('*'), raw.ends_with('*') && raw.len() > 1) {
            _ if raw == "*" => ValuePattern::Present,
            (true, true) => ValuePattern::Contains(normalize(&raw[1..raw.len() - 1])),
            (true, false) => ValuePattern::Suffix(normalize(&raw[1..])),
            (false, true) => ValuePattern::Prefix(normalize(&raw[..raw.len() - 1])),
            (false, false) => ValuePattern::Exact(normalize(raw)),
        }
    }

    /// Does the (raw) value match? Values already in normalized form are
    /// compared in place; only denormalized input pays an allocation.
    pub fn matches(&self, value: &str) -> bool {
        if matches!(self, ValuePattern::Present) || crate::tokenizer::is_normalized(value) {
            self.matches_normalized(value)
        } else {
            self.matches_normalized(&normalize(value))
        }
    }

    /// Does an already-[`normalize`]d value match? This is the zero-
    /// allocation comparison the index scan fallback uses against its
    /// stored normalized values.
    pub fn matches_normalized(&self, v: &str) -> bool {
        match self {
            ValuePattern::Exact(p) => v == *p,
            ValuePattern::Prefix(p) => v.starts_with(p.as_str()),
            ValuePattern::Suffix(p) => v.ends_with(p.as_str()),
            ValuePattern::Contains(p) => v.contains(p.as_str()),
            ValuePattern::Present => true,
        }
    }
}

impl fmt::Display for ValuePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValuePattern::Exact(p) => write!(f, "{p}"),
            ValuePattern::Prefix(p) => write!(f, "{p}*"),
            ValuePattern::Suffix(p) => write!(f, "*{p}"),
            ValuePattern::Contains(p) => write!(f, "*{p}*"),
            ValuePattern::Present => write!(f, "*"),
        }
    }
}

/// A metadata query over indexed fields.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Matches every object.
    All,
    /// Conjunction.
    And(Vec<Query>),
    /// Disjunction.
    Or(Vec<Query>),
    /// Negation.
    Not(Box<Query>),
    /// Field comparison. `field` is the slash path from the root element
    /// (`pattern/name`); a bare leaf name (`name`) matches any field whose
    /// path ends with `/name`.
    Match {
        /// Field path or leaf name.
        field: String,
        /// Comparison pattern.
        pattern: ValuePattern,
    },
    /// Token search: does any indexed token of the field (or of *any*
    /// field when `field` is `None`) equal `word`? This is the fast path
    /// the inverted index accelerates.
    Keyword {
        /// Field restriction, or `None` for all fields.
        field: Option<String>,
        /// Single lowercase token.
        word: String,
    },
}

impl Query {
    /// `field = value` (exact, case-insensitive).
    pub fn eq(field: impl Into<String>, value: &str) -> Query {
        Query::Match { field: field.into(), pattern: ValuePattern::Exact(normalize(value)) }
    }

    /// `field` contains the fragment.
    pub fn contains(field: impl Into<String>, fragment: &str) -> Query {
        Query::Match { field: field.into(), pattern: ValuePattern::Contains(normalize(fragment)) }
    }

    /// Keyword in a specific field.
    pub fn keyword(field: impl Into<String>, word: &str) -> Query {
        Query::Keyword { field: Some(field.into()), word: word.to_lowercase() }
    }

    /// Keyword in any field — the "search box" query.
    pub fn any_keyword(word: &str) -> Query {
        Query::Keyword { field: None, word: word.to_lowercase() }
    }

    /// Conjunction helper.
    pub fn and(queries: impl IntoIterator<Item = Query>) -> Query {
        Query::And(queries.into_iter().collect())
    }

    /// Disjunction helper.
    pub fn or(queries: impl IntoIterator<Item = Query>) -> Query {
        Query::Or(queries.into_iter().collect())
    }

    /// Evaluates the query directly against one object's extracted
    /// `(field path, value)` pairs — the reference semantics the index
    /// must agree with (property-tested).
    pub fn matches_fields(&self, fields: &[(String, String)]) -> bool {
        match self {
            Query::All => true,
            Query::And(qs) => qs.iter().all(|q| q.matches_fields(fields)),
            Query::Or(qs) => qs.iter().any(|q| q.matches_fields(fields)),
            Query::Not(q) => !q.matches_fields(fields),
            Query::Match { field, pattern } => fields
                .iter()
                .filter(|(path, _)| field_matches(path, field))
                .any(|(_, value)| pattern.matches(value)),
            Query::Keyword { field, word } => fields
                .iter()
                .filter(|(path, _)| {
                    field.as_deref().is_none_or(|f| field_matches(path, f))
                })
                .any(|(_, value)| crate::tokenizer::tokenize(value).iter().any(|t| t == word)),
        }
    }
}

/// Does a stored field `path` (e.g. `pattern/name`) satisfy a query field
/// reference? A reference matches its own full path and any path for which
/// it is a `/`-aligned suffix: `name` and `b/name` both match `a/b/name`.
/// Allocation-free — this runs once per stored field on every scan.
pub fn field_matches(path: &str, reference: &str) -> bool {
    path.len() >= reference.len()
        && path.ends_with(reference)
        && (path.len() == reference.len()
            || path.as_bytes()[path.len() - reference.len() - 1] == b'/')
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::All => write!(f, "(*)"),
            Query::And(qs) => {
                write!(f, "(&")?;
                for q in qs {
                    write!(f, "{q}")?;
                }
                write!(f, ")")
            }
            Query::Or(qs) => {
                write!(f, "(|")?;
                for q in qs {
                    write!(f, "{q}")?;
                }
                write!(f, ")")
            }
            Query::Not(q) => write!(f, "(!{q})"),
            Query::Match { field, pattern } => write!(f, "({field}={pattern})"),
            Query::Keyword { field: Some(fl), word } => write!(f, "({fl}~={word})"),
            Query::Keyword { field: None, word } => write!(f, "(~={word})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> Vec<(String, String)> {
        vec![
            ("pattern/name".to_string(), "Abstract Factory".to_string()),
            ("pattern/category".to_string(), "creational".to_string()),
            ("pattern/intent".to_string(), "Provide an interface for creating families".to_string()),
        ]
    }

    #[test]
    fn exact_match_is_case_insensitive() {
        assert!(Query::eq("pattern/category", "Creational").matches_fields(&fields()));
        assert!(!Query::eq("pattern/category", "behavioral").matches_fields(&fields()));
    }

    #[test]
    fn leaf_name_reference() {
        assert!(Query::eq("category", "creational").matches_fields(&fields()));
        assert!(Query::eq("name", "abstract factory").matches_fields(&fields()));
    }

    #[test]
    fn wildcards() {
        assert!(ValuePattern::from_wildcard("abstract*").matches("Abstract Factory"));
        assert!(ValuePattern::from_wildcard("*factory").matches("Abstract Factory"));
        assert!(ValuePattern::from_wildcard("*act*").matches("Abstract Factory"));
        assert!(ValuePattern::from_wildcard("*").matches("anything"));
        assert!(!ValuePattern::from_wildcard("factory*").matches("Abstract Factory"));
    }

    #[test]
    fn keyword_queries_tokenize() {
        assert!(Query::any_keyword("families").matches_fields(&fields()));
        assert!(Query::keyword("intent", "interface").matches_fields(&fields()));
        assert!(!Query::keyword("name", "interface").matches_fields(&fields()));
        // stopwords never match (they are not indexed)
        assert!(!Query::any_keyword("an").matches_fields(&fields()));
    }

    #[test]
    fn boolean_combinators() {
        let q = Query::and([
            Query::eq("category", "creational"),
            Query::any_keyword("factory"),
        ]);
        assert!(q.matches_fields(&fields()));
        let q2 = Query::or([Query::eq("category", "behavioral"), Query::any_keyword("nope")]);
        assert!(!q2.matches_fields(&fields()));
        let q3 = Query::Not(Box::new(Query::eq("category", "behavioral")));
        assert!(q3.matches_fields(&fields()));
    }

    #[test]
    fn display_round_trips_through_cmip_shapes() {
        let q = Query::and([
            Query::Match {
                field: "name".into(),
                pattern: ValuePattern::from_wildcard("observ*"),
            },
            Query::Not(Box::new(Query::eq("category", "structural"))),
        ]);
        assert_eq!(q.to_string(), "(&(name=observ*)(!(category=structural)))");
    }

    #[test]
    fn all_matches_everything() {
        assert!(Query::All.matches_fields(&[]));
    }

    #[test]
    fn field_reference_suffix_semantics() {
        // exact path and bare leaf
        assert!(field_matches("a/b/c", "a/b/c"));
        assert!(field_matches("a/b/c", "c"));
        // a multi-segment reference matches as a /-aligned suffix
        assert!(field_matches("a/b/c", "b/c"));
        // but never mid-segment
        assert!(!field_matches("a/xb/c", "b/c"));
        assert!(!field_matches("a/b/c", "b"));
        assert!(!field_matches("a/b/cc", "c"));
        // a longer reference than the path never matches
        assert!(!field_matches("b/c", "a/b/c"));
        // degenerate references keep the historical semantics
        assert!(field_matches("a/", ""));
        assert!(!field_matches("a", ""));
    }

    #[test]
    fn matches_normalized_agrees_with_matches() {
        let patterns = [
            ValuePattern::Exact("abstract factory".into()),
            ValuePattern::Prefix("abstract".into()),
            ValuePattern::Suffix("factory".into()),
            ValuePattern::Contains("act".into()),
            ValuePattern::Present,
        ];
        for p in &patterns {
            for value in ["Abstract   Factory", "abstract factory", "other"] {
                assert_eq!(
                    p.matches(value),
                    p.matches_normalized(&crate::tokenizer::normalize(value)),
                    "{p} on {value:?}"
                );
            }
        }
    }
}
