//! CMIP/LDAP-style filter text syntax.
//!
//! The paper's servent formatted database transactions "as CMIP queries"
//! (§IV-B). We reproduce the filter surface as the familiar parenthesized
//! prefix syntax:
//!
//! ```text
//! (name=observer)                 exact (case-insensitive)
//! (name=observ*)                  prefix; *x, *x* work too; (name=*) presence
//! (intent~=notify)                keyword (token) match
//! (~=gof)                         keyword in any field
//! (&(a=1)(b=2))                   and
//! (|(a=1)(b=2))                   or
//! (!(a=1))                        not
//! ```

use crate::error::StoreError;
use crate::query::{Query, ValuePattern};

/// Parses a CMIP-style filter into a [`Query`].
///
/// # Errors
///
/// Returns [`StoreError::InvalidQuery`] describing the first syntax error.
pub fn parse_cmip(input: &str) -> Result<Query, StoreError> {
    let chars: Vec<char> = input.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    p.skip_ws();
    let q = p.parse_filter()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(StoreError::InvalidQuery(format!(
            "trailing input after filter at offset {}",
            p.pos
        )));
    }
    Ok(q)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), StoreError> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(StoreError::InvalidQuery(format!("expected {c:?}, got {got:?}"))),
        }
    }

    fn parse_filter(&mut self) -> Result<Query, StoreError> {
        self.expect('(')?;
        let q = match self.peek() {
            Some('&') => {
                self.bump();
                Query::And(self.parse_filter_list()?)
            }
            Some('|') => {
                self.bump();
                Query::Or(self.parse_filter_list()?)
            }
            Some('!') => {
                self.bump();
                self.skip_ws();
                let inner = self.parse_filter()?;
                Query::Not(Box::new(inner))
            }
            Some('*') => {
                self.bump();
                Query::All
            }
            Some('~') => {
                self.bump();
                self.expect('=')?;
                let word = self.parse_value()?;
                Query::Keyword { field: None, word: word.trim().to_lowercase() }
            }
            _ => self.parse_comparison()?,
        };
        self.skip_ws();
        self.expect(')')?;
        Ok(q)
    }

    fn parse_filter_list(&mut self) -> Result<Vec<Query>, StoreError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some('(') {
                out.push(self.parse_filter()?);
            } else {
                break;
            }
        }
        if out.is_empty() {
            return Err(StoreError::InvalidQuery("empty filter list".to_string()));
        }
        Ok(out)
    }

    fn parse_comparison(&mut self) -> Result<Query, StoreError> {
        let mut field = String::new();
        loop {
            match self.peek() {
                Some('=') | Some('~') => break,
                Some(')') | None => {
                    return Err(StoreError::InvalidQuery(
                        "comparison without '='".to_string(),
                    ))
                }
                Some(c) => {
                    field.push(c);
                    self.pos += 1;
                }
            }
        }
        let field = field.trim().to_string();
        if field.is_empty() {
            return Err(StoreError::InvalidQuery("empty field name".to_string()));
        }
        let keyword = if self.peek() == Some('~') {
            self.bump();
            true
        } else {
            false
        };
        self.expect('=')?;
        let value = self.parse_value()?;
        if keyword {
            Ok(Query::Keyword { field: Some(field), word: value.trim().to_lowercase() })
        } else {
            Ok(Query::Match {
                field,
                pattern: ValuePattern::from_wildcard(value.trim()),
            })
        }
    }

    fn parse_value(&mut self) -> Result<String, StoreError> {
        let mut value = String::new();
        loop {
            match self.peek() {
                Some(')') => break,
                None => {
                    return Err(StoreError::InvalidQuery(
                        "unterminated filter value".to_string(),
                    ))
                }
                Some('\\') => {
                    // escape for literal parens/backslash in values
                    self.bump();
                    match self.bump() {
                        Some(c) => value.push(c),
                        None => {
                            return Err(StoreError::InvalidQuery(
                                "dangling escape".to_string(),
                            ))
                        }
                    }
                }
                Some(c) => {
                    value.push(c);
                    self.pos += 1;
                }
            }
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_comparison() {
        let q = parse_cmip("(name=observer)").unwrap();
        assert_eq!(q, Query::eq("name", "observer"));
    }

    #[test]
    fn parses_wildcards() {
        assert_eq!(
            parse_cmip("(name=observ*)").unwrap(),
            Query::Match { field: "name".into(), pattern: ValuePattern::Prefix("observ".into()) }
        );
        assert_eq!(
            parse_cmip("(keywords=*gof*)").unwrap(),
            Query::Match {
                field: "keywords".into(),
                pattern: ValuePattern::Contains("gof".into())
            }
        );
        assert_eq!(
            parse_cmip("(schema=*)").unwrap(),
            Query::Match { field: "schema".into(), pattern: ValuePattern::Present }
        );
    }

    #[test]
    fn parses_boolean_structure() {
        let q = parse_cmip("(&(category=music)(|(artist=Miles*)(artist=*Davis)))").unwrap();
        match q {
            Query::And(items) => {
                assert_eq!(items.len(), 2);
                assert!(matches!(items[1], Query::Or(ref o) if o.len() == 2));
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn parses_not_and_keyword() {
        let q = parse_cmip("(!(category=structural))").unwrap();
        assert!(matches!(q, Query::Not(_)));
        let q = parse_cmip("(intent~=Notify)").unwrap();
        assert_eq!(q, Query::keyword("intent", "notify"));
        let q = parse_cmip("(~=GoF)").unwrap();
        assert_eq!(q, Query::any_keyword("gof"));
    }

    #[test]
    fn whitespace_tolerated() {
        let q = parse_cmip("  (& (a=1) (b=2) )  ").unwrap();
        assert!(matches!(q, Query::And(v) if v.len() == 2));
    }

    #[test]
    fn escapes_in_values() {
        let q = parse_cmip(r"(name=a\(b\)c)").unwrap();
        assert_eq!(q, Query::eq("name", "a(b)c"));
    }

    #[test]
    fn error_cases() {
        assert!(parse_cmip("").is_err());
        assert!(parse_cmip("(name=)").is_ok(), "empty value means exact-empty");
        assert!(parse_cmip("(name)").is_err());
        assert!(parse_cmip("(&)").is_err());
        assert!(parse_cmip("(a=1))").is_err());
        assert!(parse_cmip("(a=1").is_err());
        assert!(parse_cmip("(=x)").is_err());
    }

    #[test]
    fn display_and_reparse_agree() {
        for src in [
            "(name=observ*)",
            "(&(a=1)(b=2))",
            "(|(x=*y*)(!(z=w)))",
            "(~=gof)",
            "(intent~=notify)",
        ] {
            let q = parse_cmip(src).unwrap();
            let reparsed = parse_cmip(&q.to_string()).unwrap();
            assert_eq!(q, reparsed, "{src}");
        }
    }
}
