//! The local object repository — the "database based on Magenta" of the
//! paper's servent, reimplemented as a content-addressed store with the
//! metadata index attached.

use crate::digest::ResourceId;
use crate::error::StoreError;
use crate::index::{IndexStats, MetadataIndex, PreparedField};
use crate::query::Query;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::Arc;
use up2p_xml::{Document, ElementBuilder, XPath};

/// A stored shared object: its community, canonical XML, parsed document
/// and the metadata fields that were extracted for indexing.
#[derive(Debug, Clone)]
pub struct StoredObject {
    /// Content-derived identifier.
    pub id: ResourceId,
    /// Community the object belongs to.
    pub community: String,
    /// Canonical (compact) XML text.
    pub xml: String,
    /// Extracted `(field path, value)` metadata — the same allocation the
    /// metadata index (and, on the publish path, the network record)
    /// holds.
    pub fields: Arc<[(String, String)]>,
    doc: Document,
}

impl StoredObject {
    /// The parsed object document.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// Value of the first field whose path ends in `leaf`, used as a
    /// display title.
    pub fn field(&self, leaf: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(p, _)| crate::query::field_matches(p, leaf))
            .map(|(_, v)| v.as_str())
    }
}

/// How [`Repository::load_dir_report`] loaded a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// `true` when the durable-store manifest fast path ran (segment +
    /// WAL replay, no re-tokenization); `false` for the legacy
    /// XML-per-object scan.
    pub from_manifest: bool,
    /// Objects loaded.
    pub objects: usize,
    /// Recovery detail when the fast path ran.
    pub recovery: Option<crate::durable::RecoveryReport>,
}

/// Content-addressed repository of XML objects with metadata search.
///
/// ```
/// use up2p_store::{Repository, Query};
///
/// let mut repo = Repository::new();
/// let id = repo.insert_xml(
///     "patterns",
///     "<pattern><name>Observer</name><category>behavioral</category></pattern>",
///     &["pattern/name".into(), "pattern/category".into()],
/// )?;
/// let hits = repo.search(Some("patterns"), &Query::any_keyword("observer"));
/// assert_eq!(hits[0].id, id);
/// # Ok::<(), up2p_store::StoreError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Repository {
    objects: BTreeMap<ResourceId, StoredObject>,
    by_community: BTreeMap<String, BTreeSet<ResourceId>>,
    index: MetadataIndex,
}

impl Repository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts the values of the given field paths from an object
    /// document. A path `pattern/name` selects every `/pattern/name`
    /// element's text content.
    pub fn extract_fields(doc: &Document, paths: &[String]) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for path in paths {
            let expr = format!("/{}", path.trim_matches('/'));
            let Ok(xp) = XPath::parse(&expr) else { continue };
            let Ok(nodes) = xp.select_nodes(doc, doc.root()) else { continue };
            for n in nodes {
                let value = doc.text_content(n);
                let trimmed = value.trim();
                if !trimmed.is_empty() {
                    out.push((path.clone(), trimmed.to_string()));
                }
            }
        }
        out
    }

    /// Inserts an object from XML text, extracting and indexing the given
    /// field paths. Returns the content-derived id; inserting the same
    /// object twice is idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidXml`] when the text does not parse.
    pub fn insert_xml(
        &mut self,
        community: &str,
        xml: &str,
        index_paths: &[String],
    ) -> Result<ResourceId, StoreError> {
        let doc = Document::parse(xml)?;
        Ok(self.insert_doc(community, doc, index_paths))
    }

    /// Inserts a parsed object document.
    pub fn insert_doc(
        &mut self,
        community: &str,
        doc: Document,
        index_paths: &[String],
    ) -> ResourceId {
        let fields = Self::extract_fields(&doc, index_paths);
        self.insert_with_fields(community, doc, fields)
    }

    /// Inserts with pre-extracted fields (used by the indexer-stylesheet
    /// path, where the community's filter stylesheet chose the fields,
    /// and by the servent's publish path, which shares one `Arc` between
    /// the repository, the index and the published network record).
    pub fn insert_with_fields(
        &mut self,
        community: &str,
        doc: Document,
        fields: impl Into<Arc<[(String, String)]>>,
    ) -> ResourceId {
        let fields = fields.into();
        let xml = doc.to_xml_string();
        let id = ResourceId::for_object(community, &xml);
        self.index.insert_shared(id.clone(), Arc::clone(&fields));
        self.by_community.entry(community.to_string()).or_default().insert(id.clone());
        self.objects.insert(
            id.clone(),
            StoredObject { id: id.clone(), community: community.to_string(), xml, fields, doc },
        );
        id
    }

    /// Inserts with pre-extracted fields *and* their pre-tokenized form
    /// (see [`crate::prepare_fields`]) — the durable-store path, where
    /// tokenization already happened when the WAL record was built and
    /// must not run again.
    pub fn insert_prepared(
        &mut self,
        community: &str,
        doc: Document,
        fields: impl Into<Arc<[(String, String)]>>,
        prep: &[PreparedField],
    ) -> ResourceId {
        let fields = fields.into();
        let xml = doc.to_xml_string();
        let id = ResourceId::for_object(community, &xml);
        self.index.insert_tokenized(id.clone(), Arc::clone(&fields), prep);
        self.by_community.entry(community.to_string()).or_default().insert(id.clone());
        self.objects.insert(
            id.clone(),
            StoredObject { id: id.clone(), community: community.to_string(), xml, fields, doc },
        );
        id
    }

    /// Bulk [`insert_prepared`](Self::insert_prepared) with deferred
    /// posting-list merging ([`MetadataIndex::insert_batch_tokenized`]) —
    /// the segment/WAL recovery load path. Returns ids in input order.
    pub fn insert_prepared_batch<I>(&mut self, items: I) -> Vec<ResourceId>
    where
        I: IntoIterator<Item = (String, Document, Vec<(String, String)>, Vec<PreparedField>)>,
    {
        type Prepared = (ResourceId, Arc<[(String, String)]>, Vec<PreparedField>, String, String, Document);
        let prepared: Vec<Prepared> = items
            .into_iter()
            .map(|(community, doc, fields, prep)| {
                let fields: Arc<[(String, String)]> = fields.into();
                let xml = doc.to_xml_string();
                let id = ResourceId::for_object(&community, &xml);
                (id, fields, prep, community, xml, doc)
            })
            .collect();
        self.index.insert_batch_tokenized(
            prepared
                .iter()
                .map(|(id, fields, prep, _, _, _)| (id.clone(), Arc::clone(fields), prep.clone())),
        );
        let mut ids = Vec::with_capacity(prepared.len());
        for (id, fields, _, community, xml, doc) in prepared {
            ids.push(id.clone());
            self.by_community.entry(community.clone()).or_default().insert(id.clone());
            self.objects
                .insert(id.clone(), StoredObject { id, community, xml, fields, doc });
        }
        ids
    }

    /// Bulk-inserts parsed documents, extracting and indexing the given
    /// field paths. The metadata index defers posting-list merging across
    /// the whole load (see [`MetadataIndex::insert_batch`]), which is the
    /// fast path for loading large corpora. Returns the content-derived
    /// ids in input order.
    pub fn insert_batch<I>(
        &mut self,
        community: &str,
        docs: I,
        index_paths: &[String],
    ) -> Vec<ResourceId>
    where
        I: IntoIterator<Item = Document>,
    {
        type Prepared = (ResourceId, Arc<[(String, String)]>, String, Document);
        let prepared: Vec<Prepared> = docs
            .into_iter()
            .map(|doc| {
                let fields: Arc<[(String, String)]> =
                    Self::extract_fields(&doc, index_paths).into();
                let xml = doc.to_xml_string();
                let id = ResourceId::for_object(community, &xml);
                (id, fields, xml, doc)
            })
            .collect();
        self.index.insert_batch(
            prepared.iter().map(|(id, fields, _, _)| (id.clone(), Arc::clone(fields))),
        );
        let mut ids = Vec::with_capacity(prepared.len());
        for (id, fields, xml, doc) in prepared {
            ids.push(id.clone());
            self.by_community.entry(community.to_string()).or_default().insert(id.clone());
            self.objects.insert(
                id.clone(),
                StoredObject { id, community: community.to_string(), xml, fields, doc },
            );
        }
        ids
    }

    /// Fetches an object by id.
    pub fn get(&self, id: &ResourceId) -> Option<&StoredObject> {
        self.objects.get(id)
    }

    /// `true` when the id is stored locally.
    pub fn contains(&self, id: &ResourceId) -> bool {
        self.objects.contains_key(id)
    }

    /// Removes an object, returning it if present.
    pub fn remove(&mut self, id: &ResourceId) -> Option<StoredObject> {
        let obj = self.objects.remove(id)?;
        self.index.remove(id);
        if let Some(set) = self.by_community.get_mut(&obj.community) {
            set.remove(id);
            if set.is_empty() {
                self.by_community.remove(&obj.community);
            }
        }
        Some(obj)
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Communities with at least one object, in sorted order.
    pub fn communities(&self) -> impl Iterator<Item = &str> {
        self.by_community.keys().map(String::as_str)
    }

    /// Ids of all objects in a community.
    pub fn ids_in(&self, community: &str) -> BTreeSet<ResourceId> {
        self.by_community.get(community).cloned().unwrap_or_default()
    }

    /// All stored objects, in id order.
    pub fn iter(&self) -> impl Iterator<Item = &StoredObject> {
        self.objects.values()
    }

    /// Runs a metadata query, optionally restricted to a community.
    /// Results are in id order (deterministic).
    pub fn search(&self, community: Option<&str>, query: &Query) -> Vec<&StoredObject> {
        let ids = self.index.execute(query);
        ids.iter()
            .filter_map(|id| self.objects.get(id))
            .filter(|o| community.is_none_or(|c| o.community == c))
            .collect()
    }

    /// Runs a CMIP-style filter text query.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidQuery`] when the filter is malformed.
    pub fn search_cmip(
        &self,
        community: Option<&str>,
        filter: &str,
    ) -> Result<Vec<&StoredObject>, StoreError> {
        let q = crate::cmip::parse_cmip(filter)?;
        Ok(self.search(community, &q))
    }

    /// Runs an XPath query against every object document (the "richer
    /// query language" of the paper's future work): an object matches
    /// when the expression evaluates to a truthy value on its document.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidQuery`] when the expression is
    /// malformed.
    pub fn xpath_search(
        &self,
        community: Option<&str>,
        expr: &str,
    ) -> Result<Vec<&StoredObject>, StoreError> {
        let xp = XPath::parse(expr).map_err(|e| StoreError::InvalidQuery(e.to_string()))?;
        let mut out = Vec::new();
        for obj in self.objects.values() {
            if let Some(c) = community {
                if obj.community != c {
                    continue;
                }
            }
            let truthy = xp
                .eval_root(&obj.doc)
                .map(|v| v.into_bool())
                .unwrap_or(false);
            if truthy {
                out.push(obj);
            }
        }
        Ok(out)
    }

    /// Index size statistics (experiment E7).
    pub fn index_stats(&self) -> IndexStats {
        self.index.stats()
    }

    /// Persists every object under `dir` (one XML file per object).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures.
    pub fn save_dir(&self, dir: &Path) -> Result<(), StoreError> {
        std::fs::create_dir_all(dir)?;
        for obj in self.objects.values() {
            let mut fields = ElementBuilder::new("fields");
            for (path, value) in obj.fields.iter() {
                fields = fields.child(
                    ElementBuilder::new("field").attr("path", path.clone()).text(value.clone()),
                );
            }
            let wrapper = ElementBuilder::new("stored")
                .attr("community", obj.community.clone())
                .child(fields)
                .build();
            // splice the object document in as a sibling of <fields>
            let mut wrapper = wrapper;
            let root = wrapper
                .document_element()
                .ok_or_else(|| StoreError::Corrupt("built wrapper has no root".into()))?;
            let holder = wrapper.create_element("object".into());
            wrapper.append_child(root, holder);
            let obj_doc = Document::parse(&obj.xml)?;
            let obj_root = obj_doc.document_element().ok_or_else(|| {
                StoreError::Corrupt(format!("stored object `{}` has no root element", obj.id))
            })?;
            let copied = wrapper.import_subtree(&obj_doc, obj_root);
            wrapper.append_child(holder, copied);
            let path = dir.join(format!("{}.xml", obj.id));
            std::fs::write(path, wrapper.to_xml_string())?;
        }
        Ok(())
    }

    /// Loads a repository from `dir`: when the directory holds a durable
    /// store manifest, recovers through the segment + WAL fast path
    /// (pre-tokenized postings, no tokenizer, no per-object XML wrapper
    /// parsing); otherwise falls back to scanning the legacy one-XML-
    /// file-per-object layout written by [`Repository::save_dir`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] when a file does not follow its
    /// format, plus I/O and XML errors.
    pub fn load_dir(dir: &Path) -> Result<Repository, StoreError> {
        Ok(Self::load_dir_report(dir)?.0)
    }

    /// [`load_dir`](Self::load_dir) plus a [`LoadReport`] saying which
    /// path ran — the hook the persistence regression tests use to prove
    /// the manifest fast path is taken (and stays index-rebuild-free).
    ///
    /// # Errors
    ///
    /// As [`load_dir`](Self::load_dir).
    pub fn load_dir_report(dir: &Path) -> Result<(Repository, LoadReport), StoreError> {
        if crate::segment::read_manifest(dir)?.is_some() {
            let (repo, recovery) = crate::durable::DurableRepository::recover(dir)?;
            let objects = repo.len();
            return Ok((repo, LoadReport { from_manifest: true, objects, recovery: Some(recovery) }));
        }
        let repo = Self::load_dir_xml(dir)?;
        let objects = repo.len();
        Ok((repo, LoadReport { from_manifest: false, objects, recovery: None }))
    }

    /// The legacy loader: parse every `<stored>` wrapper file and rebuild
    /// the index from scratch (re-tokenizing). Kept as the fallback for
    /// directories written before the durable store existed — and as the
    /// baseline experiment E12 measures recovery against.
    fn load_dir_xml(dir: &Path) -> Result<Repository, StoreError> {
        let mut repo = Repository::new();
        let mut entries: Vec<_> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "xml"))
            .collect();
        entries.sort();
        for path in entries {
            let text = std::fs::read_to_string(&path)?;
            let doc = Document::parse(&text)?;
            let root = doc
                .document_element()
                .ok_or_else(|| StoreError::Corrupt(format!("{}: empty", path.display())))?;
            if doc.local_name(root) != Some("stored") {
                return Err(StoreError::Corrupt(format!(
                    "{}: root is not <stored>",
                    path.display()
                )));
            }
            let community = doc
                .attr(root, "community")
                .ok_or_else(|| {
                    StoreError::Corrupt(format!("{}: missing community", path.display()))
                })?
                .to_string();
            let mut fields = Vec::new();
            if let Some(fields_el) = doc.child_named(root, "fields") {
                for f in doc.children_named(fields_el, "field") {
                    let Some(p) = doc.attr(f, "path") else { continue };
                    fields.push((p.to_string(), doc.text_content(f)));
                }
            }
            let holder = doc.child_named(root, "object").ok_or_else(|| {
                StoreError::Corrupt(format!("{}: missing <object>", path.display()))
            })?;
            let inner = doc.child_elements(holder).next().ok_or_else(|| {
                StoreError::Corrupt(format!("{}: empty <object>", path.display()))
            })?;
            let mut obj_doc = Document::new();
            let copied = obj_doc.import_subtree(&doc, inner);
            let obj_root = obj_doc.root();
            obj_doc.append_child(obj_root, copied);
            repo.insert_with_fields(&community, obj_doc, fields);
        }
        Ok(repo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OBSERVER: &str = "<pattern><name>Observer</name><category>behavioral</category>\
                            <intent>notify dependents automatically</intent></pattern>";
    const FACTORY: &str = "<pattern><name>Abstract Factory</name><category>creational</category>\
                           <intent>families of related objects</intent></pattern>";

    fn paths() -> Vec<String> {
        vec!["pattern/name".into(), "pattern/category".into(), "pattern/intent".into()]
    }

    fn sample() -> Repository {
        let mut r = Repository::new();
        r.insert_xml("patterns", OBSERVER, &paths()).unwrap();
        r.insert_xml("patterns", FACTORY, &paths()).unwrap();
        r.insert_xml(
            "songs",
            "<song><title>So What</title><artist>Miles Davis</artist></song>",
            &["song/title".into(), "song/artist".into()],
        )
        .unwrap();
        r
    }

    #[test]
    fn insert_is_idempotent_and_content_addressed() {
        let mut r = Repository::new();
        let a = r.insert_xml("patterns", OBSERVER, &paths()).unwrap();
        let b = r.insert_xml("patterns", OBSERVER, &paths()).unwrap();
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
        // whitespace differences do not change identity (canonical form)
        let c = r
            .insert_xml(
                "patterns",
                "<pattern><name>Observer</name><category>behavioral</category><intent>notify dependents automatically</intent></pattern>",
                &paths(),
            )
            .unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn search_scoped_by_community() {
        let r = sample();
        let hits = r.search(Some("patterns"), &Query::any_keyword("observer"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].field("name"), Some("Observer"));
        // "miles" is in songs, not patterns
        assert!(r.search(Some("patterns"), &Query::any_keyword("miles")).is_empty());
        assert_eq!(r.search(None, &Query::any_keyword("miles")).len(), 1);
    }

    #[test]
    fn cmip_search() {
        let r = sample();
        let hits = r.search_cmip(Some("patterns"), "(&(category=creational)(name=*factory*))")
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].field("name"), Some("Abstract Factory"));
        assert!(r.search_cmip(None, "(bad").is_err());
    }

    #[test]
    fn xpath_search_works_per_document() {
        let r = sample();
        let hits = r
            .xpath_search(Some("patterns"), "/pattern[category='behavioral']")
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].field("name"), Some("Observer"));
        let hits = r.xpath_search(None, "//artist[contains(., 'Davis')]").unwrap();
        assert_eq!(hits.len(), 1);
        assert!(r.xpath_search(None, "///").is_err());
    }

    #[test]
    fn remove_updates_all_structures() {
        let mut r = sample();
        let id = r.search(Some("patterns"), &Query::any_keyword("observer"))[0].id.clone();
        let removed = r.remove(&id).unwrap();
        assert_eq!(removed.field("name"), Some("Observer"));
        assert!(r.get(&id).is_none());
        assert!(r.search(None, &Query::any_keyword("observer")).is_empty());
        assert_eq!(r.ids_in("patterns").len(), 1);
        assert!(r.remove(&id).is_none());
    }

    #[test]
    fn insert_batch_agrees_with_sequential_insert() {
        let docs: Vec<Document> =
            [OBSERVER, FACTORY].iter().map(|x| Document::parse(x).unwrap()).collect();
        let mut batched = Repository::new();
        let ids = batched.insert_batch("patterns", docs.clone(), &paths());
        let mut sequential = Repository::new();
        let seq_ids: Vec<_> =
            docs.into_iter().map(|d| sequential.insert_doc("patterns", d, &paths())).collect();
        assert_eq!(ids, seq_ids);
        assert_eq!(batched.len(), 2);
        for q in [
            Query::any_keyword("factory"),
            Query::eq("category", "behavioral"),
            Query::and([Query::eq("category", "creational"), Query::any_keyword("families")]),
        ] {
            let b: Vec<_> = batched.search(None, &q).iter().map(|o| o.id.clone()).collect();
            let s: Vec<_> = sequential.search(None, &q).iter().map(|o| o.id.clone()).collect();
            assert_eq!(b, s, "on {q}");
        }
        let (bs, ss) = (batched.index_stats(), sequential.index_stats());
        assert_eq!(bs, ss);
        // batch-loaded objects can be removed and searched like any other
        batched.remove(&ids[0]);
        assert!(batched.search(None, &Query::any_keyword("observer")).is_empty());
    }

    #[test]
    fn communities_listed() {
        let r = sample();
        let cs: Vec<&str> = r.communities().collect();
        assert_eq!(cs, vec!["patterns", "songs"]);
    }

    #[test]
    fn extract_fields_pulls_text() {
        let doc = Document::parse(OBSERVER).unwrap();
        let fields = Repository::extract_fields(&doc, &paths());
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0], ("pattern/name".to_string(), "Observer".to_string()));
    }

    #[test]
    fn extract_fields_handles_repeats_and_missing() {
        let doc = Document::parse(
            "<song><tag>jazz</tag><tag>modal</tag></song>",
        )
        .unwrap();
        let fields =
            Repository::extract_fields(&doc, &["song/tag".into(), "song/absent".into()]);
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].1, "jazz");
        assert_eq!(fields[1].1, "modal");
    }

    #[test]
    fn persistence_round_trip() {
        let r = sample();
        let dir = std::env::temp_dir().join(format!("up2p-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        r.save_dir(&dir).unwrap();
        let loaded = Repository::load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), r.len());
        // same ids, same search results
        let hits = loaded.search(Some("patterns"), &Query::any_keyword("factory"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].field("name"), Some("Abstract Factory"));
        let ids_before: Vec<_> = r.iter().map(|o| o.id.clone()).collect();
        let ids_after: Vec<_> = loaded.iter().map(|o| o.id.clone()).collect();
        assert_eq!(ids_before, ids_after);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_corrupt_files() {
        let dir =
            std::env::temp_dir().join(format!("up2p-store-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.xml"), "<notstored/>").unwrap();
        assert!(matches!(Repository::load_dir(&dir), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_stats_exposed() {
        let r = sample();
        assert_eq!(r.index_stats().objects, 3);
    }
}
