//! # up2p-store
//!
//! The local object store of the U-P2P reproduction: a content-addressed
//! repository of XML objects with an inverted metadata index and three
//! query surfaces (programmatic [`Query`], CMIP/LDAP-style filter text as
//! the paper's servent used, and per-document XPath as its future-work
//! "richer query language").
//!
//! The paper's servent stored object information "in a database based on
//! Magenta … transactions … formatted as CMIP queries" (§IV-B). This crate
//! replaces that substrate 1:1: insert/search/get with community scoping,
//! plus the *Indexed Attribute* filtering of Fig. 1 — only extracted
//! fields enter the index, which experiment E7 measures.
//!
//! ```
//! use up2p_store::{Repository, Query};
//!
//! let mut repo = Repository::new();
//! repo.insert_xml(
//!     "patterns",
//!     "<pattern><name>Observer</name><category>behavioral</category></pattern>",
//!     &["pattern/name".into(), "pattern/category".into()],
//! )?;
//! assert_eq!(repo.search_cmip(None, "(name=observ*)")?.len(), 1);
//! assert_eq!(repo.xpath_search(None, "/pattern[category='behavioral']")?.len(), 1);
//! # Ok::<(), up2p_store::StoreError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cmip;
mod digest;
mod durable;
mod error;
mod fsio;
mod index;
mod query;
mod repository;
mod segment;
mod tokenizer;
mod wal;

pub use cmip::parse_cmip;
pub use digest::{sha1, ResourceId};
pub use durable::{DurableOptions, DurableRepository, RecoveryReport};
pub use error::StoreError;
pub use fsio::{crc32, FailFs, RealFs, StoreFs, StoreWriter};
pub use index::{prepare_fields, IndexStats, MetadataIndex, PreparedField, SharedFields};
pub use query::{field_matches, Query, ValuePattern};
pub use repository::{LoadReport, Repository, StoredObject};
pub use tokenizer::{
    is_normalized, normalize, token_passes, tokenize, tokenize_with, STOPWORDS,
};
pub use wal::SyncPolicy;
