//! Error type for the object store.

use std::fmt;

/// Error produced by repository operations.
#[derive(Debug)]
pub enum StoreError {
    /// The referenced object does not exist.
    NotFound(String),
    /// The object XML could not be parsed.
    InvalidXml(up2p_xml::ParseXmlError),
    /// A query string could not be parsed.
    InvalidQuery(String),
    /// Persistence I/O failed.
    Io(std::io::Error),
    /// A persisted file was structurally wrong.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(id) => write!(f, "object {id} not found"),
            StoreError::InvalidXml(e) => write!(f, "invalid object XML: {e}"),
            StoreError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            StoreError::Io(e) => write!(f, "store I/O failed: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store file: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::InvalidXml(e) => Some(e),
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<up2p_xml::ParseXmlError> for StoreError {
    fn from(e: up2p_xml::ParseXmlError) -> Self {
        StoreError::InvalidXml(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(StoreError::NotFound("abc".into()).to_string(), "object abc not found");
        assert!(StoreError::InvalidQuery("eof".into()).to_string().contains("invalid query"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StoreError>();
    }
}
