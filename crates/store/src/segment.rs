//! Immutable, sorted segment files and the manifest that names the live
//! generation.
//!
//! A segment is the compacted form of the repository at one point in
//! time: `UP2PSEG1` magic, a `u32` object count, then exactly that many
//! checksummed frames — one publish-shaped entry per live object, in
//! ascending id order, carrying the pre-tokenized fields so loading a
//! segment never runs the tokenizer. Segments are written once and never
//! modified; compaction writes the next generation and retires the old.
//!
//! The manifest (`MANIFEST`, committed by write-to-temp + rename) names
//! the current segment (if any) and the current WAL file. It is the
//! single commit point: recovery believes the manifest and nothing else,
//! so a crash anywhere inside compaction leaves the previous generation
//! fully intact.

use crate::error::StoreError;
use crate::fsio::{encode_frame, read_frame, FrameRead, StoreFs};
use crate::wal::{decode_record, encode_record, WalRecord};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

pub(crate) const SEG_MAGIC: &[u8; 8] = b"UP2PSEG1";

/// Manifest file name inside a durable store directory.
pub(crate) const MANIFEST: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";
const MANIFEST_VERSION: &str = "up2p-manifest 1";

/// The durable store's current file set, as committed by the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Manifest {
    /// Compaction generation (monotone; names the files).
    pub generation: u64,
    /// Current segment file name, when one has been written.
    pub segment: Option<String>,
    /// Current WAL file name.
    pub wal: String,
}

impl Manifest {
    pub(crate) fn wal_name(generation: u64) -> String {
        format!("wal-{generation}.log")
    }

    pub(crate) fn segment_name(generation: u64) -> String {
        format!("seg-{generation}.up2p")
    }

    fn to_text(&self) -> String {
        let mut out = format!("{MANIFEST_VERSION}\ngeneration {}\n", self.generation);
        if let Some(seg) = &self.segment {
            out.push_str(&format!("segment {seg}\n"));
        }
        out.push_str(&format!("wal {}\n", self.wal));
        out
    }

    fn from_text(text: &str) -> Option<Manifest> {
        let mut lines = text.lines();
        if lines.next()? != MANIFEST_VERSION {
            return None;
        }
        let mut generation = None;
        let mut segment = None;
        let mut wal = None;
        for line in lines {
            match line.split_once(' ')? {
                ("generation", v) => generation = Some(v.parse().ok()?),
                ("segment", v) => segment = Some(v.to_string()),
                ("wal", v) => wal = Some(v.to_string()),
                _ => return None,
            }
        }
        Some(Manifest { generation: generation?, segment, wal: wal? })
    }
}

/// Path of the manifest inside `dir`.
pub(crate) fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST)
}

/// Reads the committed manifest. `Ok(None)` when the directory has no
/// manifest (not a durable store / fresh directory); a present but
/// unparsable manifest is [`StoreError::Corrupt`] — the commit record
/// itself is damaged and silently starting empty would lose data.
pub(crate) fn read_manifest(dir: &Path) -> Result<Option<Manifest>, StoreError> {
    let path = manifest_path(dir);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::Io(e)),
    };
    Manifest::from_text(&text)
        .map(Some)
        .ok_or_else(|| StoreError::Corrupt(format!("{}: unreadable manifest", path.display())))
}

/// Commits a manifest: write to a temp file, sync, rename over
/// `MANIFEST`, sync the directory. The rename is the commit point.
pub(crate) fn write_manifest(fs: &dyn StoreFs, dir: &Path, m: &Manifest) -> io::Result<()> {
    let tmp = dir.join(MANIFEST_TMP);
    let mut w = fs.create(&tmp)?;
    w.write_all(m.to_text().as_bytes())?;
    w.sync()?;
    drop(w);
    fs.rename(&tmp, &manifest_path(dir))?;
    fs.sync_dir(dir)
}

/// Writes a segment file from publish-shaped entries (already in
/// ascending id order), returning the byte size. The file is synced
/// before returning but only becomes live once a manifest names it.
pub(crate) fn write_segment<'a, I>(
    fs: &dyn StoreFs,
    path: &Path,
    count: u32,
    entries: I,
) -> io::Result<u64>
where
    I: Iterator<Item = &'a WalRecord>,
{
    let mut w = fs.create(path)?;
    let mut written = 0u64;
    let mut header = Vec::with_capacity(12);
    header.extend_from_slice(SEG_MAGIC);
    header.extend_from_slice(&count.to_le_bytes());
    w.write_all(&header)?;
    written += header.len() as u64;
    let mut payload = Vec::new();
    let mut frame = Vec::new();
    for rec in entries {
        payload.clear();
        frame.clear();
        encode_record(rec, &mut payload);
        encode_frame(&payload, &mut frame);
        w.write_all(&frame)?;
        written += frame.len() as u64;
    }
    w.sync()?;
    Ok(written)
}

/// Loads a segment file, verifying the magic, the declared count, every
/// frame checksum and that the file ends exactly after the last frame.
/// Any deviation is [`StoreError::Corrupt`]: unlike the WAL (whose tail
/// may legitimately be torn mid-append), a manifest-committed segment
/// was written and synced in full, so damage means real corruption and
/// must stop recovery rather than silently dropping committed objects.
pub(crate) fn load_segment(path: &Path) -> Result<Vec<WalRecord>, StoreError> {
    let bytes = std::fs::read(path)?;
    let corrupt = |why: &str| StoreError::Corrupt(format!("{}: {why}", path.display()));
    if bytes.len() < SEG_MAGIC.len() + 4 || &bytes[..SEG_MAGIC.len()] != SEG_MAGIC {
        return Err(corrupt("bad segment header"));
    }
    let count =
        u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let mut pos = SEG_MAGIC.len() + 4;
    let mut records = Vec::with_capacity(count);
    for i in 0..count {
        match read_frame(&bytes, pos) {
            FrameRead::Frame { payload, next } => {
                let Some(rec @ WalRecord::Publish { .. }) = decode_record(payload) else {
                    return Err(corrupt(&format!("entry {i} is not a publish record")));
                };
                records.push(rec);
                pos = next;
            }
            _ => return Err(corrupt(&format!("entry {i} torn or checksum-failed"))),
        }
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes after final entry"));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsio::RealFs;
    use crate::index::PreparedField;

    fn entry(n: u32) -> WalRecord {
        WalRecord::Publish {
            community: "c".into(),
            xml: format!("<o>{n}</o>"),
            fields: vec![("o/v".into(), format!("v{n}"))],
            prep: vec![PreparedField { norm: format!("v{n}"), tokens: vec![format!("v{n}")] }],
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("up2p-seg-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_text_round_trips() {
        for m in [
            Manifest { generation: 0, segment: None, wal: Manifest::wal_name(0) },
            Manifest {
                generation: 7,
                segment: Some(Manifest::segment_name(7)),
                wal: Manifest::wal_name(7),
            },
        ] {
            assert_eq!(Manifest::from_text(&m.to_text()), Some(m));
        }
        assert_eq!(Manifest::from_text("junk"), None);
        assert_eq!(Manifest::from_text("up2p-manifest 1\ngeneration x\nwal w\n"), None);
        assert_eq!(Manifest::from_text("up2p-manifest 1\ngeneration 1\n"), None);
    }

    #[test]
    fn manifest_commit_and_read_back() {
        let dir = tmp("manifest");
        assert_eq!(read_manifest(&dir).unwrap(), None);
        let m = Manifest {
            generation: 3,
            segment: Some(Manifest::segment_name(3)),
            wal: Manifest::wal_name(3),
        };
        write_manifest(&RealFs, &dir, &m).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(m));
        std::fs::write(manifest_path(&dir), "garbage").unwrap();
        assert!(matches!(read_manifest(&dir), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_round_trip_detects_any_damage() {
        let dir = tmp("roundtrip");
        let path = dir.join("seg-0.up2p");
        let entries: Vec<WalRecord> = (0..8).map(entry).collect();
        let bytes_written =
            write_segment(&RealFs, &path, entries.len() as u32, entries.iter()).unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk.len() as u64, bytes_written);
        assert_eq!(load_segment(&path).unwrap(), entries);
        // flip every byte: load must error (checksum/structure), not panic
        for i in 0..on_disk.len() {
            let mut bad = on_disk.clone();
            bad[i] ^= 0x20;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                matches!(load_segment(&path), Err(StoreError::Corrupt(_))),
                "flip at byte {i} went undetected"
            );
        }
        // truncation at any point is detected too
        for cut in [0, 5, 12, on_disk.len() / 2, on_disk.len() - 1] {
            std::fs::write(&path, &on_disk[..cut]).unwrap();
            assert!(matches!(load_segment(&path), Err(StoreError::Corrupt(_))), "cut {cut}");
        }
        // trailing garbage is rejected
        let mut long = on_disk.clone();
        long.push(0);
        std::fs::write(&path, &long).unwrap();
        assert!(matches!(load_segment(&path), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_segment_is_valid() {
        let dir = tmp("empty");
        let path = dir.join("seg-0.up2p");
        write_segment(&RealFs, &path, 0, [].iter()).unwrap();
        assert!(load_segment(&path).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
