//! Content addressing: a from-scratch SHA-1 and the [`ResourceId`] newtype.
//!
//! U-P2P needs stable, collision-resistant object identifiers so that the
//! same object published by different peers is recognized as one resource
//! (the paper's replication story depends on this). SHA-1 matches the era
//! and is implemented here to keep the dependency budget at zero.

use std::fmt;
use std::sync::Arc;

/// A 160-bit content hash identifying a stored object, shown as 40 hex
/// digits. Backed by a shared `Arc<str>`, so cloning an id (every search
/// hit, every posting materialization) is a reference-count bump rather
/// than a 40-byte heap copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(Arc<str>);

impl ResourceId {
    /// Identifier for an object: hash of its community id and its
    /// canonical XML text.
    pub fn for_object(community: &str, xml: &str) -> ResourceId {
        let mut data = Vec::with_capacity(community.len() + xml.len() + 1);
        data.extend_from_slice(community.as_bytes());
        data.push(0);
        data.extend_from_slice(xml.as_bytes());
        ResourceId(hex(&sha1(&data)).into())
    }

    /// Identifier from raw bytes (attachments).
    pub fn for_bytes(bytes: &[u8]) -> ResourceId {
        ResourceId(hex(&sha1(bytes)).into())
    }

    /// The 40-char hex form.
    pub fn as_hex(&self) -> &str {
        &self.0
    }

    /// Parses a hex id (for persistence).
    pub fn from_hex(s: &str) -> Option<ResourceId> {
        if s.len() == 40 && s.chars().all(|c| c.is_ascii_hexdigit()) {
            Some(ResourceId(s.to_ascii_lowercase().into()))
        } else {
            None
        }
    }

    /// A short prefix for display: the first 8 hex digits, or the whole
    /// id when it is shorter (ids wrapped by [`ResourceId::from_key`]
    /// are not guaranteed to be 40-hex).
    pub fn short(&self) -> &str {
        self.0.get(..8).unwrap_or(&self.0)
    }

    /// Wraps an arbitrary string key as an identifier without hashing.
    ///
    /// The network layer addresses records by the string key a provider
    /// published them under (normally the 40-hex content id, but any
    /// opaque key works); this lets its index nodes use the key directly
    /// as a [`crate::MetadataIndex`] document id.
    pub fn from_key(key: &str) -> ResourceId {
        ResourceId(key.into())
    }
}

/// `HashMap<ResourceId, _>` lookups by bare `&str` key without allocating
/// an id. Sound because the derived `Hash`/`Eq` of the newtype delegate to
/// the inner string content.
impl std::borrow::Borrow<str> for ResourceId {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX_DIGITS[(b >> 4) as usize] as char);
        s.push(HEX_DIGITS[(b & 0x0f) as usize] as char);
    }
    s
}

/// SHA-1 as specified in FIPS 180-1. Used for content addressing only —
/// this is a reproduction of a 2002 system, not a security boundary.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    // message padding: 0x80, zeros, 64-bit big-endian bit length
    let ml = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&ml.to_be_bytes());

    let mut w = [0u32; 80];
    for chunk in msg.chunks_exact(64) {
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha1_known_vectors() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(hex(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        // > 64 bytes exercises multi-block path
        let long = vec![b'a'; 1000];
        assert_eq!(hex(&sha1(&long)), "291e9a6c66994949b57ba5e650361e98fc36b1ba");
    }

    #[test]
    fn ids_are_deterministic_and_community_scoped() {
        let a = ResourceId::for_object("mp3", "<song><title>x</title></song>");
        let b = ResourceId::for_object("mp3", "<song><title>x</title></song>");
        let c = ResourceId::for_object("cml", "<song><title>x</title></song>");
        assert_eq!(a, b);
        assert_ne!(a, c, "same XML in a different community is a different resource");
        assert_eq!(a.as_hex().len(), 40);
    }

    #[test]
    fn from_hex_round_trip() {
        let id = ResourceId::for_bytes(b"data");
        let back = ResourceId::from_hex(id.as_hex()).unwrap();
        assert_eq!(id, back);
        assert!(ResourceId::from_hex("xyz").is_none());
        assert!(ResourceId::from_hex(&"a".repeat(39)).is_none());
    }

    #[test]
    fn from_key_wraps_and_borrows_as_str() {
        use std::borrow::Borrow;
        use std::collections::HashMap;
        let id = ResourceId::from_key("k1");
        assert_eq!(Borrow::<str>::borrow(&id), "k1");
        // hash consistency: map keyed by ResourceId answers &str lookups
        let mut map: HashMap<ResourceId, u32> = HashMap::new();
        map.insert(id.clone(), 7);
        assert_eq!(map.get("k1"), Some(&7));
        assert_eq!(map.get("k2"), None);
        // hex ids round-trip through from_key unchanged
        let hashed = ResourceId::for_bytes(b"data");
        assert_eq!(ResourceId::from_key(hashed.as_hex()), hashed);
    }

    #[test]
    fn short_form_is_prefix() {
        let id = ResourceId::for_bytes(b"data");
        assert_eq!(id.short().len(), 8);
        assert!(id.as_hex().starts_with(id.short()));
        // ids from arbitrary keys display without panicking
        assert_eq!(ResourceId::from_key("k1").short(), "k1");
        assert_eq!(ResourceId::from_key("exactly8").short(), "exactly8");
        assert_eq!(ResourceId::from_key("more-than-eight").short(), "more-tha");
    }
}
