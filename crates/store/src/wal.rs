//! The write-ahead log: an append-only file of length-prefixed,
//! CRC-32-checksummed frames, one per publish/remove, written *before*
//! the in-memory repository and index mutate.
//!
//! Format: an 8-byte magic header (`UP2PWAL1`) followed by frames
//! (`[payload len: u32 LE][crc32: u32 LE][payload]`, see
//! [`crate::fsio`]). Publish payloads carry the object's community,
//! canonical XML, extracted fields *and* their pre-tokenized form
//! ([`PreparedField`]), so replay rebuilds posting lists without running
//! the tokenizer. Replay stops at the first torn or checksum-failing
//! frame — everything before it is exactly the durable prefix — and the
//! torn tail is truncated away before the log is appended to again.

use crate::fsio::{encode_frame, put_str, put_u32, read_frame, Cursor, FrameRead, StoreFs, StoreWriter};
use crate::index::PreparedField;
use std::io::{self, Write};
use std::path::Path;

/// Magic bytes opening every WAL file.
pub(crate) const WAL_MAGIC: &[u8; 8] = b"UP2PWAL1";

const TAG_PUBLISH: u8 = 1;
const TAG_REMOVE: u8 = 2;

/// When the WAL forces its buffered frames to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every appended record: an `Ok` from a publish or
    /// remove means the record survives any crash.
    EveryRecord,
    /// `fsync` once per `n` appended records (plus explicit
    /// [`sync`](crate::DurableRepository::sync) calls): higher
    /// throughput, and a crash may lose up to the last unsynced batch —
    /// but recovery still lands on a clean record boundary.
    EveryN(usize),
    /// Only explicit `sync` calls (and OS writeback) persist frames.
    Manual,
}

/// One logical operation in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// An object entering the repository.
    Publish {
        /// Community the object belongs to.
        community: String,
        /// Canonical XML of the object document.
        xml: String,
        /// Extracted `(field path, value)` metadata.
        fields: Vec<(String, String)>,
        /// Pre-tokenized form of each field, index-ready.
        prep: Vec<PreparedField>,
    },
    /// An object leaving the repository, by content id (hex form).
    Remove {
        /// The removed object's id.
        id: String,
    },
}

/// Encodes a record into a frame payload (no frame header).
pub(crate) fn encode_record(rec: &WalRecord, out: &mut Vec<u8>) {
    match rec {
        WalRecord::Publish { community, xml, fields, prep } => {
            out.push(TAG_PUBLISH);
            put_str(out, community);
            put_str(out, xml);
            put_u32(out, fields.len() as u32);
            for ((path, value), pf) in fields.iter().zip(prep) {
                put_str(out, path);
                put_str(out, value);
                put_str(out, &pf.norm);
                put_u32(out, pf.tokens.len() as u32);
                for token in &pf.tokens {
                    put_str(out, token);
                }
            }
        }
        WalRecord::Remove { id } => {
            out.push(TAG_REMOVE);
            put_str(out, id);
        }
    }
}

/// Decodes a frame payload back into a record. `None` means the payload
/// is logically malformed (despite a valid checksum) — callers treat
/// this exactly like a torn frame.
pub(crate) fn decode_record(payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor::new(payload);
    let rec = match c.u8()? {
        TAG_PUBLISH => {
            let community = c.str()?.to_string();
            let xml = c.str()?.to_string();
            let n = c.u32()? as usize;
            let mut fields = Vec::with_capacity(n);
            let mut prep = Vec::with_capacity(n);
            for _ in 0..n {
                let path = c.str()?.to_string();
                let value = c.str()?.to_string();
                let norm = c.str()?.to_string();
                let n_tokens = c.u32()? as usize;
                let mut tokens = Vec::with_capacity(n_tokens);
                for _ in 0..n_tokens {
                    tokens.push(c.str()?.to_string());
                }
                fields.push((path, value));
                prep.push(PreparedField { norm, tokens });
            }
            WalRecord::Publish { community, xml, fields, prep }
        }
        TAG_REMOVE => WalRecord::Remove { id: c.str()?.to_string() },
        _ => return None,
    };
    c.at_end().then_some(rec)
}

/// Result of scanning a WAL file's bytes.
pub(crate) struct WalReplay {
    /// Records of the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (where appends may resume).
    pub valid_len: u64,
    /// Bytes past the valid prefix that were dropped (torn tail).
    pub torn_bytes: u64,
}

/// Scans WAL `bytes`, returning every record of the longest valid
/// prefix. A missing or corrupt magic header yields an empty replay
/// with `valid_len` 0 (the file will be re-created before reuse).
pub(crate) fn replay(bytes: &[u8]) -> WalReplay {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return WalReplay { records: Vec::new(), valid_len: 0, torn_bytes: bytes.len() as u64 };
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    while let FrameRead::Frame { payload, next } = read_frame(bytes, pos) {
        match decode_record(payload) {
            Some(rec) => {
                records.push(rec);
                pos = next;
            }
            None => break,
        }
    }
    WalReplay {
        records,
        valid_len: pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
    }
}

/// The append handle on the live WAL file.
pub(crate) struct Wal {
    writer: Box<dyn StoreWriter>,
    policy: SyncPolicy,
    appended_since_sync: usize,
    frame_buf: Vec<u8>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("policy", &self.policy)
            .field("appended_since_sync", &self.appended_since_sync)
            .finish()
    }
}

impl Wal {
    /// Creates a fresh WAL file (truncating), writing and syncing the
    /// magic header so the file is recognizable from its first byte.
    pub(crate) fn create(fs: &dyn StoreFs, path: &Path, policy: SyncPolicy) -> io::Result<Wal> {
        let mut writer = fs.create(path)?;
        writer.write_all(WAL_MAGIC)?;
        writer.sync()?;
        Ok(Wal { writer, policy, appended_since_sync: 0, frame_buf: Vec::new() })
    }

    /// Reopens an existing WAL for appending, truncating to the valid
    /// prefix `valid_len` first (discarding any torn tail). When the
    /// prefix is shorter than the header (corrupt header), the file is
    /// re-created from scratch instead.
    pub(crate) fn open_end(
        fs: &dyn StoreFs,
        path: &Path,
        valid_len: u64,
        policy: SyncPolicy,
    ) -> io::Result<Wal> {
        if valid_len < WAL_MAGIC.len() as u64 {
            return Wal::create(fs, path, policy);
        }
        let writer = fs.append_truncated(path, valid_len)?;
        Ok(Wal { writer, policy, appended_since_sync: 0, frame_buf: Vec::new() })
    }

    /// Appends one record as a checksummed frame, syncing according to
    /// the policy. On `Ok` under [`SyncPolicy::EveryRecord`] the record
    /// is durable.
    pub(crate) fn append(&mut self, rec: &WalRecord) -> io::Result<()> {
        self.frame_buf.clear();
        encode_record(rec, &mut self.frame_buf);
        let mut frame = Vec::with_capacity(self.frame_buf.len() + crate::fsio::FRAME_HEADER);
        encode_frame(&self.frame_buf, &mut frame);
        self.writer.write_all(&frame)?;
        self.appended_since_sync += 1;
        match self.policy {
            SyncPolicy::EveryRecord => self.sync(),
            SyncPolicy::EveryN(n) if self.appended_since_sync >= n.max(1) => self.sync(),
            _ => Ok(()),
        }
    }

    /// Forces everything appended so far to stable storage.
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.writer.sync()?;
        self.appended_since_sync = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsio::RealFs;

    fn publish(n: u32) -> WalRecord {
        WalRecord::Publish {
            community: "tracks".into(),
            xml: format!("<t><n>{n}</n></t>"),
            fields: vec![("t/n".into(), format!("word{n} Word{n}"))],
            prep: vec![PreparedField {
                norm: format!("word{n} word{n}"),
                tokens: vec![format!("word{n}"), format!("word{n}")],
            }],
        }
    }

    #[test]
    fn record_codec_round_trips() {
        for rec in [publish(3), WalRecord::Remove { id: "a".repeat(40) }] {
            let mut payload = Vec::new();
            encode_record(&rec, &mut payload);
            assert_eq!(decode_record(&payload), Some(rec));
        }
        // trailing garbage after a well-formed record is rejected
        let mut payload = Vec::new();
        encode_record(&WalRecord::Remove { id: "x".into() }, &mut payload);
        payload.push(0);
        assert_eq!(decode_record(&payload), None);
        // unknown tag is rejected
        assert_eq!(decode_record(&[9, 0, 0, 0, 0]), None);
        assert_eq!(decode_record(&[]), None);
    }

    #[test]
    fn append_replay_round_trip_and_torn_tail() {
        let dir = std::env::temp_dir().join(format!("up2p-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let recs: Vec<WalRecord> =
            (0..5).map(publish).chain([WalRecord::Remove { id: "dead".into() }]).collect();
        {
            let mut wal = Wal::create(&RealFs, &path, SyncPolicy::EveryRecord).unwrap();
            for r in &recs {
                wal.append(r).unwrap();
            }
        }
        let bytes = std::fs::read(&path).unwrap();
        let full = replay(&bytes);
        assert_eq!(full.records, recs);
        assert_eq!(full.valid_len, bytes.len() as u64);
        assert_eq!(full.torn_bytes, 0);
        // every truncation point recovers a record-aligned prefix
        for cut in 0..bytes.len() {
            let r = replay(&bytes[..cut]);
            assert!(r.records.len() <= recs.len());
            assert_eq!(r.records[..], recs[..r.records.len()]);
            assert!(r.valid_len <= cut as u64);
        }
        // reopening after a torn tail truncates it and appends cleanly
        let torn_to = full.valid_len - 3; // cut into the last frame
        std::fs::write(&path, &bytes[..torn_to as usize]).unwrap();
        let scan = replay(&std::fs::read(&path).unwrap());
        assert_eq!(scan.records.len(), recs.len() - 1);
        assert!(scan.torn_bytes > 0);
        {
            let mut wal =
                Wal::open_end(&RealFs, &path, scan.valid_len, SyncPolicy::EveryRecord).unwrap();
            wal.append(&publish(99)).unwrap();
        }
        let after = replay(&std::fs::read(&path).unwrap());
        assert_eq!(after.torn_bytes, 0);
        assert_eq!(after.records.len(), recs.len()); // 5 survivors + the new one
        assert_eq!(after.records.last(), Some(&publish(99)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_header_replays_empty() {
        let r = replay(b"NOTAWAL!rest");
        assert!(r.records.is_empty());
        assert_eq!(r.valid_len, 0);
        let r = replay(b"UP2P");
        assert!(r.records.is_empty());
        assert_eq!(r.valid_len, 0);
    }
}
