//! The inverted metadata index.
//!
//! Only fields extracted by the community's *Indexed Attribute* filter
//! (Fig. 1 of the paper) enter the index; experiment E7 measures the
//! size/recall trade-off this enables, and E8 measures the index at scale.
//!
//! Layout: every [`ResourceId`] is interned to a dense `u32` doc-id and
//! every field path / token / normalized value to a `u32` symbol, so a
//! posting is 4 bytes instead of a cloned 40-char hex `String`. Posting
//! lists are sorted `Vec<u32>` per `(field path, term)`; `And` intersects
//! them with galloping (exponential) search, `Or` takes a k-way merge.
//! Field references resolve through a precomputed suffix map
//! ([`MetadataIndex::intern_path`] registers `a/b/c` under `a/b/c`, `b/c`
//! and `c`), so exact references are a single hash lookup instead of a
//! scan over every field's posting map. Removal replays the removed
//! object's own stored fields instead of sweeping the whole index.

use crate::digest::ResourceId;
use crate::query::{Query, ValuePattern};
use crate::tokenizer::{for_each_token, normalize};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Shared handle to one object's extracted `(field path, value)` pairs.
/// Cloning is a refcount bump; the index, the repository and the network
/// layer all hold the same allocation.
pub type SharedFields = Arc<[(String, String)]>;

/// One field value's pre-tokenized form: exactly what
/// [`MetadataIndex::insert_tokenized`] needs to post the field without
/// touching the tokenizer. Produced by [`prepare_fields`] at publish
/// time and persisted in WAL/segment records so recovery replays posting
/// lists instead of re-deriving them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedField {
    /// Normalized value ([`normalize`]d), the exact-match key.
    pub norm: String,
    /// Keyword tokens in visit order (duplicates preserved — posting
    /// insertion deduplicates per doc anyway).
    pub tokens: Vec<String>,
}

/// Tokenizes and normalizes every field value once, producing the
/// prepared form the durable store persists. This is the *only*
/// tokenization pass an object needs: publish runs it, the WAL carries
/// it, recovery replays it.
pub fn prepare_fields(fields: &[(String, String)]) -> Vec<PreparedField> {
    fields
        .iter()
        .map(|(_, value)| {
            let norm = normalize(value);
            let mut tokens = Vec::new();
            for_each_token(value, |t| tokens.push(t.to_string()));
            PreparedField { norm, tokens }
        })
        .collect()
}

/// Interner mapping strings to dense `u32` symbols. Each distinct string
/// is stored exactly once (as the lookup key); the content byte total is
/// accumulated on intern so `bytes()` is O(1) and matches what is
/// actually resident.
#[derive(Debug, Clone, Default)]
struct SymbolTable {
    lookup: HashMap<String, u32>,
    content_bytes: usize,
}

impl SymbolTable {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = self.lookup.len() as u32;
        self.content_bytes += s.len();
        self.lookup.insert(s.to_string(), sym);
        sym
    }

    fn get(&self, s: &str) -> Option<u32> {
        self.lookup.get(s).copied()
    }

    fn len(&self) -> usize {
        self.lookup.len()
    }

    /// Total bytes of interned string content (each distinct string
    /// counted once — the point of interning).
    fn bytes(&self) -> usize {
        self.content_bytes
    }
}

/// Everything stored per indexed object: the original id, the raw
/// extracted fields (public API + snippets), and the interned/normalized
/// forms the scan fallback and targeted removal replay. Fields are held
/// behind an `Arc` so callers that already share the extracted metadata
/// (the net layer's index nodes, the repository) pay a refcount bump, not
/// a deep copy, per index.
#[derive(Debug, Clone)]
struct DocEntry {
    id: ResourceId,
    fields: Arc<[(String, String)]>,
    path_syms: Vec<u32>,
    norms: Vec<String>,
}

/// Inverted index over extracted `(field path, value)` pairs.
#[derive(Debug, Clone, Default)]
pub struct MetadataIndex {
    /// Field-path interner; `tokens`/`exact` are indexed by path symbol.
    paths: SymbolTable,
    /// Shared interner for tokens and normalized values.
    terms: SymbolTable,
    /// Field reference (full path or any `/`-aligned suffix) → path
    /// symbols it matches, in ascending symbol order.
    ref_paths: HashMap<String, Vec<u32>>,
    /// Per path symbol: token symbol → sorted doc-id posting list.
    tokens: Vec<HashMap<u32, Vec<u32>>>,
    /// Per path symbol: normalized-value symbol → sorted posting list.
    exact: Vec<HashMap<u32, Vec<u32>>>,
    /// Doc-id → entry; `None` marks a recycled slot.
    docs: Vec<Option<DocEntry>>,
    /// ResourceId → doc-id for every live object.
    doc_ids: HashMap<ResourceId, u32>,
    /// Recycled doc-ids available for reuse.
    free: Vec<u32>,
}

/// Size statistics for experiments E7/E8 (index filtering and scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Number of indexed objects.
    pub objects: usize,
    /// Distinct field paths with at least one posting.
    pub fields: usize,
    /// Total postings across the token index.
    pub token_postings: usize,
    /// Total postings across the exact-value index.
    pub exact_postings: usize,
    /// Approximate resident bytes: interned path/term string content
    /// (each distinct string once), 4 bytes per posting, 4 bytes per
    /// posting-list key, and the 40-byte hex id per live object.
    pub approx_bytes: usize,
}

impl MetadataIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes (or re-indexes) an object's extracted fields.
    pub fn insert(&mut self, id: ResourceId, fields: Vec<(String, String)>) {
        self.insert_shared(id, fields.into());
    }

    /// Indexes (or re-indexes) an object whose extracted fields are
    /// already shared. The index keeps the `Arc` (a refcount bump) — this
    /// is the borrowing insert the net layer's index nodes use so one
    /// metadata allocation serves the publisher, every index node and
    /// every search hit.
    pub fn insert_shared(&mut self, id: ResourceId, fields: Arc<[(String, String)]>) {
        self.remove(&id);
        let doc = self.alloc_doc(id.clone());
        let entry = self.post_fields(doc, id, fields, None);
        self.docs[doc as usize] = Some(entry);
    }

    /// Indexes an object from its pre-tokenized form without running the
    /// tokenizer — the recovery path: `prep` comes from a WAL or segment
    /// record that [`prepare_fields`] produced at publish time. When the
    /// prepared form does not line up with the fields (foreign or damaged
    /// input), falls back to [`insert_shared`](Self::insert_shared) and
    /// tokenizes normally rather than posting mismatched lists.
    pub fn insert_tokenized(
        &mut self,
        id: ResourceId,
        fields: SharedFields,
        prep: &[PreparedField],
    ) {
        if prep.len() != fields.len() {
            return self.insert_shared(id, fields);
        }
        self.remove(&id);
        let doc = self.alloc_doc(id.clone());
        let entry = self.post_prepared(doc, id, fields, prep, None);
        self.docs[doc as usize] = Some(entry);
    }

    /// Bulk version of [`insert_tokenized`](Self::insert_tokenized) with
    /// the same deferred posting-list ordering as
    /// [`insert_batch`](Self::insert_batch) — the segment/WAL replay fast
    /// path for loading large recovered corpora. Last occurrence of a
    /// repeated id wins.
    pub fn insert_batch_tokenized<I>(&mut self, batch: I)
    where
        I: IntoIterator<Item = (ResourceId, SharedFields, Vec<PreparedField>)>,
    {
        let items: Vec<(ResourceId, SharedFields, Vec<PreparedField>)> =
            batch.into_iter().collect();
        let mut keep = vec![true; items.len()];
        {
            let mut last: HashMap<&ResourceId, usize> = HashMap::with_capacity(items.len());
            for (i, (id, _, _)) in items.iter().enumerate() {
                if let Some(prev) = last.insert(id, i) {
                    keep[prev] = false;
                }
            }
        }
        for (id, _, _) in &items {
            self.remove(id);
        }
        self.docs.reserve(items.len());
        self.doc_ids.reserve(items.len());
        let mut dirty: HashSet<(bool, u32, u32)> = HashSet::new();
        for (i, (id, fields, prep)) in items.into_iter().enumerate() {
            if !keep[i] {
                continue;
            }
            if prep.len() != fields.len() {
                self.insert_shared(id, fields);
                continue;
            }
            let doc = self.alloc_doc(id.clone());
            let entry = self.post_prepared(doc, id, fields, &prep, Some(&mut dirty));
            self.docs[doc as usize] = Some(entry);
        }
        for (is_token, path, term) in dirty {
            let maps = if is_token { &mut self.tokens } else { &mut self.exact };
            if let Some(list) = maps[path as usize].get_mut(&term) {
                list.sort_unstable();
                list.dedup();
            }
        }
    }

    /// Bulk-inserts a batch, deferring posting-list ordering until the
    /// whole batch is in: lists touched by the batch are appended to
    /// unchecked, then sorted and deduplicated once at the end. When the
    /// batch repeats an id, the last occurrence wins (sequential-insert
    /// semantics).
    pub fn insert_batch<I, F>(&mut self, batch: I)
    where
        I: IntoIterator<Item = (ResourceId, F)>,
        F: Into<Arc<[(String, String)]>>,
    {
        let items: Vec<(ResourceId, SharedFields)> =
            batch.into_iter().map(|(id, fields)| (id, fields.into())).collect();
        // removals first, while every posting list is still sorted; also
        // mark all but the last occurrence of a repeated id as skipped
        let mut keep = vec![true; items.len()];
        {
            let mut last: HashMap<&ResourceId, usize> = HashMap::with_capacity(items.len());
            for (i, (id, _)) in items.iter().enumerate() {
                if let Some(prev) = last.insert(id, i) {
                    keep[prev] = false;
                }
            }
        }
        for (id, _) in &items {
            self.remove(id);
        }
        self.docs.reserve(items.len());
        self.doc_ids.reserve(items.len());
        let mut dirty: HashSet<(bool, u32, u32)> = HashSet::new();
        for (i, (id, fields)) in items.into_iter().enumerate() {
            if !keep[i] {
                continue;
            }
            let doc = self.alloc_doc(id.clone());
            let entry = self.post_fields(doc, id, fields, Some(&mut dirty));
            self.docs[doc as usize] = Some(entry);
        }
        for (is_token, path, term) in dirty {
            let maps = if is_token { &mut self.tokens } else { &mut self.exact };
            if let Some(list) = maps[path as usize].get_mut(&term) {
                list.sort_unstable();
                list.dedup();
            }
        }
    }

    /// Removes an object by replaying its own stored fields — cost is
    /// proportional to the removed object's postings, not the index size.
    pub fn remove(&mut self, id: &ResourceId) {
        let Some(doc) = self.doc_ids.remove(id) else { return };
        let Some(entry) = self.docs.get_mut(doc as usize).and_then(Option::take) else {
            // id table pointed at an empty slot (should not happen);
            // recycle the slot and there is nothing to unpost
            self.free.push(doc);
            return;
        };
        for (i, (_, value)) in entry.fields.iter().enumerate() {
            let path = entry.path_syms[i] as usize;
            if let Some(v) = self.terms.get(&entry.norms[i]) {
                unpost(&mut self.exact[path], v, doc);
            }
            let (terms, tokens) = (&self.terms, &mut self.tokens);
            for_each_token(value, |token| {
                if let Some(t) = terms.get(token) {
                    unpost(&mut tokens[path], t, doc);
                }
            });
        }
        self.free.push(doc);
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.doc_ids.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.doc_ids.is_empty()
    }

    /// The extracted fields of an indexed object.
    pub fn fields(&self, id: &ResourceId) -> Option<&[(String, String)]> {
        self.shared_fields(id).map(|f| &**f)
    }

    /// The shared handle to an indexed object's extracted fields (clone =
    /// refcount bump; this is what search hits carry).
    pub fn shared_fields(&self, id: &ResourceId) -> Option<&Arc<[(String, String)]>> {
        let doc = *self.doc_ids.get(id)?;
        self.docs.get(doc as usize)?.as_ref().map(|entry| &entry.fields)
    }

    /// All indexed ids.
    pub fn ids(&self) -> BTreeSet<ResourceId> {
        self.doc_ids.keys().cloned().collect()
    }

    /// Executes a query, returning matching ids.
    ///
    /// Keyword and exact-match branches are answered from the inverted
    /// structures via the reference→path map; wildcard patterns fall back
    /// to scanning stored normalized values. Results always agree with
    /// [`Query::matches_fields`] (property-tested).
    pub fn execute(&self, query: &Query) -> BTreeSet<ResourceId> {
        self.exec(query)
            .into_iter()
            .filter_map(|doc| self.docs.get(doc as usize).and_then(Option::as_ref))
            .map(|entry| entry.id.clone())
            .collect()
    }

    /// Visits every matching object in ascending doc-id (insertion)
    /// order without materializing an id set. The callback receives the
    /// id and the shared fields handle, so callers can compose the
    /// candidate set with their own state — e.g. the net layer filters
    /// by provider liveness and emits hits that share the same `Arc`.
    pub fn for_each_match<F>(&self, query: &Query, mut f: F)
    where
        F: FnMut(&ResourceId, &Arc<[(String, String)]>),
    {
        for doc in self.exec(query) {
            if let Some(entry) = self.docs.get(doc as usize).and_then(Option::as_ref) {
                f(&entry.id, &entry.fields);
            }
        }
    }

    /// Visits every interned term (keyword token or normalized value)
    /// that still backs at least one live posting — the vocabulary a
    /// routing digest of this index must cover. Removal drops emptied
    /// posting lists, so membership in any posting map is liveness; a
    /// term interned by objects that have all been removed is skipped
    /// even though its symbol stays in the interner. Visit order is
    /// unspecified (digest construction is order-insensitive).
    pub fn for_each_live_term<F>(&self, mut f: F)
    where
        F: FnMut(&str),
    {
        let mut live: HashSet<u32> = HashSet::new();
        for map in self.tokens.iter().chain(self.exact.iter()) {
            live.extend(map.keys().copied());
        }
        for (term, sym) in &self.terms.lookup {
            if live.contains(sym) {
                f(term);
            }
        }
    }

    /// Allocates a doc-id (recycling freed slots) and registers the id.
    fn alloc_doc(&mut self, id: ResourceId) -> u32 {
        let doc = match self.free.pop() {
            Some(doc) => doc,
            None => {
                self.docs.push(None);
                (self.docs.len() - 1) as u32
            }
        };
        self.doc_ids.insert(id, doc);
        doc
    }

    /// Interns a field path, extending the per-path maps and registering
    /// the path under every `/`-aligned suffix reference.
    fn intern_path(&mut self, path: &str) -> u32 {
        if let Some(sym) = self.paths.get(path) {
            return sym;
        }
        let sym = self.paths.intern(path);
        self.tokens.push(HashMap::new());
        self.exact.push(HashMap::new());
        self.ref_paths.entry(path.to_string()).or_default().push(sym);
        for (i, b) in path.bytes().enumerate() {
            if b == b'/' {
                self.ref_paths.entry(path[i + 1..].to_string()).or_default().push(sym);
            }
        }
        sym
    }

    /// Interns and posts one object's fields. With `dirty` (bulk mode)
    /// postings are appended unchecked and the touched lists recorded;
    /// without it every list is kept sorted in place.
    fn post_fields(
        &mut self,
        doc: u32,
        id: ResourceId,
        fields: Arc<[(String, String)]>,
        mut dirty: Option<&mut HashSet<(bool, u32, u32)>>,
    ) -> DocEntry {
        let mut path_syms = Vec::with_capacity(fields.len());
        let mut norms = Vec::with_capacity(fields.len());
        for (path, value) in fields.iter() {
            let p = self.intern_path(path);
            path_syms.push(p);
            let norm = normalize(value);
            let v = self.terms.intern(&norm);
            let exact_list = self.exact[p as usize].entry(v).or_default();
            match dirty.as_deref_mut() {
                Some(d) => bulk_post(exact_list, doc, (false, p, v), d),
                None => post(exact_list, doc),
            }
            let (terms, tokens) = (&mut self.terms, &mut self.tokens);
            for_each_token(value, |token| {
                let t = terms.intern(token);
                let token_list = tokens[p as usize].entry(t).or_default();
                match dirty.as_deref_mut() {
                    Some(d) => bulk_post(token_list, doc, (true, p, t), d),
                    None => post(token_list, doc),
                }
            });
            norms.push(norm);
        }
        DocEntry { id, fields, path_syms, norms }
    }

    /// [`post_fields`](Self::post_fields) without the tokenizer: norms
    /// and tokens come from the prepared form. Caller guarantees
    /// `prep.len() == fields.len()`; removal later replays the entry via
    /// `for_each_token`, which matches because [`prepare_fields`] used
    /// the same visitor.
    fn post_prepared(
        &mut self,
        doc: u32,
        id: ResourceId,
        fields: Arc<[(String, String)]>,
        prep: &[PreparedField],
        mut dirty: Option<&mut HashSet<(bool, u32, u32)>>,
    ) -> DocEntry {
        let mut path_syms = Vec::with_capacity(fields.len());
        let mut norms = Vec::with_capacity(fields.len());
        for ((path, _), pf) in fields.iter().zip(prep) {
            let p = self.intern_path(path);
            path_syms.push(p);
            let v = self.terms.intern(&pf.norm);
            let exact_list = self.exact[p as usize].entry(v).or_default();
            match dirty.as_deref_mut() {
                Some(d) => bulk_post(exact_list, doc, (false, p, v), d),
                None => post(exact_list, doc),
            }
            for token in &pf.tokens {
                let t = self.terms.intern(token);
                let token_list = self.tokens[p as usize].entry(t).or_default();
                match dirty.as_deref_mut() {
                    Some(d) => bulk_post(token_list, doc, (true, p, t), d),
                    None => post(token_list, doc),
                }
            }
            norms.push(pf.norm.clone());
        }
        DocEntry { id, fields, path_syms, norms }
    }

    /// Sorted doc-ids of every live object.
    fn all_docs(&self) -> Vec<u32> {
        self.docs
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_some())
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Path symbols matched by a field reference (empty when no stored
    /// path matches).
    fn resolve_reference(&self, reference: &str) -> &[u32] {
        self.ref_paths.get(reference).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Union of the posting lists for `term` across `paths` in `maps`.
    fn union_postings(&self, maps: &[HashMap<u32, Vec<u32>>], paths: &[u32], term: u32) -> Vec<u32> {
        let lists: Vec<&[u32]> =
            paths.iter().filter_map(|&p| maps[p as usize].get(&term)).map(Vec::as_slice).collect();
        union_k(&lists)
    }

    /// Core evaluator over interned doc-ids; every branch returns a
    /// sorted, duplicate-free list.
    fn exec(&self, query: &Query) -> Vec<u32> {
        match query {
            Query::All => self.all_docs(),
            Query::And(qs) => {
                if qs.is_empty() {
                    return self.all_docs();
                }
                let mut lists = Vec::with_capacity(qs.len());
                for q in qs {
                    let l = self.exec(q);
                    if l.is_empty() {
                        return Vec::new();
                    }
                    lists.push(l);
                }
                lists.sort_unstable_by_key(Vec::len);
                let mut iter = lists.into_iter();
                // lists has one entry per sub-query and qs is non-empty here
                let Some(mut acc) = iter.next() else { return Vec::new() };
                for l in iter {
                    acc = intersect_gallop(&acc, &l);
                    if acc.is_empty() {
                        break;
                    }
                }
                acc
            }
            Query::Or(qs) => {
                let lists: Vec<Vec<u32>> = qs.iter().map(|q| self.exec(q)).collect();
                let slices: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
                union_k(&slices)
            }
            Query::Not(q) => difference(&self.all_docs(), &self.exec(q)),
            Query::Keyword { field, word } => {
                let Some(t) = self.terms.get(word) else { return Vec::new() };
                match field {
                    None => {
                        let lists: Vec<&[u32]> =
                            self.tokens.iter().filter_map(|m| m.get(&t)).map(Vec::as_slice).collect();
                        union_k(&lists)
                    }
                    Some(f) => self.union_postings(&self.tokens, self.resolve_reference(f), t),
                }
            }
            Query::Match { field, pattern } => match pattern {
                ValuePattern::Exact(value) => {
                    let Some(v) = self.terms.get(value) else { return Vec::new() };
                    self.union_postings(&self.exact, self.resolve_reference(field), v)
                }
                _ => {
                    let path_syms = self.resolve_reference(field);
                    if path_syms.is_empty() {
                        return Vec::new();
                    }
                    self.docs
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| {
                            e.as_ref().is_some_and(|e| {
                                e.path_syms.iter().zip(&e.norms).any(|(p, norm)| {
                                    path_syms.contains(p) && pattern.matches_normalized(norm)
                                })
                            })
                        })
                        .map(|(i, _)| i as u32)
                        .collect()
                }
            },
        }
    }

    /// Current size statistics.
    pub fn stats(&self) -> IndexStats {
        let token_postings: usize = self.tokens.iter().flat_map(HashMap::values).map(Vec::len).sum();
        let exact_postings: usize = self.exact.iter().flat_map(HashMap::values).map(Vec::len).sum();
        let lists: usize =
            self.tokens.iter().map(HashMap::len).sum::<usize>() + self.exact.iter().map(HashMap::len).sum::<usize>();
        let fields = (0..self.paths.len())
            .filter(|&p| !self.tokens[p].is_empty() || !self.exact[p].is_empty())
            .count();
        IndexStats {
            objects: self.doc_ids.len(),
            fields,
            token_postings,
            exact_postings,
            approx_bytes: self.paths.bytes()
                + self.terms.bytes()
                + 4 * (token_postings + exact_postings)
                + 4 * lists
                + 40 * self.doc_ids.len(),
        }
    }
}

/// Bulk-mode posting: appends without re-sorting, recording the list as
/// dirty (to be sorted + deduplicated at batch commit) only when the
/// append actually lands out of order — with ascending doc-id allocation
/// that is rare, so the dirty set stays small.
fn bulk_post(list: &mut Vec<u32>, doc: u32, key: (bool, u32, u32), dirty: &mut HashSet<(bool, u32, u32)>) {
    match list.last() {
        Some(&tail) if tail == doc => {}
        Some(&tail) if tail > doc => {
            list.push(doc);
            dirty.insert(key);
        }
        _ => list.push(doc),
    }
}

/// Inserts `doc` into a sorted posting list, keeping it sorted and
/// duplicate-free. Appends in O(1) in the common (ascending doc-id) case.
fn post(list: &mut Vec<u32>, doc: u32) {
    match list.last() {
        Some(&tail) if tail < doc => list.push(doc),
        Some(&tail) if tail == doc => {}
        None => list.push(doc),
        _ => {
            if let Err(pos) = list.binary_search(&doc) {
                list.insert(pos, doc);
            }
        }
    }
}

/// Removes `doc` from the posting list under `term`, dropping the map
/// entry when the list empties.
fn unpost(map: &mut HashMap<u32, Vec<u32>>, term: u32, doc: u32) {
    if let Some(list) = map.get_mut(&term) {
        if let Ok(pos) = list.binary_search(&doc) {
            list.remove(pos);
        }
        if list.is_empty() {
            map.remove(&term);
        }
    }
}

/// First index `i >= from` with `list[i] >= target`, found by exponential
/// probing followed by binary search on the bracketed run.
fn gallop(list: &[u32], target: u32, from: usize) -> usize {
    if from >= list.len() || list[from] >= target {
        return from;
    }
    // invariant: list[lo] < target
    let mut lo = from;
    let mut step = 1;
    loop {
        let hi = lo + step;
        if hi >= list.len() || list[hi] >= target {
            let end = hi.min(list.len());
            return lo + 1 + list[lo + 1..end].partition_point(|&v| v < target);
        }
        lo = hi;
        step *= 2;
    }
}

/// Intersection of two sorted lists: iterate the smaller, gallop the
/// larger — O(s · log(l/s)) instead of O(s + l).
fn intersect_gallop(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::new();
    let mut pos = 0;
    for &x in small {
        pos = gallop(large, x, pos);
        if pos == large.len() {
            break;
        }
        if large[pos] == x {
            out.push(x);
            pos += 1;
        }
    }
    out
}

/// K-way merge of sorted lists into one sorted, duplicate-free list.
fn union_k(lists: &[&[u32]]) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    match lists.len() {
        0 => Vec::new(),
        1 => lists[0].to_vec(),
        _ => {
            let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::with_capacity(lists.len());
            let mut pos = vec![0usize; lists.len()];
            for (i, l) in lists.iter().enumerate() {
                if let Some(&first) = l.first() {
                    heap.push(Reverse((first, i)));
                }
            }
            let mut out = Vec::new();
            while let Some(Reverse((v, i))) = heap.pop() {
                if out.last() != Some(&v) {
                    out.push(v);
                }
                pos[i] += 1;
                if let Some(&next) = lists[i].get(pos[i]) {
                    heap.push(Reverse((next, i)));
                }
            }
            out
        }
    }
}

/// Sorted-list difference `all \ sub` (two-pointer).
fn difference(all: &[u32], sub: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(all.len().saturating_sub(sub.len()));
    let mut j = 0;
    for &x in all {
        while j < sub.len() && sub[j] < x {
            j += 1;
        }
        if j == sub.len() || sub[j] != x {
            out.push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u8) -> ResourceId {
        ResourceId::for_bytes(&[n])
    }

    fn sample() -> MetadataIndex {
        let mut ix = MetadataIndex::new();
        ix.insert(
            id(1),
            vec![
                ("pattern/name".into(), "Observer".into()),
                ("pattern/category".into(), "behavioral".into()),
                ("pattern/intent".into(), "notify dependents automatically".into()),
            ],
        );
        ix.insert(
            id(2),
            vec![
                ("pattern/name".into(), "Abstract Factory".into()),
                ("pattern/category".into(), "creational".into()),
                ("pattern/intent".into(), "families of related objects".into()),
            ],
        );
        ix.insert(
            id(3),
            vec![
                ("pattern/name".into(), "Factory Method".into()),
                ("pattern/category".into(), "creational".into()),
                ("pattern/intent".into(), "defer instantiation to subclasses".into()),
            ],
        );
        ix
    }

    #[test]
    fn keyword_search_hits_tokens() {
        let ix = sample();
        let hits = ix.execute(&Query::any_keyword("factory"));
        assert_eq!(hits.len(), 2);
        let hits = ix.execute(&Query::keyword("name", "observer"));
        assert_eq!(hits, BTreeSet::from([id(1)]));
    }

    #[test]
    fn live_terms_track_removals() {
        let mut ix = sample();
        let terms = |ix: &MetadataIndex| {
            let mut v: Vec<String> = Vec::new();
            ix.for_each_live_term(|t| v.push(t.to_string()));
            v.sort_unstable();
            v
        };
        let before = terms(&ix);
        // tokens and normalized values both appear
        assert!(before.contains(&"observer".to_string()));
        assert!(before.contains(&"abstract factory".to_string()));
        // removing the only Observer object retires its private terms but
        // keeps shared ones ("factory" still backs ids 2 and 3)
        ix.remove(&id(1));
        let after = terms(&ix);
        assert!(!after.contains(&"observer".to_string()));
        assert!(!after.contains(&"behavioral".to_string()));
        assert!(after.contains(&"factory".to_string()));
        assert!(after.len() < before.len());
        // an empty index exposes no terms, even though symbols stay
        // interned
        ix.remove(&id(2));
        ix.remove(&id(3));
        assert!(terms(&ix).is_empty());
    }

    #[test]
    fn exact_match_uses_value_index() {
        let ix = sample();
        let hits = ix.execute(&Query::eq("category", "CREATIONAL"));
        assert_eq!(hits.len(), 2);
        let hits = ix.execute(&Query::eq("name", "abstract factory"));
        assert_eq!(hits, BTreeSet::from([id(2)]));
    }

    #[test]
    fn wildcard_scan() {
        let ix = sample();
        let q = Query::Match {
            field: "name".into(),
            pattern: ValuePattern::from_wildcard("*factory*"),
        };
        assert_eq!(ix.execute(&q).len(), 2);
        let q = Query::Match {
            field: "name".into(),
            pattern: ValuePattern::from_wildcard("observ*"),
        };
        assert_eq!(ix.execute(&q), BTreeSet::from([id(1)]));
    }

    #[test]
    fn boolean_composition() {
        let ix = sample();
        let q = Query::and([
            Query::eq("category", "creational"),
            Query::any_keyword("families"),
        ]);
        assert_eq!(ix.execute(&q), BTreeSet::from([id(2)]));
        let q = Query::Not(Box::new(Query::eq("category", "creational")));
        assert_eq!(ix.execute(&q), BTreeSet::from([id(1)]));
    }

    #[test]
    fn remove_clears_postings() {
        let mut ix = sample();
        ix.remove(&id(2));
        assert_eq!(ix.len(), 2);
        assert!(ix.execute(&Query::any_keyword("families")).is_empty());
        let hits = ix.execute(&Query::any_keyword("factory"));
        assert_eq!(hits, BTreeSet::from([id(3)]));
        // removing twice is a no-op
        ix.remove(&id(2));
        assert_eq!(ix.len(), 2);
    }

    #[test]
    fn reinsert_replaces_old_fields() {
        let mut ix = sample();
        ix.insert(id(1), vec![("pattern/name".into(), "Mediator".into())]);
        assert!(ix.execute(&Query::keyword("name", "observer")).is_empty());
        assert_eq!(ix.execute(&Query::keyword("name", "mediator")), BTreeSet::from([id(1)]));
        assert_eq!(ix.len(), 3);
    }

    #[test]
    fn stats_track_sizes() {
        let ix = sample();
        let s = ix.stats();
        assert_eq!(s.objects, 3);
        assert_eq!(s.fields, 3);
        assert!(s.token_postings > 0);
        assert!(s.exact_postings >= 9);
        assert!(s.approx_bytes > 0);
        // an empty index reports zeros
        assert_eq!(MetadataIndex::new().stats(), IndexStats::default());
    }

    #[test]
    fn index_agrees_with_reference_semantics() {
        let ix = sample();
        let queries = [
            Query::any_keyword("factory"),
            Query::eq("category", "creational"),
            Query::contains("intent", "objects"),
            Query::and([Query::any_keyword("factory"), Query::any_keyword("method")]),
            Query::or([Query::eq("name", "observer"), Query::eq("name", "mediator")]),
            Query::Not(Box::new(Query::any_keyword("notify"))),
        ];
        for q in queries {
            let via_index = ix.execute(&q);
            let via_scan: BTreeSet<ResourceId> = ix
                .ids()
                .into_iter()
                .filter(|id| q.matches_fields(ix.fields(id).unwrap()))
                .collect();
            assert_eq!(via_index, via_scan, "disagreement on {q}");
        }
    }

    #[test]
    fn insert_batch_matches_sequential_inserts() {
        let fields = |n: &str, c: &str| {
            vec![
                ("pattern/name".to_string(), n.to_string()),
                ("pattern/category".to_string(), c.to_string()),
            ]
        };
        let items = vec![
            (id(1), fields("Observer", "behavioral")),
            (id(2), fields("Abstract Factory", "creational")),
            (id(1), fields("Mediator", "behavioral")), // duplicate id: last wins
            (id(3), fields("Factory Method", "creational")),
        ];
        let mut batched = MetadataIndex::new();
        batched.insert_batch(items.clone());
        let mut sequential = MetadataIndex::new();
        for (rid, f) in items {
            sequential.insert(rid, f);
        }
        assert_eq!(batched.len(), 3);
        for q in [
            Query::any_keyword("factory"),
            Query::eq("category", "behavioral"),
            Query::keyword("name", "mediator"),
            Query::All,
        ] {
            assert_eq!(batched.execute(&q), sequential.execute(&q), "on {q}");
        }
        let (b, s) = (batched.stats(), sequential.stats());
        assert_eq!(b.token_postings, s.token_postings);
        assert_eq!(b.exact_postings, s.exact_postings);
        // observer postings were replaced by mediator's within the batch
        assert!(batched.execute(&Query::keyword("name", "observer")).is_empty());
    }

    #[test]
    fn tokenized_insert_agrees_with_tokenizing_insert() {
        let fields = |n: &str, c: &str| -> SharedFields {
            vec![
                ("pattern/name".to_string(), n.to_string()),
                ("pattern/category".to_string(), c.to_string()),
            ]
            .into()
        };
        let items: Vec<(ResourceId, SharedFields)> = vec![
            (id(1), fields("Observer", "behavioral")),
            (id(2), fields("Abstract Factory", "creational")),
            (id(1), fields("Mediator", "behavioral")), // repeat: last wins
            (id(3), fields("Factory Method", "creational")),
        ];
        let mut reference = MetadataIndex::new();
        let mut single = MetadataIndex::new();
        let mut batched = MetadataIndex::new();
        for (rid, f) in &items {
            reference.insert_shared(rid.clone(), Arc::clone(f));
            single.insert_tokenized(rid.clone(), Arc::clone(f), &prepare_fields(f));
        }
        batched.insert_batch_tokenized(
            items.iter().map(|(rid, f)| (rid.clone(), Arc::clone(f), prepare_fields(f))),
        );
        for ix in [&single, &batched] {
            for q in [
                Query::any_keyword("factory"),
                Query::eq("category", "behavioral"),
                Query::keyword("name", "mediator"),
                Query::keyword("name", "observer"),
                Query::All,
            ] {
                assert_eq!(ix.execute(&q), reference.execute(&q), "on {q}");
            }
            let (a, b) = (ix.stats(), reference.stats());
            assert_eq!(a.token_postings, b.token_postings);
            assert_eq!(a.exact_postings, b.exact_postings);
        }
        // removal replays tokenized entries correctly (same token stream)
        single.remove(&id(2));
        reference.remove(&id(2));
        assert_eq!(
            single.execute(&Query::any_keyword("factory")),
            reference.execute(&Query::any_keyword("factory"))
        );
        let (a, b) = (single.stats(), reference.stats());
        assert_eq!(a.token_postings, b.token_postings);
        // a prep that does not line up falls back to full tokenization
        let mut fallback = MetadataIndex::new();
        fallback.insert_tokenized(id(7), fields("Observer", "behavioral"), &[]);
        assert_eq!(fallback.execute(&Query::any_keyword("observer")), BTreeSet::from([id(7)]));
    }

    #[test]
    fn doc_ids_are_recycled_after_remove() {
        let mut ix = MetadataIndex::new();
        for n in 0..6u8 {
            ix.insert(id(n), vec![("o/name".into(), format!("thing{n}"))]);
        }
        for n in 0..6u8 {
            ix.remove(&id(n));
        }
        assert!(ix.is_empty());
        let s = ix.stats();
        assert_eq!((s.objects, s.token_postings, s.exact_postings), (0, 0, 0));
        // re-inserting reuses freed slots rather than growing the table
        for n in 0..6u8 {
            ix.insert(id(n), vec![("o/name".into(), format!("item{n}"))]);
        }
        assert_eq!(ix.docs.len(), 6, "slots are recycled, not appended");
        assert_eq!(ix.execute(&Query::keyword("name", "item3")), BTreeSet::from([id(3)]));
    }

    #[test]
    fn multi_segment_reference_resolves_all_suffix_paths() {
        let mut ix = MetadataIndex::new();
        ix.insert(id(1), vec![("a/b/c".into(), "deep".into())]);
        ix.insert(id(2), vec![("b/c".into(), "shallow".into())]);
        ix.insert(id(3), vec![("x/c".into(), "other".into())]);
        // "b/c" matches both the exact path and the /-aligned suffix
        let hits = ix.execute(&Query::Match {
            field: "b/c".into(),
            pattern: ValuePattern::Present,
        });
        assert_eq!(hits, BTreeSet::from([id(1), id(2)]));
        // the bare leaf still matches everything ending in /c
        let hits = ix.execute(&Query::Match { field: "c".into(), pattern: ValuePattern::Present });
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn shared_fields_flow_by_reference() {
        let mut ix = MetadataIndex::new();
        let fields: Arc<[(String, String)]> =
            vec![("pattern/name".to_string(), "Observer Pattern".to_string())].into();
        ix.insert_shared(id(1), Arc::clone(&fields));
        // the index holds the same allocation, not a copy
        let held = ix.shared_fields(&id(1)).expect("indexed");
        assert!(Arc::ptr_eq(held, &fields));
        assert_eq!(ix.fields(&id(1)), Some(&*fields));
        // candidate iteration surfaces the same handle and composes with
        // an external predicate
        let mut seen = Vec::new();
        ix.for_each_match(&Query::any_keyword("observer"), |rid, f| {
            assert!(Arc::ptr_eq(f, &fields));
            seen.push(rid.clone());
        });
        assert_eq!(seen, vec![id(1)]);
        ix.for_each_match(&Query::any_keyword("missing"), |_, _| panic!("no match expected"));
    }

    #[test]
    fn for_each_match_visits_in_insertion_order() {
        let ix = sample();
        let mut order = Vec::new();
        ix.for_each_match(&Query::eq("category", "creational"), |rid, _| {
            order.push(rid.clone());
        });
        assert_eq!(order, vec![id(2), id(3)], "ascending doc-id order");
    }

    #[test]
    fn merge_helpers_hold_their_invariants() {
        assert_eq!(intersect_gallop(&[1, 3, 5, 7], &[2, 3, 4, 5, 6, 8, 9, 11]), vec![3, 5]);
        assert_eq!(intersect_gallop(&[], &[1, 2]), Vec::<u32>::new());
        assert_eq!(union_k(&[&[1, 4, 9], &[2, 4, 10], &[4, 5]]), vec![1, 2, 4, 5, 9, 10]);
        assert_eq!(union_k(&[]), Vec::<u32>::new());
        assert_eq!(difference(&[1, 2, 3, 4], &[2, 4]), vec![1, 3]);
        assert_eq!(gallop(&[1, 3, 5, 7, 9], 6, 0), 3);
        assert_eq!(gallop(&[1, 3, 5, 7, 9], 100, 2), 5);
        assert_eq!(gallop(&[1, 3, 5], 0, 0), 0);
    }
}
