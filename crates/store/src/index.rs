//! The inverted metadata index.
//!
//! Only fields extracted by the community's *Indexed Attribute* filter
//! (Fig. 1 of the paper) enter the index; experiment E7 measures the
//! size/recall trade-off this enables. Two structures are maintained per
//! field: a token index (keyword search) and a normalized-value index
//! (exact matches, e.g. enumerations).

use crate::digest::ResourceId;
use crate::query::{field_matches, Query, ValuePattern};
use crate::tokenizer::{normalize, tokenize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Inverted index over extracted `(field path, value)` pairs.
#[derive(Debug, Clone, Default)]
pub struct MetadataIndex {
    /// field path → token → posting list
    tokens: HashMap<String, HashMap<String, BTreeSet<ResourceId>>>,
    /// field path → normalized value → posting list
    exact: HashMap<String, HashMap<String, BTreeSet<ResourceId>>>,
    /// id → extracted fields (scan fallback + result snippets)
    stored: BTreeMap<ResourceId, Vec<(String, String)>>,
}

/// Size statistics for experiment E7 (index filtering ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Number of indexed objects.
    pub objects: usize,
    /// Distinct field paths.
    pub fields: usize,
    /// Total postings across the token index.
    pub token_postings: usize,
    /// Total postings across the exact-value index.
    pub exact_postings: usize,
    /// Approximate resident bytes of key material.
    pub approx_bytes: usize,
}

impl MetadataIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes (or re-indexes) an object's extracted fields.
    pub fn insert(&mut self, id: ResourceId, fields: Vec<(String, String)>) {
        self.remove(&id);
        for (path, value) in &fields {
            let norm = normalize(value);
            self.exact
                .entry(path.clone())
                .or_default()
                .entry(norm)
                .or_default()
                .insert(id.clone());
            for token in tokenize(value) {
                self.tokens
                    .entry(path.clone())
                    .or_default()
                    .entry(token)
                    .or_default()
                    .insert(id.clone());
            }
        }
        self.stored.insert(id, fields);
    }

    /// Removes an object from all postings.
    pub fn remove(&mut self, id: &ResourceId) {
        if self.stored.remove(id).is_none() {
            return;
        }
        for per_field in self.tokens.values_mut() {
            per_field.retain(|_, ids| {
                ids.remove(id);
                !ids.is_empty()
            });
        }
        for per_field in self.exact.values_mut() {
            per_field.retain(|_, ids| {
                ids.remove(id);
                !ids.is_empty()
            });
        }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.stored.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.stored.is_empty()
    }

    /// The extracted fields of an indexed object.
    pub fn fields(&self, id: &ResourceId) -> Option<&[(String, String)]> {
        self.stored.get(id).map(Vec::as_slice)
    }

    /// All indexed ids.
    pub fn ids(&self) -> BTreeSet<ResourceId> {
        self.stored.keys().cloned().collect()
    }

    /// Executes a query, returning matching ids.
    ///
    /// Keyword and exact-match branches are answered from the inverted
    /// structures; wildcard patterns fall back to scanning stored fields.
    /// Results always agree with [`Query::matches_fields`] (property-
    /// tested).
    pub fn execute(&self, query: &Query) -> BTreeSet<ResourceId> {
        match query {
            Query::All => self.ids(),
            Query::And(qs) => {
                let mut iter = qs.iter();
                let Some(first) = iter.next() else { return self.ids() };
                let mut acc = self.execute(first);
                for q in iter {
                    if acc.is_empty() {
                        break;
                    }
                    let next = self.execute(q);
                    acc = acc.intersection(&next).cloned().collect();
                }
                acc
            }
            Query::Or(qs) => {
                let mut acc = BTreeSet::new();
                for q in qs {
                    acc.extend(self.execute(q));
                }
                acc
            }
            Query::Not(q) => {
                let sub = self.execute(q);
                self.stored.keys().filter(|id| !sub.contains(*id)).cloned().collect()
            }
            Query::Keyword { field, word } => {
                let mut acc = BTreeSet::new();
                for (path, per_token) in &self.tokens {
                    let field_ok = field.as_deref().is_none_or(|f| field_matches(path, f));
                    if field_ok {
                        if let Some(ids) = per_token.get(word) {
                            acc.extend(ids.iter().cloned());
                        }
                    }
                }
                acc
            }
            Query::Match { field, pattern } => match pattern {
                ValuePattern::Exact(value) => {
                    let mut acc = BTreeSet::new();
                    for (path, per_value) in &self.exact {
                        if field_matches(path, field) {
                            if let Some(ids) = per_value.get(value) {
                                acc.extend(ids.iter().cloned());
                            }
                        }
                    }
                    acc
                }
                _ => self
                    .stored
                    .iter()
                    .filter(|(_, fields)| {
                        fields
                            .iter()
                            .filter(|(path, _)| field_matches(path, field))
                            .any(|(_, value)| pattern.matches(value))
                    })
                    .map(|(id, _)| id.clone())
                    .collect(),
            },
        }
    }

    /// Current size statistics.
    pub fn stats(&self) -> IndexStats {
        let token_postings: usize =
            self.tokens.values().flat_map(|m| m.values()).map(BTreeSet::len).sum();
        let exact_postings: usize =
            self.exact.values().flat_map(|m| m.values()).map(BTreeSet::len).sum();
        let key_bytes: usize = self
            .tokens
            .iter()
            .map(|(f, m)| f.len() + m.keys().map(String::len).sum::<usize>())
            .sum::<usize>()
            + self
                .exact
                .iter()
                .map(|(f, m)| f.len() + m.keys().map(String::len).sum::<usize>())
                .sum::<usize>();
        let mut fields: BTreeSet<&str> = BTreeSet::new();
        fields.extend(self.tokens.keys().map(String::as_str));
        fields.extend(self.exact.keys().map(String::as_str));
        IndexStats {
            objects: self.stored.len(),
            fields: fields.len(),
            token_postings,
            exact_postings,
            // ids are 40 hex chars ≈ 40 bytes of key material per posting
            approx_bytes: key_bytes + (token_postings + exact_postings) * 40,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u8) -> ResourceId {
        ResourceId::for_bytes(&[n])
    }

    fn sample() -> MetadataIndex {
        let mut ix = MetadataIndex::new();
        ix.insert(
            id(1),
            vec![
                ("pattern/name".into(), "Observer".into()),
                ("pattern/category".into(), "behavioral".into()),
                ("pattern/intent".into(), "notify dependents automatically".into()),
            ],
        );
        ix.insert(
            id(2),
            vec![
                ("pattern/name".into(), "Abstract Factory".into()),
                ("pattern/category".into(), "creational".into()),
                ("pattern/intent".into(), "families of related objects".into()),
            ],
        );
        ix.insert(
            id(3),
            vec![
                ("pattern/name".into(), "Factory Method".into()),
                ("pattern/category".into(), "creational".into()),
                ("pattern/intent".into(), "defer instantiation to subclasses".into()),
            ],
        );
        ix
    }

    #[test]
    fn keyword_search_hits_tokens() {
        let ix = sample();
        let hits = ix.execute(&Query::any_keyword("factory"));
        assert_eq!(hits.len(), 2);
        let hits = ix.execute(&Query::keyword("name", "observer"));
        assert_eq!(hits, BTreeSet::from([id(1)]));
    }

    #[test]
    fn exact_match_uses_value_index() {
        let ix = sample();
        let hits = ix.execute(&Query::eq("category", "CREATIONAL"));
        assert_eq!(hits.len(), 2);
        let hits = ix.execute(&Query::eq("name", "abstract factory"));
        assert_eq!(hits, BTreeSet::from([id(2)]));
    }

    #[test]
    fn wildcard_scan() {
        let ix = sample();
        let q = Query::Match {
            field: "name".into(),
            pattern: ValuePattern::from_wildcard("*factory*"),
        };
        assert_eq!(ix.execute(&q).len(), 2);
        let q = Query::Match {
            field: "name".into(),
            pattern: ValuePattern::from_wildcard("observ*"),
        };
        assert_eq!(ix.execute(&q), BTreeSet::from([id(1)]));
    }

    #[test]
    fn boolean_composition() {
        let ix = sample();
        let q = Query::and([
            Query::eq("category", "creational"),
            Query::any_keyword("families"),
        ]);
        assert_eq!(ix.execute(&q), BTreeSet::from([id(2)]));
        let q = Query::Not(Box::new(Query::eq("category", "creational")));
        assert_eq!(ix.execute(&q), BTreeSet::from([id(1)]));
    }

    #[test]
    fn remove_clears_postings() {
        let mut ix = sample();
        ix.remove(&id(2));
        assert_eq!(ix.len(), 2);
        assert!(ix.execute(&Query::any_keyword("families")).is_empty());
        let hits = ix.execute(&Query::any_keyword("factory"));
        assert_eq!(hits, BTreeSet::from([id(3)]));
        // removing twice is a no-op
        ix.remove(&id(2));
        assert_eq!(ix.len(), 2);
    }

    #[test]
    fn reinsert_replaces_old_fields() {
        let mut ix = sample();
        ix.insert(id(1), vec![("pattern/name".into(), "Mediator".into())]);
        assert!(ix.execute(&Query::keyword("name", "observer")).is_empty());
        assert_eq!(ix.execute(&Query::keyword("name", "mediator")), BTreeSet::from([id(1)]));
        assert_eq!(ix.len(), 3);
    }

    #[test]
    fn stats_track_sizes() {
        let ix = sample();
        let s = ix.stats();
        assert_eq!(s.objects, 3);
        assert_eq!(s.fields, 3);
        assert!(s.token_postings > 0);
        assert!(s.exact_postings >= 9);
        assert!(s.approx_bytes > 0);
        // an empty index reports zeros
        assert_eq!(MetadataIndex::new().stats(), IndexStats::default());
    }

    #[test]
    fn index_agrees_with_reference_semantics() {
        let ix = sample();
        let queries = [
            Query::any_keyword("factory"),
            Query::eq("category", "creational"),
            Query::contains("intent", "objects"),
            Query::and([Query::any_keyword("factory"), Query::any_keyword("method")]),
            Query::or([Query::eq("name", "observer"), Query::eq("name", "mediator")]),
            Query::Not(Box::new(Query::any_keyword("notify"))),
        ];
        for q in queries {
            let via_index = ix.execute(&q);
            let via_scan: BTreeSet<ResourceId> = ix
                .ids()
                .into_iter()
                .filter(|id| q.matches_fields(ix.fields(id).unwrap()))
                .collect();
            assert_eq!(via_index, via_scan, "disagreement on {q}");
        }
    }
}
