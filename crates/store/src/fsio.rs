//! Filesystem plumbing for the durable store: CRC-32 checksums,
//! length-prefixed checksummed frames, and the small write abstraction
//! ([`StoreFs`]) the WAL and segment writers go through. The production
//! implementation is [`RealFs`]; [`FailFs`] is the crash injector the
//! recovery test suites use — it forwards writes to the real filesystem
//! until a configured byte budget is exhausted, writes the final partial
//! buffer up to exactly that offset, and then fails every subsequent
//! operation, leaving the on-disk state a process crash would leave.
//!
//! Reads deliberately bypass the abstraction (recovery reads whole files
//! with `std::fs::read`): a crash tears writes, never reads.

use std::io::{self, Seek, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven
// ---------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC-32 (IEEE) of `data` — the frame checksum of the WAL and segment
/// formats. Detects every single-byte corruption and all burst errors up
/// to 32 bits, which is exactly the torn-write/bit-rot class recovery
/// must stop on.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Frames: [payload len: u32 LE][crc32(payload): u32 LE][payload]
// ---------------------------------------------------------------------

/// Byte length of a frame header (length + checksum words).
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a single frame payload (1 GiB). A corrupted length
/// word almost always lands above this, so replay stops instead of
/// trying to allocate or skip by garbage.
pub const MAX_FRAME: usize = 1 << 30;

/// Appends one frame (`len || crc || payload`) to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Outcome of reading one frame out of a byte buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameRead<'a> {
    /// A complete frame with a valid checksum; `next` is the offset of
    /// the following frame.
    Frame {
        /// The frame's payload bytes.
        payload: &'a [u8],
        /// Offset just past this frame.
        next: usize,
    },
    /// `pos` is exactly the end of the buffer — a clean end of log.
    End,
    /// The bytes at `pos` are not a whole, checksummed frame: a torn
    /// tail write or corruption. Replay must stop here.
    Torn,
}

/// Reads the frame starting at `pos`. Never panics: a partial header, a
/// length that overruns the buffer or [`MAX_FRAME`], and a checksum
/// mismatch all come back as [`FrameRead::Torn`].
pub fn read_frame(buf: &[u8], pos: usize) -> FrameRead<'_> {
    if pos == buf.len() {
        return FrameRead::End;
    }
    let Some(header) = buf.get(pos..pos + FRAME_HEADER) else {
        return FrameRead::Torn;
    };
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME {
        return FrameRead::Torn;
    }
    let start = pos + FRAME_HEADER;
    let Some(payload) = buf.get(start..start + len) else {
        return FrameRead::Torn;
    };
    if crc32(payload) != crc {
        return FrameRead::Torn;
    }
    FrameRead::Frame { payload, next: start + len }
}

// ---------------------------------------------------------------------
// Write abstraction
// ---------------------------------------------------------------------

/// A writable store file: sequential writes plus an explicit durability
/// barrier. [`Wal`](crate::Wal) batches appends between [`sync`] calls.
///
/// [`sync`]: StoreWriter::sync
pub trait StoreWriter: Write + Send + std::fmt::Debug {
    /// Flushes buffered bytes and forces them to stable storage
    /// (`fdatasync`-equivalent).
    fn sync(&mut self) -> io::Result<()>;
}

/// Filesystem operations the durable store performs. Swapping in
/// [`FailFs`] turns any write sequence into a reproducible crash.
pub trait StoreFs: std::fmt::Debug + Send + Sync {
    /// Creates (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StoreWriter>>;
    /// Opens an existing file for appending after truncating it to
    /// `len` bytes — how the WAL discards a torn tail before reuse.
    fn append_truncated(&self, path: &Path, len: u64) -> io::Result<Box<dyn StoreWriter>>;
    /// Atomically renames `from` to `to` (the manifest commit point).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file. Only used for post-commit garbage; failures are
    /// ignored by callers.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Best-effort fsync of a directory so renames inside it are
    /// durable. Platforms that cannot sync directories return `Ok(())`.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`StoreFs`]: plain `std::fs` files.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

#[derive(Debug)]
struct RealWriter(std::fs::File);

impl Write for RealWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl StoreWriter for RealWriter {
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl StoreFs for RealFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StoreWriter>> {
        Ok(Box::new(RealWriter(std::fs::File::create(path)?)))
    }

    fn append_truncated(&self, path: &Path, len: u64) -> io::Result<Box<dyn StoreWriter>> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        let mut writer = RealWriter(file);
        writer.0.seek(io::SeekFrom::End(0))?;
        Ok(Box::new(writer))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and syncing it is the POSIX way
        // to make a rename durable; where unsupported, renames are the
        // best the platform offers, so degrade silently.
        match std::fs::File::open(dir) {
            Ok(d) => {
                let _ = d.sync_all();
                Ok(())
            }
            Err(_) => Ok(()),
        }
    }
}

/// Crash-injecting [`StoreFs`] for recovery tests.
///
/// All writers created from one `FailFs` share a byte budget. While the
/// budget lasts, writes pass straight through to the real filesystem.
/// The write that would cross the budget is truncated at exactly the
/// budget boundary — the torn frame a power cut leaves — and from then
/// on every write, sync, create and rename fails, modeling the process
/// being gone. Reopening the directory with [`RealFs`] afterwards *is*
/// the crash-recovery path under test.
///
/// ```
/// use up2p_store::{FailFs, StoreFs};
/// let dir = std::env::temp_dir().join(format!("up2p-failfs-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let fs = FailFs::new(5);
/// let mut w = fs.create(&dir.join("f")).unwrap();
/// use std::io::Write;
/// assert!(w.write_all(b"abc").is_ok());      // 3 of 5 bytes
/// assert!(w.write_all(b"defg").is_err());    // crosses the budget
/// assert_eq!(std::fs::read(dir.join("f")).unwrap(), b"abcde"); // torn at byte 5
/// assert_eq!(fs.bytes_written(), 5);
/// assert!(fs.is_dead());
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct FailFs {
    inner: RealFs,
    remaining: Arc<AtomicU64>,
    written: Arc<AtomicU64>,
    dead: Arc<AtomicBool>,
}

impl FailFs {
    /// A filesystem that dies once `budget` total bytes have been
    /// written across all files.
    pub fn new(budget: u64) -> FailFs {
        FailFs {
            inner: RealFs,
            remaining: Arc::new(AtomicU64::new(budget)),
            written: Arc::new(AtomicU64::new(0)),
            dead: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A filesystem that never dies but still counts bytes — the
    /// recording pass that measures a workload's total write volume so
    /// kill offsets can be chosen inside it.
    pub fn unlimited() -> FailFs {
        FailFs::new(u64::MAX)
    }

    /// Total bytes actually written so far (across every file).
    pub fn bytes_written(&self) -> u64 {
        self.written.load(Ordering::SeqCst)
    }

    /// `true` once the budget has been exhausted and the simulated
    /// process is gone.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    fn crash() -> io::Error {
        io::Error::other("injected crash: write budget exhausted")
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.is_dead() {
            Err(Self::crash())
        } else {
            Ok(())
        }
    }
}

#[derive(Debug)]
struct FailWriter {
    inner: Box<dyn StoreWriter>,
    fs: FailFs,
}

impl Write for FailWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.fs.check_alive()?;
        let remaining = self.fs.remaining.load(Ordering::SeqCst);
        let allowed = (buf.len() as u64).min(remaining) as usize;
        if allowed > 0 {
            self.inner.write_all(&buf[..allowed])?;
            // make the torn prefix visible on disk before "crashing"
            let _ = self.inner.flush();
            self.fs.written.fetch_add(allowed as u64, Ordering::SeqCst);
            self.fs.remaining.fetch_sub(allowed as u64, Ordering::SeqCst);
        }
        if allowed < buf.len() {
            self.fs.dead.store(true, Ordering::SeqCst);
            return Err(FailFs::crash());
        }
        Ok(allowed)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.fs.check_alive()?;
        self.inner.flush()
    }
}

impl StoreWriter for FailWriter {
    fn sync(&mut self) -> io::Result<()> {
        self.fs.check_alive()?;
        self.inner.sync()
    }
}

impl StoreFs for FailFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StoreWriter>> {
        self.check_alive()?;
        let inner = self.inner.create(path)?;
        Ok(Box::new(FailWriter { inner, fs: self.clone() }))
    }

    fn append_truncated(&self, path: &Path, len: u64) -> io::Result<Box<dyn StoreWriter>> {
        self.check_alive()?;
        let inner = self.inner.append_truncated(path, len)?;
        Ok(Box::new(FailWriter { inner, fs: self.clone() }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.inner.remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.inner.sync_dir(dir)
    }
}

// ---------------------------------------------------------------------
// Little-endian payload codec shared by WAL records and segment entries
// ---------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Cursor over a payload slice; every getter is bounds-checked so a
/// logically corrupt (but checksum-valid) payload decodes to `None`
/// rather than panicking.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    pub(crate) fn str(&mut self) -> Option<&'a str> {
        let len = self.u32()? as usize;
        let bytes = self.buf.get(self.pos..self.pos + len)?;
        self.pos += len;
        std::str::from_utf8(bytes).ok()
    }

    pub(crate) fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn frame_round_trip_and_torn_detection() {
        let mut buf = Vec::new();
        encode_frame(b"hello", &mut buf);
        encode_frame(b"", &mut buf);
        let FrameRead::Frame { payload, next } = read_frame(&buf, 0) else {
            panic!("first frame should parse")
        };
        assert_eq!(payload, b"hello");
        let FrameRead::Frame { payload, next } = read_frame(&buf, next) else {
            panic!("empty frame should parse")
        };
        assert_eq!(payload, b"");
        assert_eq!(read_frame(&buf, next), FrameRead::End);
        // every strict prefix that cuts into a frame is torn, not a panic
        for cut in 1..buf.len() {
            match read_frame(&buf[..cut], 0) {
                FrameRead::Frame { .. } if cut >= FRAME_HEADER + 5 => {}
                FrameRead::Torn => {}
                other => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
        // single byte flips always fail the checksum or the structure
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            let mut pos = 0;
            let mut payloads: Vec<Vec<u8>> = Vec::new();
            while let FrameRead::Frame { payload, next } = read_frame(&bad, pos) {
                payloads.push(payload.to_vec());
                pos = next;
            }
            assert!(
                payloads != vec![b"hello".to_vec(), Vec::new()],
                "flip at {i} went undetected"
            );
        }
    }

    #[test]
    fn cursor_is_bounds_checked() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hi");
        put_u32(&mut buf, 7);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.str(), Some("hi"));
        assert_eq!(c.u32(), Some(7));
        assert!(c.at_end());
        assert_eq!(c.u32(), None);
        // truncated string length overruns cleanly
        let mut c = Cursor::new(&[10, 0, 0, 0, b'x']);
        assert_eq!(c.str(), None);
    }

    #[test]
    fn failfs_budget_tears_exactly() {
        let dir = std::env::temp_dir().join(format!("up2p-fsio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fs = FailFs::new(10);
        let mut w = fs.create(&dir.join("a")).unwrap();
        w.write_all(b"0123456").unwrap();
        assert!(w.write_all(b"789XYZ").is_err());
        assert_eq!(std::fs::read(dir.join("a")).unwrap(), b"0123456789");
        assert!(fs.is_dead());
        // everything after death fails
        assert!(fs.create(&dir.join("b")).is_err());
        assert!(fs.rename(&dir.join("a"), &dir.join("c")).is_err());
        assert!(w.flush().is_err());
        assert!(w.sync().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failfs_unlimited_counts_bytes() {
        let dir = std::env::temp_dir().join(format!("up2p-fsio-u-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fs = FailFs::unlimited();
        let mut w = fs.create(&dir.join("a")).unwrap();
        w.write_all(b"hello").unwrap();
        w.sync().unwrap();
        let mut w2 = fs.create(&dir.join("b")).unwrap();
        w2.write_all(b"!!").unwrap();
        assert_eq!(fs.bytes_written(), 7);
        assert!(!fs.is_dead());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn real_fs_append_truncated_drops_tail() {
        let dir = std::env::temp_dir().join(format!("up2p-fsio-t-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log");
        std::fs::write(&path, b"keep-me-TORNTAIL").unwrap();
        let mut w = RealFs.append_truncated(&path, 7).unwrap();
        w.write_all(b"+new").unwrap();
        w.sync().unwrap();
        drop(w);
        assert_eq!(std::fs::read(&path).unwrap(), b"keep-me+new");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
