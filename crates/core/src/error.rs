//! Unified error type for the U-P2P framework.

use std::fmt;
use up2p_schema::ValidationError;

/// Error produced by servent operations.
#[derive(Debug)]
pub enum CoreError {
    /// The servent has not joined a community with this id.
    UnknownCommunity(String),
    /// An object failed schema validation (all problems listed).
    Validation(Vec<ValidationError>),
    /// A community schema could not be parsed.
    Schema(up2p_schema::ParseSchemaError),
    /// A stylesheet failed to compile or apply.
    Stylesheet(up2p_xslt::XsltError),
    /// Object XML was malformed.
    Xml(up2p_xml::ParseXmlError),
    /// The local repository failed.
    Store(up2p_store::StoreError),
    /// A required form field was not supplied.
    MissingField(String),
    /// A referenced object/attachment is not available anywhere reachable.
    Unavailable(String),
    /// A downloaded payload did not hash to the requested key.
    IntegrityFailure {
        /// Key that was requested.
        expected: String,
        /// Key the payload actually hashed to.
        actual: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownCommunity(id) => write!(f, "not a member of community {id}"),
            CoreError::Validation(errs) => {
                write!(f, "object failed validation ({} problem(s)): ", errs.len())?;
                for (i, e) in errs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            CoreError::Schema(e) => write!(f, "{e}"),
            CoreError::Stylesheet(e) => write!(f, "{e}"),
            CoreError::Xml(e) => write!(f, "invalid object XML: {e}"),
            CoreError::Store(e) => write!(f, "{e}"),
            CoreError::MissingField(name) => write!(f, "missing required field {name:?}"),
            CoreError::Unavailable(what) => write!(f, "{what} is not available from any peer"),
            CoreError::IntegrityFailure { expected, actual } => {
                write!(f, "payload hash mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Schema(e) => Some(e),
            CoreError::Stylesheet(e) => Some(e),
            CoreError::Xml(e) => Some(e),
            CoreError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<up2p_schema::ParseSchemaError> for CoreError {
    fn from(e: up2p_schema::ParseSchemaError) -> Self {
        CoreError::Schema(e)
    }
}

impl From<up2p_xslt::XsltError> for CoreError {
    fn from(e: up2p_xslt::XsltError) -> Self {
        CoreError::Stylesheet(e)
    }
}

impl From<up2p_xml::ParseXmlError> for CoreError {
    fn from(e: up2p_xml::ParseXmlError) -> Self {
        CoreError::Xml(e)
    }
}

impl From<up2p_store::StoreError> for CoreError {
    fn from(e: up2p_store::StoreError) -> Self {
        CoreError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            CoreError::UnknownCommunity("x".into()).to_string(),
            "not a member of community x"
        );
        assert!(CoreError::MissingField("name".into()).to_string().contains("name"));
        let e = CoreError::IntegrityFailure { expected: "aa".into(), actual: "bb".into() };
        assert!(e.to_string().contains("mismatch"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
