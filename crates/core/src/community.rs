//! Communities: a schema plus stylesheets, *itself shareable as an
//! object* (the paper's central idea).

use crate::error::CoreError;
use crate::root::{ROOT_COMMUNITY_ID, ROOT_SCHEMA_XSD};
use up2p_schema::{parse_schema_str, Schema, SchemaBuilder};
use up2p_store::ResourceId;
use up2p_xml::{Document, ElementBuilder, NodeId};

/// A resource-sharing community: identity, descriptive metadata, the
/// shared-object schema, and optional custom stylesheets.
///
/// "In the context of U-P2P a community is defined by a schema and a set
/// of stylesheets" (§IV-A). The descriptive fields mirror Fig. 3.
#[derive(Debug, Clone)]
pub struct Community {
    /// Stable identifier — the content hash of the community object in
    /// the root community (or [`ROOT_COMMUNITY_ID`] for the root itself).
    pub id: String,
    /// Display name (`community/name`).
    pub name: String,
    /// Purpose description.
    pub description: String,
    /// Space-separated search keywords.
    pub keywords: String,
    /// Category label.
    pub category: String,
    /// Security note (paper: "not implemented today"; carried verbatim).
    pub security: String,
    /// Underlying protocol: `""`, `Napster`, `Gnutella` or `FastTrack`.
    pub protocol: String,
    /// The shared-object schema, as XSD text (travels with the community
    /// object as an attachment).
    pub schema_xsd: String,
    /// The parsed schema.
    pub schema: Schema,
    /// Custom view stylesheet (XSLT text), `None` = default.
    pub display_style: Option<String>,
    /// Custom create-form stylesheet.
    pub create_style: Option<String>,
    /// Custom search-form stylesheet.
    pub search_style: Option<String>,
    /// Custom indexed-attribute filter stylesheet (Fig. 1's fourth
    /// stylesheet).
    pub index_style: Option<String>,
}

impl Community {
    /// Creates a community from descriptive metadata and its schema text.
    /// The id is derived from the community object's canonical XML, so
    /// equal definitions get equal ids on every peer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Schema`] when the XSD does not parse.
    pub fn new(
        name: &str,
        description: &str,
        keywords: &str,
        category: &str,
        protocol: &str,
        schema_xsd: &str,
    ) -> Result<Community, CoreError> {
        let schema = parse_schema_str(schema_xsd)?;
        let mut c = Community {
            id: String::new(),
            name: name.to_string(),
            description: description.to_string(),
            keywords: keywords.to_string(),
            category: category.to_string(),
            security: String::new(),
            protocol: protocol.to_string(),
            schema_xsd: schema_xsd.to_string(),
            schema,
            display_style: None,
            create_style: None,
            search_style: None,
            index_style: None,
        };
        c.id = c.derive_id();
        Ok(c)
    }

    /// Creates a community directly from a [`SchemaBuilder`] — the
    /// paper's schema-generator tool flow: describe fields, get a
    /// community.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Schema`] if the generated XSD fails to
    /// re-parse (a builder bug; should not happen).
    pub fn from_builder(
        name: &str,
        description: &str,
        keywords: &str,
        category: &str,
        protocol: &str,
        builder: &SchemaBuilder,
    ) -> Result<Community, CoreError> {
        Community::new(name, description, keywords, category, protocol, &builder.to_xsd())
    }

    /// The built-in root community (Fig. 3 schema, fixed id).
    pub fn root() -> Community {
        let schema = parse_schema_str(ROOT_SCHEMA_XSD)
            .expect("the paper's Fig. 3 schema always parses");
        Community {
            id: ROOT_COMMUNITY_ID.to_string(),
            name: "Root Community".to_string(),
            description: "The community-sharing community that bootstraps U-P2P: \
                          its objects describe other communities."
                .to_string(),
            keywords: "community discovery bootstrap metaclass".to_string(),
            category: "meta".to_string(),
            security: String::new(),
            protocol: String::new(),
            schema_xsd: ROOT_SCHEMA_XSD.to_string(),
            schema,
            display_style: None,
            create_style: None,
            search_style: None,
            index_style: None,
        }
    }

    /// Attaches a custom view stylesheet (re-deriving the identity: the
    /// community object embeds stylesheet URIs).
    pub fn with_display_style(mut self, xslt: impl Into<String>) -> Self {
        self.display_style = Some(xslt.into());
        self.id = self.derive_id();
        self
    }

    /// Attaches a custom create-form stylesheet.
    pub fn with_create_style(mut self, xslt: impl Into<String>) -> Self {
        self.create_style = Some(xslt.into());
        self.id = self.derive_id();
        self
    }

    /// Attaches a custom search-form stylesheet.
    pub fn with_search_style(mut self, xslt: impl Into<String>) -> Self {
        self.search_style = Some(xslt.into());
        self.id = self.derive_id();
        self
    }

    /// Attaches a custom indexed-attribute filter stylesheet. The index
    /// filter is servent-local (Fig. 3 has no field for it), so the
    /// identity does not change.
    pub fn with_index_style(mut self, xslt: impl Into<String>) -> Self {
        self.index_style = Some(xslt.into());
        self
    }

    /// The URI under which this community's schema travels as an
    /// attachment of its community object.
    pub fn schema_uri(&self) -> String {
        format!("up2p:attachment:{}", ResourceId::for_bytes(self.schema_xsd.as_bytes()))
    }

    /// Renders this community as a community *object* conforming to the
    /// root schema (Fig. 3) — the act that makes communities discoverable
    /// like any other resource.
    pub fn to_object(&self) -> Document {
        let style_uri = |s: &Option<String>, kind: &str| match s {
            Some(text) => {
                format!("up2p:attachment:{}", ResourceId::for_bytes(text.as_bytes()))
            }
            None => format!("up2p:default:{kind}"),
        };
        ElementBuilder::new("community")
            .child_text("name", self.name.clone())
            .child_text("description", self.description.clone())
            .child_text("keywords", self.keywords.clone())
            .child_text("category", self.category.clone())
            .child_text("security", self.security.clone())
            .child_text("protocol", self.protocol.clone())
            .child_text("schema", self.schema_uri())
            .child_text("displaystyle", style_uri(&self.display_style, "display"))
            .child_text("createstyle", style_uri(&self.create_style, "create"))
            .child_text("searchstyle", style_uri(&self.search_style, "search"))
            .build()
    }

    /// Reconstructs a community from a downloaded community object plus
    /// its schema attachment — the "join" path of community discovery.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Xml`]/[`CoreError::Schema`] on malformed
    /// pieces, [`CoreError::MissingField`] when the object lacks required
    /// fields.
    pub fn from_object(doc: &Document, schema_xsd: &str) -> Result<Community, CoreError> {
        let root = doc
            .document_element()
            .ok_or_else(|| CoreError::MissingField("community".to_string()))?;
        let text = |name: &str| -> Result<String, CoreError> {
            doc.child_named(root, name)
                .map(|n| doc.text_content(n))
                .ok_or_else(|| CoreError::MissingField(name.to_string()))
        };
        let schema = parse_schema_str(schema_xsd)?;
        // identity comes from the object document itself, so it matches
        // the publisher's id regardless of which stylesheets this peer
        // manages to resolve
        let id = ResourceId::for_object(ROOT_COMMUNITY_ID, &doc.to_xml_string()).to_string();
        Ok(Community {
            id,
            name: text("name")?,
            description: text("description")?,
            keywords: text("keywords")?,
            category: text("category")?,
            security: text("security")?,
            protocol: text("protocol")?,
            schema_xsd: schema_xsd.to_string(),
            schema,
            display_style: None,
            create_style: None,
            search_style: None,
            index_style: None,
        })
    }

    /// Like [`Community::from_object`], additionally resolving custom
    /// stylesheets from downloaded attachments by their content URIs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Community::from_object`].
    pub fn from_object_with_attachments(
        doc: &Document,
        schema_xsd: &str,
        attachments: &[(String, String)],
    ) -> Result<Community, CoreError> {
        let mut c = Community::from_object(doc, schema_xsd)?;
        let root = doc
            .document_element()
            .ok_or_else(|| CoreError::MissingField("community".to_string()))?;
        let resolve = |field: &str| -> Option<String> {
            let uri = doc.child_named(root, field).map(|n| doc.text_content(n))?;
            if !uri.starts_with("up2p:attachment:") {
                return None;
            }
            attachments.iter().find(|(u, _)| u == &uri).map(|(_, text)| text.clone())
        };
        c.display_style = resolve("displaystyle");
        c.create_style = resolve("createstyle");
        c.search_style = resolve("searchstyle");
        Ok(c)
    }

    fn derive_id(&self) -> String {
        ResourceId::for_object(ROOT_COMMUNITY_ID, &self.to_object().to_xml_string()).to_string()
    }

    /// The root element name instances of this community use.
    pub fn object_root_name(&self) -> &str {
        self.schema.root_element().map(|e| e.name.as_str()).unwrap_or("object")
    }

    /// Validates an instance document against the community schema.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Validation`] listing every problem.
    pub fn validate(&self, doc: &Document) -> Result<(), CoreError> {
        up2p_schema::Validator::new(&self.schema)
            .validate(doc)
            .map_err(CoreError::Validation)
    }

    /// Field paths this community indexes (searchable fields, honoring
    /// the schema's markers with the textual-leaf default).
    pub fn indexed_paths(&self) -> Vec<String> {
        up2p_schema::searchable_fields(&self.schema).into_iter().map(|f| f.path).collect()
    }

    /// Attachment field paths of the community schema.
    pub fn attachment_paths(&self) -> Vec<String> {
        up2p_schema::attachment_fields(&self.schema).into_iter().map(|f| f.path).collect()
    }

    /// Finds the element holding an attachment URI inside an instance.
    pub fn attachment_nodes(&self, doc: &Document) -> Vec<NodeId> {
        let mut out = Vec::new();
        for path in self.attachment_paths() {
            if let Ok(xp) = up2p_xml::XPath::parse(&format!("/{path}")) {
                if let Ok(nodes) = xp.select_nodes(doc, doc.root()) {
                    out.extend(nodes);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use up2p_schema::{FieldKind, Validator};

    fn song_builder() -> SchemaBuilder {
        let mut b = SchemaBuilder::new("song");
        b.field(FieldKind::text("title").searchable())
            .field(FieldKind::text("artist").searchable())
            .field(FieldKind::uri("audio").attachment());
        b
    }

    #[test]
    fn community_ids_are_deterministic() {
        let a = Community::from_builder("mp3", "songs", "music", "audio", "Gnutella", &song_builder())
            .unwrap();
        let b = Community::from_builder("mp3", "songs", "music", "audio", "Gnutella", &song_builder())
            .unwrap();
        assert_eq!(a.id, b.id);
        let c = Community::from_builder("cml", "songs", "music", "audio", "Gnutella", &song_builder())
            .unwrap();
        assert_ne!(a.id, c.id);
    }

    #[test]
    fn community_object_validates_against_root_schema() {
        let c = Community::from_builder("mp3", "songs", "music", "audio", "Gnutella", &song_builder())
            .unwrap();
        let obj = c.to_object();
        let root = Community::root();
        Validator::new(&root.schema).validate(&obj).unwrap();
    }

    #[test]
    fn community_round_trips_through_its_object() {
        let original =
            Community::from_builder("mp3", "songs", "music jazz", "audio", "FastTrack", &song_builder())
                .unwrap();
        let obj = original.to_object();
        let rebuilt = Community::from_object(&obj, &original.schema_xsd).unwrap();
        assert_eq!(rebuilt.id, original.id, "same object + schema = same identity");
        assert_eq!(rebuilt.name, "mp3");
        assert_eq!(rebuilt.protocol, "FastTrack");
        assert_eq!(rebuilt.keywords, "music jazz");
    }

    #[test]
    fn root_community_is_fixed() {
        let r = Community::root();
        assert_eq!(r.id, ROOT_COMMUNITY_ID);
        assert_eq!(r.object_root_name(), "community");
        // root community indexes its descriptive fields
        let paths = r.indexed_paths();
        assert!(paths.contains(&"community/name".to_string()));
        assert!(paths.contains(&"community/keywords".to_string()));
    }

    #[test]
    fn invalid_schema_rejected() {
        assert!(matches!(
            Community::new("x", "d", "k", "c", "", "<notaschema/>"),
            Err(CoreError::Schema(_))
        ));
    }

    #[test]
    fn validate_delegates_to_schema() {
        let c = Community::from_builder("mp3", "d", "k", "c", "", &song_builder()).unwrap();
        let good = Document::parse(
            "<song><title>t</title><artist>a</artist><audio>u</audio></song>",
        )
        .unwrap();
        assert!(c.validate(&good).is_ok());
        let bad = Document::parse("<song><title>t</title></song>").unwrap();
        assert!(matches!(c.validate(&bad), Err(CoreError::Validation(_))));
    }

    #[test]
    fn indexed_and_attachment_paths() {
        let c = Community::from_builder("mp3", "d", "k", "c", "", &song_builder()).unwrap();
        assert_eq!(c.indexed_paths(), vec!["song/title", "song/artist"]);
        assert_eq!(c.attachment_paths(), vec!["song/audio"]);
        let doc = Document::parse(
            "<song><title>t</title><artist>a</artist><audio>up2p:attachment:abc</audio></song>",
        )
        .unwrap();
        assert_eq!(c.attachment_nodes(&doc).len(), 1);
    }

    #[test]
    fn custom_stylesheets_change_object_uris() {
        let base = Community::from_builder("mp3", "d", "k", "c", "", &song_builder()).unwrap();
        let styled = Community::from_builder("mp3", "d", "k", "c", "", &song_builder())
            .unwrap()
            .with_display_style("<xsl:stylesheet/>");
        let base_obj = base.to_object();
        let styled_obj = styled.to_object();
        assert_ne!(base_obj.to_xml_string(), styled_obj.to_xml_string());
        assert!(base_obj.to_xml_string().contains("up2p:default:display"));
        assert!(styled_obj.to_xml_string().contains("up2p:attachment:"));
    }

    #[test]
    fn missing_fields_detected_on_join() {
        let doc = Document::parse("<community><name>x</name></community>").unwrap();
        assert!(matches!(
            Community::from_object(&doc, ROOT_SCHEMA_XSD),
            Err(CoreError::MissingField(_))
        ));
    }
}
