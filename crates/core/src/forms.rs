//! Schema-derived form models — the Creation and Search Functions of
//! Fig. 1/2.
//!
//! The schema is interpreted once into a [`FormModel`] (an XML document of
//! `<form>`/`<field>` elements); XSLT stylesheets then render that model
//! to HTML. Splitting interpretation (Rust) from presentation (XSLT)
//! keeps the paper's pipeline — "XSLT stylesheets render screens for
//! creating, viewing and searching" — while letting the searchable-field
//! rules live in one place.

use crate::community::Community;
use crate::error::CoreError;
use up2p_schema::{leaf_fields, searchable_fields, BuiltinType, Field};
use up2p_xml::{Document, ElementBuilder};

/// Which function the form serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormKind {
    /// Object creation: every leaf field appears.
    Create,
    /// Search: only searchable fields appear.
    Search,
}

/// Input widget chosen for a field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputKind {
    /// Free text.
    Text,
    /// Numeric input.
    Number,
    /// URI input.
    Uri,
    /// Date input.
    Date,
    /// Boolean checkbox.
    Checkbox,
    /// Closed vocabulary dropdown.
    Select(Vec<String>),
}

/// One form field derived from a schema leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormField {
    /// Leaf element name.
    pub name: String,
    /// Full slash path from the object root.
    pub path: String,
    /// Chosen widget.
    pub input: InputKind,
    /// Required on create forms (`minOccurs > 0`).
    pub required: bool,
    /// May repeat (`maxOccurs > 1`).
    pub repeated: bool,
    /// Holds an attachment URI.
    pub attachment: bool,
}

/// A form derived from a community schema.
#[derive(Debug, Clone, PartialEq)]
pub struct FormModel {
    /// Community id the form belongs to.
    pub community_id: String,
    /// Community display name.
    pub community_name: String,
    /// Create or search.
    pub kind: FormKind,
    /// Fields in schema order.
    pub fields: Vec<FormField>,
}

fn input_for(field: &Field) -> InputKind {
    if !field.enumeration.is_empty() {
        return InputKind::Select(field.enumeration.clone());
    }
    match field.base {
        BuiltinType::Boolean => InputKind::Checkbox,
        b if b.is_numeric() => InputKind::Number,
        BuiltinType::AnyUri => InputKind::Uri,
        BuiltinType::Date | BuiltinType::DateTime | BuiltinType::GYear => InputKind::Date,
        _ => InputKind::Text,
    }
}

impl FormModel {
    /// Derives a form of the given kind from a community's schema.
    pub fn derive(community: &Community, kind: FormKind) -> FormModel {
        let fields = match kind {
            FormKind::Create => leaf_fields(&community.schema),
            FormKind::Search => searchable_fields(&community.schema),
        };
        FormModel {
            community_id: community.id.clone(),
            community_name: community.name.clone(),
            kind,
            fields: fields
                .iter()
                .map(|f| FormField {
                    name: f.name.clone(),
                    path: f.path.clone(),
                    input: input_for(f),
                    required: !f.optional && kind == FormKind::Create,
                    repeated: f.repeated,
                    attachment: f.attachment,
                })
                .collect(),
        }
    }

    /// Serializes the form model as XML — the document the create/search
    /// stylesheets transform into HTML.
    pub fn to_document(&self) -> Document {
        let mut form = ElementBuilder::new("form")
            .attr("community", self.community_id.clone())
            .attr("communityname", self.community_name.clone())
            .attr(
                "kind",
                match self.kind {
                    FormKind::Create => "create",
                    FormKind::Search => "search",
                },
            );
        for f in &self.fields {
            let mut fe = ElementBuilder::new("field")
                .attr("name", f.name.clone())
                .attr("path", f.path.clone())
                .attr(
                    "input",
                    match &f.input {
                        InputKind::Text => "text",
                        InputKind::Number => "number",
                        InputKind::Uri => "uri",
                        InputKind::Date => "date",
                        InputKind::Checkbox => "checkbox",
                        InputKind::Select(_) => "select",
                    },
                );
            if f.required {
                fe = fe.attr("required", "true");
            }
            if f.repeated {
                fe = fe.attr("repeated", "true");
            }
            if f.attachment {
                fe = fe.attr("attachment", "true");
            }
            if let InputKind::Select(options) = &f.input {
                for o in options {
                    fe = fe.child(ElementBuilder::new("option").text(o.clone()));
                }
            }
            form = form.child(fe);
        }
        form.build()
    }

    /// Builds an object document from filled-in form values, in schema
    /// order. `values` maps a field *path or leaf name* to one or more
    /// values (repeated fields supply several entries).
    ///
    /// Nested paths create the intermediate elements. The result is
    /// validated by the caller ([`crate::Servent::create_object`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MissingField`] when a required field has no
    /// value.
    pub fn fill(
        &self,
        root_name: &str,
        values: &[(&str, &str)],
    ) -> Result<Document, CoreError> {
        let mut doc = Document::new();
        let root = doc.create_element(
            root_name.parse().unwrap_or_else(|_| "object".into()),
        );
        let doc_root = doc.root();
        doc.append_child(doc_root, root);
        for field in &self.fields {
            let matched: Vec<&str> = values
                .iter()
                .filter(|(k, _)| *k == field.path || *k == field.name)
                .map(|(_, v)| *v)
                .collect();
            if matched.is_empty() {
                if field.required {
                    return Err(CoreError::MissingField(field.path.clone()));
                }
                continue;
            }
            // create intermediate elements for nested paths (skip the
            // root segment, it already exists)
            for value in matched {
                let mut parent = root;
                let segments: Vec<&str> = field.path.split('/').skip(1).collect();
                for (i, seg) in segments.iter().enumerate() {
                    let last = i == segments.len() - 1;
                    if last {
                        let el = doc.create_element((*seg).into());
                        doc.append_child(parent, el);
                        let t = doc.create_text(value);
                        doc.append_child(el, t);
                    } else {
                        parent = match doc.child_named(parent, seg) {
                            Some(existing) => existing,
                            None => {
                                let el = doc.create_element((*seg).into());
                                doc.append_child(parent, el);
                                el
                            }
                        };
                    }
                }
            }
        }
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use up2p_schema::{FieldKind, SchemaBuilder};

    fn community() -> Community {
        let mut b = SchemaBuilder::new("song");
        b.field(FieldKind::text("title").searchable())
            .field(FieldKind::enumeration("genre", ["rock", "jazz"]).searchable())
            .field(FieldKind::integer("year").optional())
            .field(FieldKind::boolean("live").optional())
            .field(FieldKind::text("tag").optional().repeated())
            .field(FieldKind::uri("audio").attachment());
        Community::from_builder("mp3", "d", "k", "c", "", &b).unwrap()
    }

    #[test]
    fn create_form_lists_all_fields() {
        let c = community();
        let form = FormModel::derive(&c, FormKind::Create);
        assert_eq!(form.fields.len(), 6);
        assert!(form.fields[0].required);
        assert!(!form.fields[2].required, "optional year");
        assert!(form.fields[4].repeated);
        assert!(form.fields[5].attachment);
        assert_eq!(form.fields[1].input, InputKind::Select(vec!["rock".into(), "jazz".into()]));
        assert_eq!(form.fields[2].input, InputKind::Number);
        assert_eq!(form.fields[3].input, InputKind::Checkbox);
        assert_eq!(form.fields[5].input, InputKind::Uri);
    }

    #[test]
    fn search_form_lists_searchable_only() {
        let c = community();
        let form = FormModel::derive(&c, FormKind::Search);
        let names: Vec<&str> = form.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["title", "genre"]);
        assert!(form.fields.iter().all(|f| !f.required), "search fields never required");
    }

    #[test]
    fn form_document_shape() {
        let c = community();
        let doc = FormModel::derive(&c, FormKind::Create).to_document();
        let root = doc.document_element().unwrap();
        assert_eq!(doc.local_name(root), Some("form"));
        assert_eq!(doc.attr(root, "kind"), Some("create"));
        assert_eq!(doc.children_named(root, "field").count(), 6);
        // select options serialized
        let genre = doc
            .children_named(root, "field")
            .find(|&f| doc.attr(f, "name") == Some("genre"))
            .unwrap();
        assert_eq!(doc.children_named(genre, "option").count(), 2);
    }

    #[test]
    fn fill_builds_valid_instances() {
        let c = community();
        let form = FormModel::derive(&c, FormKind::Create);
        let doc = form
            .fill(
                "song",
                &[
                    ("title", "So What"),
                    ("genre", "jazz"),
                    ("tag", "modal"),
                    ("tag", "1959"),
                    ("audio", "up2p:attachment:x"),
                ],
            )
            .unwrap();
        c.validate(&doc).unwrap();
        assert_eq!(
            doc.to_xml_string(),
            "<song><title>So What</title><genre>jazz</genre><tag>modal</tag>\
             <tag>1959</tag><audio>up2p:attachment:x</audio></song>"
        );
    }

    #[test]
    fn fill_rejects_missing_required() {
        let c = community();
        let form = FormModel::derive(&c, FormKind::Create);
        let err = form.fill("song", &[("genre", "jazz")]).unwrap_err();
        assert!(matches!(err, CoreError::MissingField(p) if p == "song/title"));
    }

    #[test]
    fn fill_handles_nested_paths() {
        let mut b = SchemaBuilder::new("pattern");
        b.field(FieldKind::text("name"))
            .field(FieldKind::nested("solution", [FieldKind::text("structure")]));
        let c = Community::from_builder("p", "d", "k", "c", "", &b).unwrap();
        let form = FormModel::derive(&c, FormKind::Create);
        let doc = form
            .fill("pattern", &[("name", "Observer"), ("pattern/solution/structure", "UML")])
            .unwrap();
        assert_eq!(
            doc.to_xml_string(),
            "<pattern><name>Observer</name><solution><structure>UML</structure></solution></pattern>"
        );
        c.validate(&doc).unwrap();
    }
}
