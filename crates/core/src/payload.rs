//! The payload plane: content-addressed object/attachment bytes.
//!
//! The metadata fabric (`up2p-net`) decides *whether and at what cost* a
//! retrieval succeeds; the payload plane is the simulator's stand-in for
//! the direct peer-to-peer transfer that then moves the actual XML and
//! attachment bytes. Integrity is enforced: payloads must hash to the key
//! they are fetched under.

use crate::error::CoreError;
use crate::object::{Attachment, SharedObject};
use std::collections::HashMap;
use up2p_store::ResourceId;
use up2p_xml::Document;

/// Published object payloads, keyed by content hash.
#[derive(Debug, Clone, Default)]
pub struct PayloadPlane {
    objects: HashMap<String, StoredPayload>,
    attachments: HashMap<String, bytes::Bytes>,
}

#[derive(Debug, Clone)]
struct StoredPayload {
    community_id: String,
    xml: String,
    attachment_uris: Vec<String>,
}

impl PayloadPlane {
    /// Creates an empty plane.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an object's payload (called on publish).
    pub fn put(&mut self, object: &SharedObject) {
        for a in &object.attachments {
            self.attachments.insert(a.uri.clone(), a.data.clone());
        }
        self.objects.insert(
            object.key.clone(),
            StoredPayload {
                community_id: object.community_id.clone(),
                xml: object.xml(),
                attachment_uris: object.attachments.iter().map(|a| a.uri.clone()).collect(),
            },
        );
    }

    /// Registers raw attachment bytes (e.g. a community schema).
    pub fn put_attachment(&mut self, attachment: &Attachment) {
        self.attachments.insert(attachment.uri.clone(), attachment.data.clone());
    }

    /// Fetches attachment bytes by URI.
    pub fn attachment(&self, uri: &str) -> Option<bytes::Bytes> {
        self.attachments.get(uri).cloned()
    }

    /// Number of registered object payloads.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when no payloads are registered.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Materializes the object stored under `key`, verifying integrity
    /// and pulling its attachments ("attachments are only downloaded when
    /// the object is retrieved", §IV-C1).
    ///
    /// # Errors
    ///
    /// [`CoreError::Unavailable`] when the key or an attachment is
    /// unknown; [`CoreError::IntegrityFailure`] when the payload does not
    /// hash to `key`; [`CoreError::Xml`] when the stored XML is corrupt.
    pub fn fetch(&self, key: &str) -> Result<SharedObject, CoreError> {
        let stored = self
            .objects
            .get(key)
            .ok_or_else(|| CoreError::Unavailable(format!("object {key}")))?;
        let doc = Document::parse(&stored.xml)?;
        let actual =
            ResourceId::for_object(&stored.community_id, &doc.to_xml_string()).to_string();
        if actual != key {
            return Err(CoreError::IntegrityFailure {
                expected: key.to_string(),
                actual,
            });
        }
        let mut attachments = Vec::new();
        for uri in &stored.attachment_uris {
            let data = self
                .attachments
                .get(uri)
                .cloned()
                .ok_or_else(|| CoreError::Unavailable(format!("attachment {uri}")))?;
            let att = Attachment { uri: uri.clone(), data };
            if !att.verify() {
                return Err(CoreError::IntegrityFailure {
                    expected: uri.clone(),
                    actual: format!(
                        "up2p:attachment:{}",
                        ResourceId::for_bytes(&att.data)
                    ),
                });
            }
            attachments.push(att);
        }
        Ok(SharedObject {
            key: key.to_string(),
            community_id: stored.community_id.clone(),
            doc,
            attachments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn object() -> SharedObject {
        let doc = Document::parse("<song><title>x</title></song>").unwrap();
        SharedObject::new(
            "mp3",
            doc,
            vec![Attachment::from_bytes(&b"bytes"[..])],
        )
    }

    #[test]
    fn put_fetch_round_trip() {
        let mut plane = PayloadPlane::new();
        let o = object();
        plane.put(&o);
        let fetched = plane.fetch(&o.key).unwrap();
        assert_eq!(fetched.xml(), o.xml());
        assert_eq!(fetched.attachments.len(), 1);
        assert_eq!(fetched.attachments[0].data, o.attachments[0].data);
        assert_eq!(plane.len(), 1);
    }

    #[test]
    fn unknown_key_unavailable() {
        let plane = PayloadPlane::new();
        assert!(matches!(plane.fetch("nope"), Err(CoreError::Unavailable(_))));
    }

    #[test]
    fn integrity_enforced() {
        let mut plane = PayloadPlane::new();
        let o = object();
        plane.put(&o);
        // register tampered XML under the honest key
        plane.objects.get_mut(&o.key).unwrap().xml =
            "<song><title>evil</title></song>".to_string();
        assert!(matches!(plane.fetch(&o.key), Err(CoreError::IntegrityFailure { .. })));
    }

    #[test]
    fn attachment_integrity_enforced() {
        let mut plane = PayloadPlane::new();
        let o = object();
        plane.put(&o);
        let uri = o.attachments[0].uri.clone();
        plane.attachments.insert(uri, bytes::Bytes::from_static(b"tampered"));
        assert!(matches!(plane.fetch(&o.key), Err(CoreError::IntegrityFailure { .. })));
    }

    #[test]
    fn standalone_attachments() {
        let mut plane = PayloadPlane::new();
        let a = Attachment::from_bytes(&b"schema text"[..]);
        plane.put_attachment(&a);
        assert_eq!(plane.attachment(&a.uri).unwrap(), a.data);
        assert!(plane.attachment("up2p:attachment:unknown").is_none());
    }
}
