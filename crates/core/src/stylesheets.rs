//! Default stylesheets — "U-P2P provides default stylesheets that operate
//! on any community schema, but users are encouraged to create their own"
//! (§IV-A).
//!
//! Four stylesheets per community (Fig. 1): create form, search form,
//! view, and the indexed-attribute filter. The create/search defaults
//! transform the schema-derived form model; the view default transforms
//! the object document itself; the index default is *generated* from the
//! community schema's searchable fields.

use crate::community::Community;
use crate::error::CoreError;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use up2p_xml::Document;
use up2p_xslt::Stylesheet;

/// Compile-once stylesheet store: maps stylesheet *content* to its
/// compiled [`Stylesheet`], so the render paths pay XSLT compilation once
/// per distinct sheet instead of once per call. Keys are an FNV-1a hash
/// of the source; each bucket stores the source text alongside the
/// compiled sheet, so a hash collision degrades to a second compile, not
/// a wrong answer. Compiled sheets are shared as `Arc<Stylesheet>` —
/// [`Stylesheet`] is immutable after parse, so pool workers serving
/// concurrent renders read the same compiled program.
///
/// Parse errors are never cached: a broken custom stylesheet reports its
/// error on every call and leaves the cache untouched.
pub struct StylesheetCache {
    sheets: RwLock<HashMap<u64, Vec<CachedSheet>>>,
}

struct CachedSheet {
    source: String,
    sheet: Arc<Stylesheet>,
}

impl StylesheetCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        StylesheetCache { sheets: RwLock::with_name("core.style_cache", HashMap::new()) }
    }

    /// The process-wide cache used by [`render_form`], [`render_view`]
    /// and [`apply_index_style`].
    pub fn global() -> &'static StylesheetCache {
        static GLOBAL: OnceLock<StylesheetCache> = OnceLock::new();
        GLOBAL.get_or_init(StylesheetCache::new)
    }

    /// Returns the compiled stylesheet for `source`, compiling and
    /// caching it on first sight.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stylesheet`] when the source fails to
    /// compile (nothing is cached in that case).
    pub fn get(&self, source: &str) -> Result<Arc<Stylesheet>, CoreError> {
        let key = fnv1a(source.as_bytes());
        {
            let sheets = self.sheets.read();
            if let Some(found) = Self::lookup(&sheets, key, source) {
                return Ok(found);
            }
        }
        // Compile outside any lock: compilation may be slow and may
        // fail, and neither should happen under the write guard.
        let compiled = Arc::new(Stylesheet::parse(source)?);
        let mut sheets = self.sheets.write();
        // Double-check: another thread may have compiled it meanwhile.
        if let Some(found) = Self::lookup(&sheets, key, source) {
            return Ok(found);
        }
        sheets
            .entry(key)
            .or_default()
            .push(CachedSheet { source: source.to_string(), sheet: Arc::clone(&compiled) });
        Ok(compiled)
    }

    fn lookup(
        sheets: &HashMap<u64, Vec<CachedSheet>>,
        key: u64,
        source: &str,
    ) -> Option<Arc<Stylesheet>> {
        sheets
            .get(&key)?
            .iter()
            .find(|c| c.source == source)
            .map(|c| Arc::clone(&c.sheet))
    }

    /// Number of distinct compiled stylesheets held.
    pub fn len(&self) -> usize {
        self.sheets.read().values().map(Vec::len).sum()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for StylesheetCache {
    fn default() -> Self {
        StylesheetCache::new()
    }
}

impl std::fmt::Debug for StylesheetCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StylesheetCache").field("sheets", &self.len()).finish()
    }
}

/// FNV-1a over the stylesheet source — stable, dependency-free, and good
/// enough as a cache key when collisions are verified against the stored
/// source.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The compiled [`DEFAULT_FORM_XSL`], parsed once per process.
fn default_form_sheet() -> Result<Arc<Stylesheet>, CoreError> {
    static SHEET: OnceLock<Arc<Stylesheet>> = OnceLock::new();
    if let Some(sheet) = SHEET.get() {
        return Ok(Arc::clone(sheet));
    }
    let parsed = Arc::new(Stylesheet::parse(DEFAULT_FORM_XSL)?);
    Ok(Arc::clone(SHEET.get_or_init(|| parsed)))
}

/// The compiled [`DEFAULT_VIEW_XSL`], parsed once per process.
fn default_view_sheet() -> Result<Arc<Stylesheet>, CoreError> {
    static SHEET: OnceLock<Arc<Stylesheet>> = OnceLock::new();
    if let Some(sheet) = SHEET.get() {
        return Ok(Arc::clone(sheet));
    }
    let parsed = Arc::new(Stylesheet::parse(DEFAULT_VIEW_XSL)?);
    Ok(Arc::clone(SHEET.get_or_init(|| parsed)))
}

/// Default stylesheet rendering a form-model document to an HTML form
/// (both create and search; the `kind` attribute parameterizes it).
pub const DEFAULT_FORM_XSL: &str = r#"<xsl:stylesheet version="1.0"
    xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:output method="html"/>
  <xsl:template match="/form">
    <form class="up2p-{@kind}" action="up2p:{@kind}" method="post">
      <h2><xsl:value-of select="@communityname"/>
        <xsl:text> — </xsl:text>
        <xsl:choose>
          <xsl:when test="@kind = 'create'"><xsl:text>share an object</xsl:text></xsl:when>
          <xsl:otherwise><xsl:text>search</xsl:text></xsl:otherwise>
        </xsl:choose>
      </h2>
      <table>
        <xsl:apply-templates select="field"/>
      </table>
      <input type="submit" value="{@kind}"/>
    </form>
  </xsl:template>
  <xsl:template match="field">
    <tr>
      <td class="label">
        <label for="{@name}"><xsl:value-of select="@name"/>
          <xsl:if test="@required = 'true'"><b>*</b></xsl:if>
        </label>
      </td>
      <td>
        <xsl:choose>
          <xsl:when test="@input = 'select'">
            <select name="{@path}" id="{@name}">
              <xsl:for-each select="option">
                <option value="{.}"><xsl:value-of select="."/></option>
              </xsl:for-each>
            </select>
          </xsl:when>
          <xsl:when test="@input = 'checkbox'">
            <input type="checkbox" name="{@path}" id="{@name}"/>
          </xsl:when>
          <xsl:when test="@input = 'number'">
            <input type="text" class="number" name="{@path}" id="{@name}"/>
          </xsl:when>
          <xsl:when test="@attachment = 'true'">
            <input type="file" name="{@path}" id="{@name}"/>
          </xsl:when>
          <xsl:otherwise>
            <input type="text" name="{@path}" id="{@name}"/>
          </xsl:otherwise>
        </xsl:choose>
      </td>
    </tr>
  </xsl:template>
</xsl:stylesheet>"#;

/// Default view stylesheet: renders *any* object document as nested
/// definition lists, labelling elements by name — tailored to "more
/// simple formats" per §V (complex communities ship a custom one).
pub const DEFAULT_VIEW_XSL: &str = r#"<xsl:stylesheet version="1.0"
    xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:output method="html"/>
  <xsl:template match="/">
    <div class="up2p-view">
      <xsl:apply-templates select="*"/>
    </div>
  </xsl:template>
  <xsl:template match="*">
    <dl>
      <dt><xsl:value-of select="name()"/></dt>
      <dd>
        <xsl:choose>
          <xsl:when test="count(*) &gt; 0"><xsl:apply-templates select="*"/></xsl:when>
          <xsl:otherwise><xsl:value-of select="."/></xsl:otherwise>
        </xsl:choose>
      </dd>
    </dl>
  </xsl:template>
</xsl:stylesheet>"#;

/// Generates the default indexed-attribute filter stylesheet for a
/// community: an XSLT that transforms an object document into
/// `<indexed><field path="...">value</field>...</indexed>` for exactly
/// the community's searchable fields. Equivalent to the native Rust
/// extraction path (tested to agree).
pub fn default_index_xsl(community: &Community) -> String {
    let mut body = String::new();
    for path in community.indexed_paths() {
        body.push_str(&format!(
            r#"<xsl:for-each select="/{path}"><field path="{path}"><xsl:value-of select="."/></field></xsl:for-each>"#
        ));
    }
    format!(
        r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="/"><indexed>{body}</indexed></xsl:template>
</xsl:stylesheet>"#
    )
}

/// Applies a form stylesheet (custom or [`DEFAULT_FORM_XSL`]) to a form
/// model document, producing HTML.
///
/// # Errors
///
/// Returns [`CoreError::Stylesheet`] when the stylesheet fails to compile
/// or apply.
pub fn render_form(form_doc: &Document, custom: Option<&str>) -> Result<String, CoreError> {
    let sheet = match custom {
        Some(source) => StylesheetCache::global().get(source)?,
        None => default_form_sheet()?,
    };
    Ok(sheet.apply_to_string(form_doc)?)
}

/// Applies a view stylesheet (custom or [`DEFAULT_VIEW_XSL`]) to an
/// object document, producing HTML.
///
/// # Errors
///
/// Returns [`CoreError::Stylesheet`] on stylesheet failure.
pub fn render_view(object_doc: &Document, custom: Option<&str>) -> Result<String, CoreError> {
    let sheet = match custom {
        Some(source) => StylesheetCache::global().get(source)?,
        None => default_view_sheet()?,
    };
    Ok(sheet.apply_to_string(object_doc)?)
}

/// Runs an indexed-attribute filter stylesheet over an object document
/// and parses the `(path, value)` pairs out of the result.
///
/// # Errors
///
/// Returns [`CoreError::Stylesheet`]/[`CoreError::Xml`] on failures.
pub fn apply_index_style(
    xslt: &str,
    object_doc: &Document,
) -> Result<Vec<(String, String)>, CoreError> {
    let sheet = StylesheetCache::global().get(xslt)?;
    let result = sheet.apply(object_doc)?;
    let mut out = Vec::new();
    let Some(root) = result.document_element() else {
        return Ok(out);
    };
    for field in result.children_named(root, "field") {
        if let Some(path) = result.attr(field, "path") {
            let value = result.text_content(field);
            let trimmed = value.trim();
            if !trimmed.is_empty() {
                out.push((path.to_string(), trimmed.to_string()));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forms::{FormKind, FormModel};
    use up2p_schema::{FieldKind, SchemaBuilder};
    use up2p_store::Repository;

    fn community() -> Community {
        let mut b = SchemaBuilder::new("song");
        b.field(FieldKind::text("title").searchable())
            .field(FieldKind::enumeration("genre", ["rock", "jazz"]).searchable())
            .field(FieldKind::uri("audio").attachment());
        Community::from_builder("mp3", "d", "k", "c", "", &b).unwrap()
    }

    #[test]
    fn default_create_form_renders_inputs() {
        let c = community();
        let doc = FormModel::derive(&c, FormKind::Create).to_document();
        let html = render_form(&doc, None).unwrap();
        assert!(html.contains(r#"<form class="up2p-create""#), "{html}");
        assert!(html.contains(r#"name="song/title""#));
        assert!(html.contains("<select name=\"song/genre\""));
        assert!(html.contains(r#"<option value="jazz">jazz</option>"#));
        assert!(html.contains(r#"type="file""#), "attachment renders as file input");
        assert!(html.contains("<b>*</b>"), "required marker");
    }

    #[test]
    fn default_search_form_renders_searchable_only() {
        let c = community();
        let doc = FormModel::derive(&c, FormKind::Search).to_document();
        let html = render_form(&doc, None).unwrap();
        assert!(html.contains("up2p-search"));
        assert!(html.contains("song/title"));
        assert!(!html.contains("song/audio"), "attachment not searchable: {html}");
    }

    #[test]
    fn default_view_renders_any_object() {
        let doc = Document::parse(
            "<song><title>So What</title><meta><bpm>136</bpm></meta></song>",
        )
        .unwrap();
        let html = render_view(&doc, None).unwrap();
        assert!(html.contains("<dt>song</dt>"));
        assert!(html.contains("<dt>title</dt>"));
        assert!(html.contains("<dd>So What</dd>"));
        assert!(html.contains("<dt>bpm</dt>"), "nested elements recurse: {html}");
    }

    #[test]
    fn custom_stylesheet_overrides_default() {
        let custom = r#"<xsl:stylesheet version="1.0"
            xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
          <xsl:output method="html"/>
          <xsl:template match="/"><h1>CUSTOM<xsl:value-of select="//title"/></h1></xsl:template>
        </xsl:stylesheet>"#;
        let doc = Document::parse("<song><title>x</title></song>").unwrap();
        let html = render_view(&doc, Some(custom)).unwrap();
        assert_eq!(html, "<h1>CUSTOMx</h1>");
    }

    #[test]
    fn index_stylesheet_agrees_with_native_extraction() {
        let c = community();
        let xsl = default_index_xsl(&c);
        let doc = Document::parse(
            "<song><title>So What</title><genre>jazz</genre><audio>u</audio></song>",
        )
        .unwrap();
        let via_xslt = apply_index_style(&xsl, &doc).unwrap();
        let via_native = Repository::extract_fields(&doc, &c.indexed_paths());
        assert_eq!(via_xslt, via_native);
        assert_eq!(
            via_xslt,
            vec![
                ("song/title".to_string(), "So What".to_string()),
                ("song/genre".to_string(), "jazz".to_string()),
            ]
        );
    }

    #[test]
    fn broken_custom_stylesheet_reports_error() {
        let doc = Document::parse("<x/>").unwrap();
        assert!(matches!(
            render_view(&doc, Some("<not-xslt/>")),
            Err(CoreError::Stylesheet(_))
        ));
    }

    #[test]
    fn cache_compiles_each_distinct_sheet_once() {
        let cache = StylesheetCache::new();
        let a = cache.get(DEFAULT_VIEW_XSL).unwrap();
        let b = cache.get(DEFAULT_VIEW_XSL).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second get returns the same compiled sheet");
        assert_eq!(cache.len(), 1);
        let c = cache.get(DEFAULT_FORM_XSL).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_never_stores_broken_sheets() {
        let cache = StylesheetCache::new();
        assert!(cache.is_empty());
        assert!(cache.get("<not-xslt/>").is_err());
        assert!(cache.get("<not-xslt/>").is_err(), "error repeats, not cached away");
        assert!(cache.is_empty(), "a failed compile leaves the cache untouched");
    }

    #[test]
    fn default_sheets_are_parsed_once_per_process() {
        let a = default_form_sheet().unwrap();
        let b = default_form_sheet().unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let v1 = default_view_sheet().unwrap();
        let v2 = default_view_sheet().unwrap();
        assert!(Arc::ptr_eq(&v1, &v2));
    }

    #[test]
    fn concurrent_gets_converge_on_one_compiled_sheet() {
        let cache = StylesheetCache::new();
        let sheets: Vec<Arc<Stylesheet>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| cache.get(DEFAULT_VIEW_XSL).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.len(), 1, "all threads share one cache entry");
        // losers of the compile race return the winner's entry, so every
        // caller holds the same compiled sheet
        let winner = cache.get(DEFAULT_VIEW_XSL).unwrap();
        assert!(sheets.iter().all(|s| Arc::ptr_eq(s, &winner)));
    }
}
