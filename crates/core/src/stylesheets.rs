//! Default stylesheets — "U-P2P provides default stylesheets that operate
//! on any community schema, but users are encouraged to create their own"
//! (§IV-A).
//!
//! Four stylesheets per community (Fig. 1): create form, search form,
//! view, and the indexed-attribute filter. The create/search defaults
//! transform the schema-derived form model; the view default transforms
//! the object document itself; the index default is *generated* from the
//! community schema's searchable fields.

use crate::community::Community;
use crate::error::CoreError;
use up2p_xml::Document;
use up2p_xslt::Stylesheet;

/// Default stylesheet rendering a form-model document to an HTML form
/// (both create and search; the `kind` attribute parameterizes it).
pub const DEFAULT_FORM_XSL: &str = r#"<xsl:stylesheet version="1.0"
    xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:output method="html"/>
  <xsl:template match="/form">
    <form class="up2p-{@kind}" action="up2p:{@kind}" method="post">
      <h2><xsl:value-of select="@communityname"/>
        <xsl:text> — </xsl:text>
        <xsl:choose>
          <xsl:when test="@kind = 'create'"><xsl:text>share an object</xsl:text></xsl:when>
          <xsl:otherwise><xsl:text>search</xsl:text></xsl:otherwise>
        </xsl:choose>
      </h2>
      <table>
        <xsl:apply-templates select="field"/>
      </table>
      <input type="submit" value="{@kind}"/>
    </form>
  </xsl:template>
  <xsl:template match="field">
    <tr>
      <td class="label">
        <label for="{@name}"><xsl:value-of select="@name"/>
          <xsl:if test="@required = 'true'"><b>*</b></xsl:if>
        </label>
      </td>
      <td>
        <xsl:choose>
          <xsl:when test="@input = 'select'">
            <select name="{@path}" id="{@name}">
              <xsl:for-each select="option">
                <option value="{.}"><xsl:value-of select="."/></option>
              </xsl:for-each>
            </select>
          </xsl:when>
          <xsl:when test="@input = 'checkbox'">
            <input type="checkbox" name="{@path}" id="{@name}"/>
          </xsl:when>
          <xsl:when test="@input = 'number'">
            <input type="text" class="number" name="{@path}" id="{@name}"/>
          </xsl:when>
          <xsl:when test="@attachment = 'true'">
            <input type="file" name="{@path}" id="{@name}"/>
          </xsl:when>
          <xsl:otherwise>
            <input type="text" name="{@path}" id="{@name}"/>
          </xsl:otherwise>
        </xsl:choose>
      </td>
    </tr>
  </xsl:template>
</xsl:stylesheet>"#;

/// Default view stylesheet: renders *any* object document as nested
/// definition lists, labelling elements by name — tailored to "more
/// simple formats" per §V (complex communities ship a custom one).
pub const DEFAULT_VIEW_XSL: &str = r#"<xsl:stylesheet version="1.0"
    xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:output method="html"/>
  <xsl:template match="/">
    <div class="up2p-view">
      <xsl:apply-templates select="*"/>
    </div>
  </xsl:template>
  <xsl:template match="*">
    <dl>
      <dt><xsl:value-of select="name()"/></dt>
      <dd>
        <xsl:choose>
          <xsl:when test="count(*) &gt; 0"><xsl:apply-templates select="*"/></xsl:when>
          <xsl:otherwise><xsl:value-of select="."/></xsl:otherwise>
        </xsl:choose>
      </dd>
    </dl>
  </xsl:template>
</xsl:stylesheet>"#;

/// Generates the default indexed-attribute filter stylesheet for a
/// community: an XSLT that transforms an object document into
/// `<indexed><field path="...">value</field>...</indexed>` for exactly
/// the community's searchable fields. Equivalent to the native Rust
/// extraction path (tested to agree).
pub fn default_index_xsl(community: &Community) -> String {
    let mut body = String::new();
    for path in community.indexed_paths() {
        body.push_str(&format!(
            r#"<xsl:for-each select="/{path}"><field path="{path}"><xsl:value-of select="."/></field></xsl:for-each>"#
        ));
    }
    format!(
        r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="/"><indexed>{body}</indexed></xsl:template>
</xsl:stylesheet>"#
    )
}

/// Applies a form stylesheet (custom or [`DEFAULT_FORM_XSL`]) to a form
/// model document, producing HTML.
///
/// # Errors
///
/// Returns [`CoreError::Stylesheet`] when the stylesheet fails to compile
/// or apply.
pub fn render_form(form_doc: &Document, custom: Option<&str>) -> Result<String, CoreError> {
    let sheet = Stylesheet::parse(custom.unwrap_or(DEFAULT_FORM_XSL))?;
    Ok(sheet.apply_to_string(form_doc)?)
}

/// Applies a view stylesheet (custom or [`DEFAULT_VIEW_XSL`]) to an
/// object document, producing HTML.
///
/// # Errors
///
/// Returns [`CoreError::Stylesheet`] on stylesheet failure.
pub fn render_view(object_doc: &Document, custom: Option<&str>) -> Result<String, CoreError> {
    let sheet = Stylesheet::parse(custom.unwrap_or(DEFAULT_VIEW_XSL))?;
    Ok(sheet.apply_to_string(object_doc)?)
}

/// Runs an indexed-attribute filter stylesheet over an object document
/// and parses the `(path, value)` pairs out of the result.
///
/// # Errors
///
/// Returns [`CoreError::Stylesheet`]/[`CoreError::Xml`] on failures.
pub fn apply_index_style(
    xslt: &str,
    object_doc: &Document,
) -> Result<Vec<(String, String)>, CoreError> {
    let sheet = Stylesheet::parse(xslt)?;
    let result = sheet.apply(object_doc)?;
    let mut out = Vec::new();
    let Some(root) = result.document_element() else {
        return Ok(out);
    };
    for field in result.children_named(root, "field") {
        if let Some(path) = result.attr(field, "path") {
            let value = result.text_content(field);
            let trimmed = value.trim();
            if !trimmed.is_empty() {
                out.push((path.to_string(), trimmed.to_string()));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forms::{FormKind, FormModel};
    use up2p_schema::{FieldKind, SchemaBuilder};
    use up2p_store::Repository;

    fn community() -> Community {
        let mut b = SchemaBuilder::new("song");
        b.field(FieldKind::text("title").searchable())
            .field(FieldKind::enumeration("genre", ["rock", "jazz"]).searchable())
            .field(FieldKind::uri("audio").attachment());
        Community::from_builder("mp3", "d", "k", "c", "", &b).unwrap()
    }

    #[test]
    fn default_create_form_renders_inputs() {
        let c = community();
        let doc = FormModel::derive(&c, FormKind::Create).to_document();
        let html = render_form(&doc, None).unwrap();
        assert!(html.contains(r#"<form class="up2p-create""#), "{html}");
        assert!(html.contains(r#"name="song/title""#));
        assert!(html.contains("<select name=\"song/genre\""));
        assert!(html.contains(r#"<option value="jazz">jazz</option>"#));
        assert!(html.contains(r#"type="file""#), "attachment renders as file input");
        assert!(html.contains("<b>*</b>"), "required marker");
    }

    #[test]
    fn default_search_form_renders_searchable_only() {
        let c = community();
        let doc = FormModel::derive(&c, FormKind::Search).to_document();
        let html = render_form(&doc, None).unwrap();
        assert!(html.contains("up2p-search"));
        assert!(html.contains("song/title"));
        assert!(!html.contains("song/audio"), "attachment not searchable: {html}");
    }

    #[test]
    fn default_view_renders_any_object() {
        let doc = Document::parse(
            "<song><title>So What</title><meta><bpm>136</bpm></meta></song>",
        )
        .unwrap();
        let html = render_view(&doc, None).unwrap();
        assert!(html.contains("<dt>song</dt>"));
        assert!(html.contains("<dt>title</dt>"));
        assert!(html.contains("<dd>So What</dd>"));
        assert!(html.contains("<dt>bpm</dt>"), "nested elements recurse: {html}");
    }

    #[test]
    fn custom_stylesheet_overrides_default() {
        let custom = r#"<xsl:stylesheet version="1.0"
            xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
          <xsl:output method="html"/>
          <xsl:template match="/"><h1>CUSTOM<xsl:value-of select="//title"/></h1></xsl:template>
        </xsl:stylesheet>"#;
        let doc = Document::parse("<song><title>x</title></song>").unwrap();
        let html = render_view(&doc, Some(custom)).unwrap();
        assert_eq!(html, "<h1>CUSTOMx</h1>");
    }

    #[test]
    fn index_stylesheet_agrees_with_native_extraction() {
        let c = community();
        let xsl = default_index_xsl(&c);
        let doc = Document::parse(
            "<song><title>So What</title><genre>jazz</genre><audio>u</audio></song>",
        )
        .unwrap();
        let via_xslt = apply_index_style(&xsl, &doc).unwrap();
        let via_native = Repository::extract_fields(&doc, &c.indexed_paths());
        assert_eq!(via_xslt, via_native);
        assert_eq!(
            via_xslt,
            vec![
                ("song/title".to_string(), "So What".to_string()),
                ("song/genre".to_string(), "jazz".to_string()),
            ]
        );
    }

    #[test]
    fn broken_custom_stylesheet_reports_error() {
        let doc = Document::parse("<x/>").unwrap();
        assert!(matches!(
            render_view(&doc, Some("<not-xslt/>")),
            Err(CoreError::Stylesheet(_))
        ));
    }
}
