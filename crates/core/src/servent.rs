//! The U-P2P servent: create / search / view over any [`PeerNetwork`].
//!
//! One servent per peer. It owns the peer's local repository and joined
//! communities; network and payload plane are passed in per call so many
//! servents can share one simulated fabric.

use crate::community::Community;
use crate::error::CoreError;
use crate::forms::{FormKind, FormModel};
use crate::object::{Attachment, SharedObject};
use crate::payload::PayloadPlane;
use crate::root::ROOT_COMMUNITY_ID;
use crate::stylesheets;
use std::collections::HashMap;
use up2p_net::{
    PeerId, PeerNetwork, ResourceRecord, RetrieveOutcome, SearchHit, SearchOutcome, SharedFields,
};
use up2p_store::{Query, Repository};

/// A U-P2P peer: local repository, joined communities, and the paper's
/// create/search/view functions.
///
/// Every servent is born a member of the Root Community and can therefore
/// discover and join further communities over the network (§IV-A).
#[derive(Debug)]
pub struct Servent {
    peer: PeerId,
    repository: Repository,
    communities: HashMap<String, Community>,
    /// Re-share downloaded objects (Napster-style replication, on by
    /// default; experiment E5's control knob).
    pub share_downloads: bool,
}

impl Servent {
    /// Creates a servent for `peer`, joined to the root community.
    pub fn new(peer: PeerId) -> Servent {
        let mut communities = HashMap::new();
        let root = Community::root();
        communities.insert(root.id.clone(), root);
        Servent { peer, repository: Repository::new(), communities, share_downloads: true }
    }

    /// The peer this servent runs on.
    pub fn peer(&self) -> PeerId {
        self.peer
    }

    /// The local repository (objects this peer shares or downloaded).
    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    /// Joined communities, root included.
    pub fn communities(&self) -> impl Iterator<Item = &Community> {
        self.communities.values()
    }

    /// Looks up a joined community.
    pub fn community(&self, id: &str) -> Option<&Community> {
        self.communities.get(id)
    }

    fn community_or_err(&self, id: &str) -> Result<&Community, CoreError> {
        self.communities.get(id).ok_or_else(|| CoreError::UnknownCommunity(id.to_string()))
    }

    /// Joins a community whose definition is already at hand (local
    /// creation; the network path is [`Servent::join_from_hit`]).
    pub fn join(&mut self, community: Community) -> &Community {
        let id = community.id.clone();
        self.communities.entry(id).or_insert(community)
    }

    /// Leaves a community (the root community cannot be left).
    pub fn leave(&mut self, id: &str) -> bool {
        if id == ROOT_COMMUNITY_ID {
            return false;
        }
        self.communities.remove(id).is_some()
    }

    // -----------------------------------------------------------------
    // Create function (§IV-C1)
    // -----------------------------------------------------------------

    /// Creates a shared object from form values, validating against the
    /// community schema.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownCommunity`], [`CoreError::MissingField`] or
    /// [`CoreError::Validation`].
    pub fn create_object(
        &self,
        community_id: &str,
        values: &[(&str, &str)],
    ) -> Result<SharedObject, CoreError> {
        self.create_object_with_attachments(community_id, values, Vec::new())
    }

    /// Creates a shared object carrying attachments. Attachment URIs are
    /// substituted into the schema's attachment fields automatically when
    /// the caller passes the field value `"@<attachment-index>"`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Servent::create_object`].
    pub fn create_object_with_attachments(
        &self,
        community_id: &str,
        values: &[(&str, &str)],
        attachments: Vec<Attachment>,
    ) -> Result<SharedObject, CoreError> {
        let community = self.community_or_err(community_id)?;
        let form = FormModel::derive(community, FormKind::Create);
        // resolve "@N" placeholders to attachment URIs
        let resolved: Vec<(&str, String)> = values
            .iter()
            .map(|(k, v)| {
                let value = if let Some(idx) = v.strip_prefix('@') {
                    idx.parse::<usize>()
                        .ok()
                        .and_then(|i| attachments.get(i))
                        .map(|a| a.uri.clone())
                        .unwrap_or_else(|| (*v).to_string())
                } else {
                    (*v).to_string()
                };
                (*k, value)
            })
            .collect();
        let borrowed: Vec<(&str, &str)> =
            resolved.iter().map(|(k, v)| (*k, v.as_str())).collect();
        let doc = form.fill(community.object_root_name(), &borrowed)?;
        community.validate(&doc)?;
        Ok(SharedObject::new(community_id, doc, attachments))
    }

    /// Stores an object locally and announces it on the network
    /// (publish ≈ the paper's create primitive reaching the P2P layer).
    ///
    /// The extracted metadata is allocated once here and then shared by
    /// reference: the local repository, its index, the network record
    /// uploaded to index nodes and every search hit other peers receive
    /// all hold the same allocation.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownCommunity`] when the servent is not a member.
    pub fn publish(
        &mut self,
        net: &mut dyn PeerNetwork,
        plane: &mut PayloadPlane,
        object: &SharedObject,
    ) -> Result<String, CoreError> {
        let community = self.community_or_err(&object.community_id)?;
        let fields: SharedFields = self.index_fields(community, object)?.into();
        self.repository.insert_with_fields(
            &object.community_id,
            object.doc.clone(),
            SharedFields::clone(&fields),
        );
        plane.put(object);
        net.publish(
            self.peer,
            ResourceRecord {
                key: object.key.clone(),
                community: object.community_id.clone(),
                fields,
            },
        );
        Ok(object.key.clone())
    }

    /// Extracts the metadata fields to index for an object, using the
    /// community's custom indexer stylesheet when present, else native
    /// extraction of the searchable paths.
    fn index_fields(
        &self,
        community: &Community,
        object: &SharedObject,
    ) -> Result<Vec<(String, String)>, CoreError> {
        match &community.index_style {
            Some(xslt) => stylesheets::apply_index_style(xslt, &object.doc),
            None => Ok(Repository::extract_fields(&object.doc, &community.indexed_paths())),
        }
    }

    /// Publishes a *community* into the root community — the metaclass
    /// move that makes it discoverable. The community object travels with
    /// its schema (and any custom stylesheets) as attachments.
    ///
    /// # Errors
    ///
    /// Propagates from [`Servent::publish`].
    pub fn publish_community(
        &mut self,
        net: &mut dyn PeerNetwork,
        plane: &mut PayloadPlane,
        community: &Community,
    ) -> Result<String, CoreError> {
        self.join(community.clone());
        let mut attachments =
            vec![Attachment::from_bytes(community.schema_xsd.clone().into_bytes())];
        for style in [
            &community.display_style,
            &community.create_style,
            &community.search_style,
            &community.index_style,
        ]
        .into_iter()
        .flatten()
        {
            attachments.push(Attachment::from_bytes(style.clone().into_bytes()));
        }
        let object =
            SharedObject::new(ROOT_COMMUNITY_ID, community.to_object(), attachments);
        self.publish(net, plane, &object)
    }

    // -----------------------------------------------------------------
    // Search function (§IV-C2)
    // -----------------------------------------------------------------

    /// Searches a community over the network. Local repository results
    /// are not duplicated — the network layer already reports the
    /// servent's own shared objects as hops-0 hits where applicable.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownCommunity`] when not a member (the paper: "a
    /// user must join a community … in order to conduct searches in that
    /// community").
    pub fn search(
        &mut self,
        net: &mut dyn PeerNetwork,
        community_id: &str,
        query: &Query,
    ) -> Result<SearchOutcome, CoreError> {
        self.community_or_err(community_id)?;
        Ok(net.search(self.peer, community_id, query))
    }

    /// Searches with a CMIP-style filter string (the paper's query
    /// format).
    ///
    /// # Errors
    ///
    /// Adds [`CoreError::Store`] for malformed filters.
    pub fn search_cmip(
        &mut self,
        net: &mut dyn PeerNetwork,
        community_id: &str,
        filter: &str,
    ) -> Result<SearchOutcome, CoreError> {
        let query = up2p_store::parse_cmip(filter)?;
        self.search(net, community_id, &query)
    }

    /// Community discovery: searches the root community for community
    /// objects (§IV-A — "through the same facility, users can search for
    /// objects within a community or search for a community itself").
    ///
    /// # Errors
    ///
    /// Propagates from [`Servent::search`].
    pub fn discover_communities(
        &mut self,
        net: &mut dyn PeerNetwork,
        query: &Query,
    ) -> Result<SearchOutcome, CoreError> {
        self.search(net, ROOT_COMMUNITY_ID, query)
    }

    // -----------------------------------------------------------------
    // Download / retrieve (§IV-C2 end)
    // -----------------------------------------------------------------

    /// Downloads the object behind a search hit: retrieves it (and its
    /// attachments) from the providing peer, stores it locally, and — per
    /// the replication behavior that made Napster robust (§II) — shares
    /// it onward unless [`Servent::share_downloads`] is off.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unavailable`] when the provider is gone,
    /// [`CoreError::IntegrityFailure`] on hash mismatch.
    pub fn download(
        &mut self,
        net: &mut dyn PeerNetwork,
        plane: &mut PayloadPlane,
        hit: &SearchHit,
    ) -> Result<SharedObject, CoreError> {
        match net.retrieve(self.peer, hit.provider, &hit.key) {
            RetrieveOutcome::Unavailable => {
                Err(CoreError::Unavailable(format!("object {} at {}", hit.key, hit.provider)))
            }
            RetrieveOutcome::Fetched { .. } => {
                let object = plane.fetch(&hit.key)?;
                if self.communities.contains_key(&object.community_id) {
                    if self.share_downloads {
                        self.publish(net, plane, &object)?;
                    } else {
                        let community = self.community_or_err(&object.community_id)?;
                        let fields = self.index_fields(community, &object)?;
                        self.repository.insert_with_fields(
                            &object.community_id,
                            object.doc.clone(),
                            fields,
                        );
                    }
                }
                Ok(object)
            }
        }
    }

    /// Discovers, downloads and joins a community from a root-community
    /// search hit: fetches the community object plus its schema
    /// attachment and becomes a member.
    ///
    /// # Errors
    ///
    /// Propagates download errors; [`CoreError::Unavailable`] when the
    /// schema attachment is missing.
    pub fn join_from_hit(
        &mut self,
        net: &mut dyn PeerNetwork,
        plane: &mut PayloadPlane,
        hit: &SearchHit,
    ) -> Result<String, CoreError> {
        let object = self.download(net, plane, hit)?;
        let schema_att = object
            .attachments
            .first()
            .ok_or_else(|| CoreError::Unavailable("community schema attachment".into()))?;
        let xsd = String::from_utf8_lossy(&schema_att.data).into_owned();
        // custom stylesheets travel as further attachments, matched to the
        // object's style URIs by content hash
        let atts: Vec<(String, String)> = object
            .attachments
            .iter()
            .map(|a| (a.uri.clone(), String::from_utf8_lossy(&a.data).into_owned()))
            .collect();
        let community = Community::from_object_with_attachments(&object.doc, &xsd, &atts)?;
        let id = community.id.clone();
        self.join(community);
        Ok(id)
    }

    // -----------------------------------------------------------------
    // View function (§IV-C3) and generated interfaces
    // -----------------------------------------------------------------

    /// HTML create form for a community (generated from its schema via
    /// the community's create stylesheet or the default).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownCommunity`] or stylesheet failures.
    pub fn create_form_html(&self, community_id: &str) -> Result<String, CoreError> {
        let community = self.community_or_err(community_id)?;
        let doc = FormModel::derive(community, FormKind::Create).to_document();
        stylesheets::render_form(&doc, community.create_style.as_deref())
    }

    /// HTML search form for a community (searchable fields only).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Servent::create_form_html`].
    pub fn search_form_html(&self, community_id: &str) -> Result<String, CoreError> {
        let community = self.community_or_err(community_id)?;
        let doc = FormModel::derive(community, FormKind::Search).to_document();
        stylesheets::render_form(&doc, community.search_style.as_deref())
    }

    /// HTML view of an object via the community's display stylesheet (or
    /// the default).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownCommunity`] or stylesheet failures.
    pub fn view_html(&self, object: &SharedObject) -> Result<String, CoreError> {
        let community = self.community_or_err(&object.community_id)?;
        stylesheets::render_view(&object.doc, community.display_style.as_deref())
    }

    /// Objects of a community in the local repository (shared or
    /// downloaded) — the paper's browse view.
    pub fn local_objects(&self, community_id: &str) -> Vec<&up2p_store::StoredObject> {
        self.repository.search(Some(community_id), &Query::All)
    }

    // -----------------------------------------------------------------
    // Persistence: a servent survives restarts
    // -----------------------------------------------------------------

    /// Persists the servent's state (joined communities with their
    /// schemas and stylesheets, plus the local repository) under `dir`.
    ///
    /// The repository is written as a durable-store snapshot (compacted
    /// segment + manifest), so [`Servent::load_state`] recovers it
    /// through the pre-tokenized fast path instead of re-parsing and
    /// re-indexing per-object XML.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] on I/O failures.
    pub fn save_state(&self, dir: &std::path::Path) -> Result<(), CoreError> {
        use up2p_xml::ElementBuilder;
        up2p_store::DurableRepository::save_snapshot(&self.repository, &dir.join("repository"))?;
        let cdir = dir.join("communities");
        std::fs::create_dir_all(&cdir).map_err(up2p_store::StoreError::from)?;
        for community in self.communities.values() {
            if community.id == ROOT_COMMUNITY_ID {
                continue; // rebuilt on load
            }
            let mut wrapper = ElementBuilder::new("saved-community")
                .child_text("schema-xsd", community.schema_xsd.clone());
            for (kind, style) in [
                ("display", &community.display_style),
                ("create", &community.create_style),
                ("search", &community.search_style),
                ("index", &community.index_style),
            ] {
                if let Some(text) = style {
                    wrapper = wrapper.child(
                        ElementBuilder::new("style").attr("kind", kind).text(text.clone()),
                    );
                }
            }
            let mut doc = wrapper.build();
            let root = doc.document_element().expect("wrapper has a root");
            let holder = doc.create_element("object".into());
            doc.append_child(root, holder);
            let obj = community.to_object();
            let copied = doc.import_subtree(&obj, obj.document_element().expect("object root"));
            doc.append_child(holder, copied);
            std::fs::write(cdir.join(format!("{}.xml", community.id)), doc.to_xml_string())
                .map_err(up2p_store::StoreError::from)?;
        }
        Ok(())
    }

    /// Restores a servent previously written by [`Servent::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Store`] for I/O and format problems, plus
    /// schema errors for corrupt community files.
    pub fn load_state(peer: PeerId, dir: &std::path::Path) -> Result<Servent, CoreError> {
        let mut servent = Servent::new(peer);
        servent.repository = Repository::load_dir(&dir.join("repository"))?;
        let cdir = dir.join("communities");
        if cdir.is_dir() {
            let mut entries: Vec<_> = std::fs::read_dir(&cdir)
                .map_err(up2p_store::StoreError::from)?
                .collect::<Result<Vec<_>, _>>()
                .map_err(up2p_store::StoreError::from)?
                .into_iter()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "xml"))
                .collect();
            entries.sort();
            for path in entries {
                let text =
                    std::fs::read_to_string(&path).map_err(up2p_store::StoreError::from)?;
                let doc = up2p_xml::Document::parse(&text)?;
                let root = doc.document_element().ok_or_else(|| {
                    CoreError::Unavailable(format!("saved community at {}", path.display()))
                })?;
                let xsd = doc
                    .child_named(root, "schema-xsd")
                    .map(|n| doc.text_content(n))
                    .ok_or_else(|| CoreError::MissingField("schema-xsd".to_string()))?;
                let holder = doc
                    .child_named(root, "object")
                    .and_then(|h| doc.child_elements(h).next())
                    .ok_or_else(|| CoreError::MissingField("object".to_string()))?;
                let mut obj_doc = up2p_xml::Document::new();
                let copied = obj_doc.import_subtree(&doc, holder);
                let obj_root = obj_doc.root();
                obj_doc.append_child(obj_root, copied);
                let mut community = Community::from_object(&obj_doc, &xsd)?;
                for style in doc.children_named(root, "style") {
                    let text = doc.text_content(style);
                    match doc.attr(style, "kind") {
                        Some("display") => community.display_style = Some(text),
                        Some("create") => community.create_style = Some(text),
                        Some("search") => community.search_style = Some(text),
                        Some("index") => community.index_style = Some(text),
                        _ => {}
                    }
                }
                servent.join(community);
            }
        }
        Ok(servent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use up2p_net::{build_network, ProtocolKind};
    use up2p_schema::{FieldKind, SchemaBuilder};

    fn pattern_community() -> Community {
        let mut b = SchemaBuilder::new("pattern");
        b.field(FieldKind::text("name").searchable())
            .field(FieldKind::text("category").searchable())
            .field(FieldKind::text("intent").searchable())
            .field(FieldKind::text("structure"));
        Community::from_builder(
            "design-patterns",
            "software design patterns",
            "patterns gof software",
            "software",
            "Gnutella",
            &b,
        )
        .unwrap()
    }

    struct World {
        net: Box<dyn PeerNetwork + Send>,
        plane: PayloadPlane,
    }

    fn world(kind: ProtocolKind, n: usize) -> World {
        World { net: build_network(kind, n, 42), plane: PayloadPlane::new() }
    }

    #[test]
    fn servent_starts_in_root_community() {
        let s = Servent::new(PeerId(0));
        assert!(s.community(ROOT_COMMUNITY_ID).is_some());
        assert_eq!(s.communities().count(), 1);
    }

    #[test]
    fn create_publish_search_download_view() {
        let mut w = world(ProtocolKind::Napster, 4);
        let community = pattern_community();

        let mut alice = Servent::new(PeerId(1));
        alice.join(community.clone());
        let obj = alice
            .create_object(
                &community.id,
                &[
                    ("name", "Observer"),
                    ("category", "behavioral"),
                    ("intent", "notify dependents automatically"),
                    ("structure", "subject observers"),
                ],
            )
            .unwrap();
        alice.publish(&mut *w.net, &mut w.plane, &obj).unwrap();

        let mut bob = Servent::new(PeerId(2));
        bob.join(community.clone());
        let out = bob
            .search(&mut *w.net, &community.id, &Query::any_keyword("observer"))
            .unwrap();
        assert_eq!(out.hits.len(), 1);
        let downloaded = bob.download(&mut *w.net, &mut w.plane, &out.hits[0]).unwrap();
        assert_eq!(downloaded.key, obj.key);
        assert_eq!(bob.local_objects(&community.id).len(), 1);

        let html = bob.view_html(&downloaded).unwrap();
        assert!(html.contains("Observer"));
    }

    #[test]
    fn create_rejects_invalid_values() {
        let mut s = Servent::new(PeerId(0));
        let community = pattern_community();
        s.join(community.clone());
        let err = s.create_object(&community.id, &[("name", "x")]).unwrap_err();
        assert!(matches!(err, CoreError::MissingField(_)));
    }

    #[test]
    fn search_requires_membership() {
        let mut s = Servent::new(PeerId(0));
        let mut w = world(ProtocolKind::Napster, 2);
        let err = s.search(&mut *w.net, "nope", &Query::All).unwrap_err();
        assert!(matches!(err, CoreError::UnknownCommunity(_)));
    }

    #[test]
    fn community_discovery_and_join_over_network() {
        let mut w = world(ProtocolKind::Gnutella, 16);
        let community = pattern_community();

        // peer 1 publishes the community into the root community
        let mut publisher = Servent::new(PeerId(1));
        publisher.publish_community(&mut *w.net, &mut w.plane, &community).unwrap();

        // peer 9 discovers it by keyword and joins
        let mut seeker = Servent::new(PeerId(9));
        let out = seeker
            .discover_communities(&mut *w.net, &Query::any_keyword("patterns"))
            .unwrap();
        assert!(!out.hits.is_empty(), "community object should be discoverable");
        let joined_id = seeker.join_from_hit(&mut *w.net, &mut w.plane, &out.hits[0]).unwrap();
        assert_eq!(joined_id, community.id, "schema + object reproduce the same identity");
        assert!(seeker.community(&joined_id).is_some());

        // and can immediately search inside it
        let obj = publisher
            .create_object(
                &community.id,
                &[
                    ("name", "Visitor"),
                    ("category", "behavioral"),
                    ("intent", "represent an operation"),
                    ("structure", "s"),
                ],
            )
            .unwrap();
        publisher.publish(&mut *w.net, &mut w.plane, &obj).unwrap();
        let hits = seeker
            .search(&mut *w.net, &joined_id, &Query::any_keyword("visitor"))
            .unwrap();
        assert_eq!(hits.hits.len(), 1);
    }

    #[test]
    fn download_replicates_by_default() {
        let mut w = world(ProtocolKind::Napster, 4);
        let community = pattern_community();
        let mut a = Servent::new(PeerId(1));
        a.join(community.clone());
        let obj = a
            .create_object(
                &community.id,
                &[
                    ("name", "Observer"),
                    ("category", "behavioral"),
                    ("intent", "i"),
                    ("structure", "s"),
                ],
            )
            .unwrap();
        a.publish(&mut *w.net, &mut w.plane, &obj).unwrap();

        let mut b = Servent::new(PeerId(2));
        b.join(community.clone());
        let out = b.search(&mut *w.net, &community.id, &Query::any_keyword("observer")).unwrap();
        b.download(&mut *w.net, &mut w.plane, &out.hits[0]).unwrap();

        // now two providers serve the object
        let mut c = Servent::new(PeerId(3));
        c.join(community.clone());
        let out = c.search(&mut *w.net, &community.id, &Query::any_keyword("observer")).unwrap();
        let providers: Vec<PeerId> = out.hits.iter().map(|h| h.provider).collect();
        assert_eq!(providers.len(), 2, "replication doubled availability: {providers:?}");
    }

    #[test]
    fn download_without_sharing_does_not_replicate() {
        let mut w = world(ProtocolKind::Napster, 4);
        let community = pattern_community();
        let mut a = Servent::new(PeerId(1));
        a.join(community.clone());
        let obj = a
            .create_object(
                &community.id,
                &[("name", "X"), ("category", "c"), ("intent", "i"), ("structure", "s")],
            )
            .unwrap();
        a.publish(&mut *w.net, &mut w.plane, &obj).unwrap();

        let mut b = Servent::new(PeerId(2));
        b.share_downloads = false;
        b.join(community.clone());
        let out = b.search(&mut *w.net, &community.id, &Query::any_keyword("x")).unwrap();
        b.download(&mut *w.net, &mut w.plane, &out.hits[0]).unwrap();
        assert_eq!(b.local_objects(&community.id).len(), 1, "stored locally");

        let mut c = Servent::new(PeerId(3));
        c.join(community.clone());
        let out = c.search(&mut *w.net, &community.id, &Query::any_keyword("x")).unwrap();
        assert_eq!(out.hits.len(), 1, "still only the original provider");
    }

    #[test]
    fn download_fails_when_provider_dies() {
        let mut w = world(ProtocolKind::Napster, 3);
        let community = pattern_community();
        let mut a = Servent::new(PeerId(1));
        a.join(community.clone());
        let obj = a
            .create_object(
                &community.id,
                &[("name", "X"), ("category", "c"), ("intent", "i"), ("structure", "s")],
            )
            .unwrap();
        a.publish(&mut *w.net, &mut w.plane, &obj).unwrap();

        let mut b = Servent::new(PeerId(2));
        b.join(community.clone());
        let out = b.search(&mut *w.net, &community.id, &Query::any_keyword("x")).unwrap();
        w.net.set_alive(PeerId(1), false);
        let err = b.download(&mut *w.net, &mut w.plane, &out.hits[0]).unwrap_err();
        assert!(matches!(err, CoreError::Unavailable(_)));
    }

    #[test]
    fn forms_render_for_joined_communities() {
        let mut s = Servent::new(PeerId(0));
        let community = pattern_community();
        s.join(community.clone());
        let create = s.create_form_html(&community.id).unwrap();
        assert!(create.contains("pattern/name"));
        assert!(create.contains("pattern/structure"));
        let search = s.search_form_html(&community.id).unwrap();
        assert!(search.contains("pattern/name"));
        assert!(!search.contains("pattern/structure"), "not searchable");
        // root community forms work too (community discovery UI)
        let root_search = s.search_form_html(ROOT_COMMUNITY_ID).unwrap();
        assert!(root_search.contains("community/keywords"));
    }

    #[test]
    fn cmip_search_surface() {
        let mut w = world(ProtocolKind::Napster, 3);
        let community = pattern_community();
        let mut a = Servent::new(PeerId(1));
        a.join(community.clone());
        let obj = a
            .create_object(
                &community.id,
                &[
                    ("name", "Observer"),
                    ("category", "behavioral"),
                    ("intent", "i"),
                    ("structure", "s"),
                ],
            )
            .unwrap();
        a.publish(&mut *w.net, &mut w.plane, &obj).unwrap();
        let mut b = Servent::new(PeerId(2));
        b.join(community.clone());
        let out = b
            .search_cmip(&mut *w.net, &community.id, "(&(name=observ*)(category=behavioral))")
            .unwrap();
        assert_eq!(out.hits.len(), 1);
        assert!(b.search_cmip(&mut *w.net, &community.id, "(broken").is_err());
    }

    #[test]
    fn leave_community_but_never_root() {
        let mut s = Servent::new(PeerId(0));
        let community = pattern_community();
        s.join(community.clone());
        assert!(s.leave(&community.id));
        assert!(s.community(&community.id).is_none());
        assert!(!s.leave(ROOT_COMMUNITY_ID));
        assert!(s.community(ROOT_COMMUNITY_ID).is_some());
    }

    #[test]
    fn attachments_travel_with_downloads() {
        let mut w = world(ProtocolKind::Napster, 3);
        let mut b = SchemaBuilder::new("song");
        b.field(FieldKind::text("title").searchable())
            .field(FieldKind::uri("audio").attachment());
        let community =
            Community::from_builder("mp3", "d", "k", "c", "", &b).unwrap();

        let mut a = Servent::new(PeerId(1));
        a.join(community.clone());
        let att = Attachment::from_bytes(&b"fake mp3 bytes"[..]);
        let obj = a
            .create_object_with_attachments(
                &community.id,
                &[("title", "So What"), ("audio", "@0")],
                vec![att.clone()],
            )
            .unwrap();
        assert!(obj.xml().contains(&att.uri), "placeholder resolved to URI");
        a.publish(&mut *w.net, &mut w.plane, &obj).unwrap();

        let mut c = Servent::new(PeerId(2));
        c.join(community.clone());
        let out = c.search(&mut *w.net, &community.id, &Query::any_keyword("what")).unwrap();
        let downloaded = c.download(&mut *w.net, &mut w.plane, &out.hits[0]).unwrap();
        assert_eq!(downloaded.attachments.len(), 1);
        assert_eq!(downloaded.attachments[0].data, att.data);
    }
}
