//! Automated metadata extraction — the paper's "automated meta-data
//! extraction tool" (§IV-C1) for turning raw files into schema-conformant
//! field values.
//!
//! The simulator's raw files are `key: value` text blobs (the role ID3
//! tags played for MP3s). Extraction maps keys onto the community
//! schema's leaf fields by name, case-insensitively, dropping anything
//! the schema does not know.

use crate::community::Community;
use up2p_schema::leaf_fields;

/// Extracted `(field path, value)` pairs ready for
/// [`crate::FormModel::fill`].
pub type ExtractedFields = Vec<(String, String)>;

/// Extracts metadata from a `key: value` text blob against a community's
/// schema. Unknown keys are ignored; repeated keys produce repeated
/// fields.
///
/// ```
/// use up2p_core::{extract_metadata, Community};
/// use up2p_schema::{FieldKind, SchemaBuilder};
///
/// let mut b = SchemaBuilder::new("song");
/// b.field(FieldKind::text("title").searchable())
///     .field(FieldKind::text("artist").searchable());
/// let community = Community::from_builder("mp3", "d", "k", "c", "", &b)?;
///
/// let fields = extract_metadata(&community, "Title: So What\nArtist: Miles Davis\nBitrate: 192");
/// assert_eq!(fields, vec![
///     ("song/title".to_string(), "So What".to_string()),
///     ("song/artist".to_string(), "Miles Davis".to_string()),
/// ]);
/// # Ok::<(), up2p_core::CoreError>(())
/// ```
pub fn extract_metadata(community: &Community, raw: &str) -> ExtractedFields {
    let fields = leaf_fields(&community.schema);
    let mut out = Vec::new();
    for line in raw.lines() {
        let Some((key, value)) = line.split_once(':') else { continue };
        let key = key.trim().to_lowercase();
        let value = value.trim();
        if value.is_empty() {
            continue;
        }
        if let Some(f) = fields.iter().find(|f| f.name.to_lowercase() == key) {
            out.push((f.path.clone(), value.to_string()));
        }
    }
    // preserve schema order for single occurrences, keep duplicates in
    // input order
    out.sort_by_key(|(path, _)| {
        fields.iter().position(|f| &f.path == path).unwrap_or(usize::MAX)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use up2p_schema::{FieldKind, SchemaBuilder};

    fn community() -> Community {
        let mut b = SchemaBuilder::new("song");
        b.field(FieldKind::text("title").searchable())
            .field(FieldKind::text("artist").searchable())
            .field(FieldKind::text("genre").searchable())
            .field(FieldKind::text("tag").optional().repeated());
        Community::from_builder("mp3", "d", "k", "c", "", &b).unwrap()
    }

    #[test]
    fn extracts_known_keys_case_insensitively() {
        let fields = extract_metadata(
            &community(),
            "TITLE: Blue in Green\nartist: Bill Evans\nGenre: jazz\nBitrate: 320",
        );
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0], ("song/title".to_string(), "Blue in Green".to_string()));
        assert_eq!(fields[2].0, "song/genre");
    }

    #[test]
    fn repeated_keys_become_repeated_fields() {
        let fields =
            extract_metadata(&community(), "title: x\ntag: modal\ntag: 1959\ntag: live");
        let tags: Vec<&str> = fields
            .iter()
            .filter(|(p, _)| p == "song/tag")
            .map(|(_, v)| v.as_str())
            .collect();
        assert_eq!(tags, vec!["modal", "1959", "live"]);
    }

    #[test]
    fn garbage_lines_ignored() {
        let fields =
            extract_metadata(&community(), "no colon here\n: empty key\ntitle:\ntitle: ok");
        assert_eq!(fields, vec![("song/title".to_string(), "ok".to_string())]);
    }

    #[test]
    fn values_keep_inner_colons() {
        let fields = extract_metadata(&community(), "title: A: The Beginning");
        assert_eq!(fields[0].1, "A: The Beginning");
    }

    #[test]
    fn output_feeds_form_fill() {
        let c = community();
        let fields = extract_metadata(&c, "title: So What\nartist: Miles Davis\ngenre: jazz");
        let pairs: Vec<(&str, &str)> =
            fields.iter().map(|(p, v)| (p.as_str(), v.as_str())).collect();
        let form = crate::FormModel::derive(&c, crate::FormKind::Create);
        let doc = form.fill("song", &pairs).unwrap();
        c.validate(&doc).unwrap();
    }
}
