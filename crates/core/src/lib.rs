//! # up2p-core
//!
//! The U-P2P framework (Mukherjee, Esfandiari, Arthorne — ICDCS 2002):
//! peer-to-peer description and discovery of resource-sharing communities.
//!
//! A community is *defined by an XML Schema* describing its shared object;
//! the servent's Create/Search/View functions are generated from that
//! schema via XSLT (Fig. 1/2 of the paper). Communities are themselves
//! objects of a bootstrap "root community" (Fig. 3), so discovering a
//! community reduces to searching for an object — the paper's metaclass
//! move.
//!
//! ```
//! use up2p_core::{Community, PayloadPlane, Servent};
//! use up2p_net::{build_network, PeerId, ProtocolKind};
//! use up2p_schema::{FieldKind, SchemaBuilder};
//! use up2p_store::Query;
//!
//! // a domain expert describes the shared object — no programming
//! let mut fields = SchemaBuilder::new("molecule");
//! fields.field(FieldKind::text("formula").searchable())
//!       .field(FieldKind::text("name").searchable());
//! let community = Community::from_builder(
//!     "molecules", "CML for chemists", "chemistry cml", "science", "Gnutella", &fields)?;
//!
//! // simulated fabric: 32 peers, Gnutella-style flooding
//! let mut net = build_network(ProtocolKind::Gnutella, 32, 7);
//! let mut plane = PayloadPlane::new();
//!
//! // a publisher announces the community, a seeker discovers + joins it
//! let mut publisher = Servent::new(PeerId(1));
//! publisher.publish_community(&mut *net, &mut plane, &community)?;
//! let mut seeker = Servent::new(PeerId(20));
//! let found = seeker.discover_communities(&mut *net, &Query::any_keyword("chemistry"))?;
//! let id = seeker.join_from_hit(&mut *net, &mut plane, &found.hits[0])?;
//! assert_eq!(id, community.id);
//! # Ok::<(), up2p_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod community;
mod error;
mod extract;
mod forms;
mod object;
mod payload;
mod root;
mod servent;
pub mod stylesheets;

pub use community::Community;
pub use error::CoreError;
pub use extract::{extract_metadata, ExtractedFields};
pub use forms::{FormField, FormKind, FormModel, InputKind};
pub use object::{Attachment, SharedObject};
pub use payload::PayloadPlane;
pub use root::{COMMUNITY_FIELDS, ROOT_COMMUNITY_ID, ROOT_SCHEMA_XSD};
pub use servent::Servent;
pub use stylesheets::StylesheetCache;
