//! Shared objects and their attachments.
//!
//! "The shared object will always be an XML object described by the
//! community schema. It may or may not have links to network accessible
//! files that are flagged as attachments. Attachments are only downloaded
//! when the object is retrieved from a peer." (§IV-C1)

use bytes::Bytes;
use up2p_store::ResourceId;
use up2p_xml::Document;

/// A binary attachment referenced from an object's `up2p:attachment`
/// field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attachment {
    /// Content-addressed URI (`up2p:attachment:<sha1>`).
    pub uri: String,
    /// The payload.
    pub data: Bytes,
}

impl Attachment {
    /// Creates an attachment from bytes, deriving its content URI.
    pub fn from_bytes(data: impl Into<Bytes>) -> Attachment {
        let data = data.into();
        let uri = format!("up2p:attachment:{}", ResourceId::for_bytes(&data));
        Attachment { uri, data }
    }

    /// Verifies the payload still hashes to the URI.
    pub fn verify(&self) -> bool {
        self.uri == format!("up2p:attachment:{}", ResourceId::for_bytes(&self.data))
    }
}

/// A shared object: community scope, the XML document, and attachments.
#[derive(Debug, Clone)]
pub struct SharedObject {
    /// Content-derived key (stable across peers).
    pub key: String,
    /// Community the object belongs to.
    pub community_id: String,
    /// The object document.
    pub doc: Document,
    /// Attachments travelling with the object.
    pub attachments: Vec<Attachment>,
}

impl SharedObject {
    /// Builds an object, deriving its key from community and canonical
    /// XML.
    pub fn new(community_id: &str, doc: Document, attachments: Vec<Attachment>) -> SharedObject {
        let key = ResourceId::for_object(community_id, &doc.to_xml_string()).to_string();
        SharedObject { key, community_id: community_id.to_string(), doc, attachments }
    }

    /// Canonical XML text.
    pub fn xml(&self) -> String {
        self.doc.to_xml_string()
    }

    /// Value of the first leaf element with the given name — handy as a
    /// display title.
    pub fn field(&self, name: &str) -> Option<String> {
        let root = self.doc.document_element()?;
        self.doc
            .descendants(root)
            .into_iter()
            .chain(std::iter::once(root))
            .find(|&n| self.doc.local_name(n) == Some(name))
            .map(|n| self.doc.text_content(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attachment_uri_is_content_derived() {
        let a = Attachment::from_bytes(&b"audio-bytes"[..]);
        let b = Attachment::from_bytes(&b"audio-bytes"[..]);
        assert_eq!(a.uri, b.uri);
        assert!(a.verify());
        let mut broken = a.clone();
        broken.data = Bytes::from_static(b"tampered");
        assert!(!broken.verify());
    }

    #[test]
    fn object_keys_are_stable() {
        let doc = Document::parse("<song><title>x</title></song>").unwrap();
        let a = SharedObject::new("mp3", doc.clone(), Vec::new());
        let b = SharedObject::new("mp3", doc.clone(), Vec::new());
        assert_eq!(a.key, b.key);
        let c = SharedObject::new("other", doc, Vec::new());
        assert_ne!(a.key, c.key);
    }

    #[test]
    fn field_lookup() {
        let doc =
            Document::parse("<song><title>So What</title><meta><bpm>136</bpm></meta></song>")
                .unwrap();
        let o = SharedObject::new("mp3", doc, Vec::new());
        assert_eq!(o.field("title"), Some("So What".to_string()));
        assert_eq!(o.field("bpm"), Some("136".to_string()));
        assert_eq!(o.field("absent"), None);
    }
}
