//! The Root Community bootstrap — Fig. 3 of the paper, verbatim.
//!
//! "U-P2P provides one default schema as a bootstrap: a schema for
//! community objects. Thus through the same facility, users can search for
//! objects within a community or search for a community itself." (§IV-A)
//!
//! Every servent is a member of the root community from birth; community
//! objects validated against this schema are the paper's metaclass trick:
//! *community is to mp3-community as metaclass is to class*.

/// Identifier of the root (community-sharing) community. Not itself an
/// object — it is the fixed point that ends the metaclass regress.
pub const ROOT_COMMUNITY_ID: &str = "up2p:root";

/// The community schema exactly as printed in Fig. 3 of the paper.
pub const ROOT_SCHEMA_XSD: &str = r#"<?xml version="1.0"?>
<schema xmlns="http://www.w3.org/2001/XMLSchema">
 <element name="community">
  <complexType>
   <sequence>
    <element name="name" type="xsd:string"/>
    <element name="description" type="xsd:string"/>
    <element name="keywords" type="xsd:string"/>
    <element name="category" type="xsd:string"/>
    <element name="security" type="xsd:string"/>
    <element name="protocol" type="protocolTypes"/>
    <element name="schema" type="xsd:anyURI"/>
    <element name="displaystyle" type="xsd:anyURI"/>
    <element name="createstyle" type="xsd:anyURI"/>
    <element name="searchstyle" type="xsd:anyURI"/>
   </sequence>
  </complexType>
 </element>
 <simpleType name="protocolTypes">
  <restriction base="string">
   <enumeration value=""/>
   <enumeration value="Napster"/>
   <enumeration value="Gnutella"/>
   <enumeration value="FastTrack"/>
  </restriction>
 </simpleType>
</schema>"#;

/// Field paths of the community schema, in schema order.
pub const COMMUNITY_FIELDS: [&str; 10] = [
    "community/name",
    "community/description",
    "community/keywords",
    "community/category",
    "community/security",
    "community/protocol",
    "community/schema",
    "community/displaystyle",
    "community/createstyle",
    "community/searchstyle",
];

#[cfg(test)]
mod tests {
    use super::*;
    use up2p_schema::{parse_schema_str, searchable_fields};

    #[test]
    fn root_schema_parses_and_has_ten_fields() {
        let schema = parse_schema_str(ROOT_SCHEMA_XSD).unwrap();
        assert_eq!(schema.root_element().unwrap().name, "community");
        let leaves = up2p_schema::leaf_fields(&schema);
        assert_eq!(leaves.len(), 10);
        let paths: Vec<&str> = leaves.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(paths, COMMUNITY_FIELDS.to_vec());
    }

    #[test]
    fn root_schema_searchable_fields_are_the_descriptive_ones() {
        let schema = parse_schema_str(ROOT_SCHEMA_XSD).unwrap();
        let names: Vec<String> =
            searchable_fields(&schema).into_iter().map(|f| f.name).collect();
        assert_eq!(
            names,
            vec!["name", "description", "keywords", "category", "security", "protocol"]
        );
    }

    #[test]
    fn protocol_enumeration_matches_paper() {
        let schema = parse_schema_str(ROOT_SCHEMA_XSD).unwrap();
        let proto = schema.simple_type("protocolTypes").unwrap();
        assert_eq!(proto.facets.enumeration, vec!["", "Napster", "Gnutella", "FastTrack"]);
    }
}
