//! Property-based tests for the XML substrate: serialization round-trips,
//! escaping, and XPath consistency against naive reference traversals.

use proptest::prelude::*;
use up2p_xml::{Document, ElementBuilder, XPath};

/// Strategy for XML-safe text content (excludes control chars the parser
/// legitimately never sees from our writers).
fn text_strategy() -> impl Strategy<Value = String> {
    "[ -~]{0,40}".prop_map(|s| s)
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,8}".prop_map(|s| s)
}

/// A small recursive tree strategy producing element builders.
fn tree_strategy() -> impl Strategy<Value = ElementBuilder> {
    let leaf = (name_strategy(), text_strategy())
        .prop_map(|(n, t)| ElementBuilder::new(n.as_str()).text(t));
    leaf.prop_recursive(3, 24, 4, |inner| {
        (name_strategy(), prop::collection::vec(inner, 0..4), text_strategy()).prop_map(
            |(n, children, t)| {
                let mut b = ElementBuilder::new(n.as_str());
                if !t.is_empty() {
                    b = b.text(t);
                }
                for c in children {
                    b = b.child(c);
                }
                b
            },
        )
    })
}

proptest! {
    #[test]
    fn escape_unescape_round_trip(s in "\\PC{0,200}") {
        let escaped = up2p_xml::escape_text(&s);
        prop_assert_eq!(up2p_xml::unescape(&escaped).unwrap(), s);
    }

    #[test]
    fn attr_escape_round_trip(s in "\\PC{0,120}") {
        let escaped = up2p_xml::escape_attr(&s);
        prop_assert_eq!(up2p_xml::unescape(&escaped).unwrap(), s);
    }

    #[test]
    fn serialize_parse_round_trip(tree in tree_strategy()) {
        let doc = tree.build();
        let s1 = doc.to_xml_string();
        let doc2 = Document::parse(&s1).unwrap();
        let s2 = doc2.to_xml_string();
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn attribute_values_round_trip(v in "\\PC{0,80}") {
        let doc = ElementBuilder::new("e").attr("v", v.clone()).build();
        let parsed = Document::parse(&doc.to_xml_string()).unwrap();
        let el = parsed.document_element().unwrap();
        prop_assert_eq!(parsed.attr(el, "v"), Some(v.as_str()));
    }

    #[test]
    fn xpath_star_count_matches_manual_walk(tree in tree_strategy()) {
        let doc = tree.build();
        let all = doc.descendants(doc.root());
        let elements = all.iter().filter(|&&n| doc.is_element(n)).count();
        let counted = XPath::parse("count(//*)").unwrap()
            .eval_root(&doc).unwrap()
            .into_number(&doc);
        prop_assert_eq!(counted as usize, elements);
    }

    #[test]
    fn text_content_is_concatenated_descendant_text(tree in tree_strategy()) {
        let doc = tree.build();
        let root = doc.document_element().unwrap();
        let mut expected = String::new();
        for n in doc.descendants(root) {
            if let Some(t) = doc.text(n) {
                expected.push_str(t);
            }
        }
        prop_assert_eq!(doc.text_content(root), expected);
    }

    #[test]
    fn pretty_and_compact_agree_on_structure(tree in tree_strategy()) {
        let doc = tree.build();
        let pretty = Document::parse(&doc.to_xml_pretty()).unwrap();
        let compact = Document::parse(&doc.to_xml_string()).unwrap();
        // element structure must be identical (text may gain whitespace
        // in pretty mode only *between* elements, never inside leaves)
        let count = |d: &Document| {
            d.descendants(d.root()).iter().filter(|&&n| d.is_element(n)).count()
        };
        prop_assert_eq!(count(&pretty), count(&compact));
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,120}") {
        let _ = Document::parse(&s); // must not panic
    }

    #[test]
    fn xpath_parser_never_panics(s in "\\PC{0,60}") {
        let _ = XPath::parse(&s); // must not panic
    }
}
