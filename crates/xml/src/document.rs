//! Arena-based XML document tree with parent pointers.
//!
//! Nodes are addressed by [`NodeId`] handles into a [`Document`] arena. The
//! arena layout keeps the tree cheap to traverse in all directions (child,
//! parent, sibling), which the XPath and XSLT engines rely on.

use crate::name::QName;

/// Handle to a node within a [`Document`].
///
/// A `NodeId` is only meaningful together with the document that produced
/// it; using it with another document yields unspecified (but memory-safe)
/// results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Index into the arena. Exposed for use as a map key / posting id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single attribute: qualified name plus value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as written (`xsl:match`, `name`, `xmlns:up2p`, ...).
    pub name: QName,
    /// Attribute value after entity expansion.
    pub value: String,
}

/// The payload of a node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// The document root. Exactly one per document; parent of the document
    /// element, top-level comments and processing instructions.
    Document,
    /// An element with a name and attributes.
    Element {
        /// Element name as written.
        name: QName,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// Character data (entity references already expanded).
    Text(String),
    /// A comment (`<!-- ... -->`), without the delimiters.
    Comment(String),
    /// A processing instruction (`<?target data?>`).
    ProcessingInstruction {
        /// The PI target.
        target: String,
        /// The PI data, possibly empty.
        data: String,
    },
}

#[derive(Debug, Clone)]
struct NodeData {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    kind: NodeKind,
}

/// An XML document: an arena of nodes rooted at [`Document::root`].
///
/// ```
/// use up2p_xml::Document;
/// let doc = Document::parse("<a><b>hi</b></a>")?;
/// let root_elem = doc.document_element().unwrap();
/// assert_eq!(doc.local_name(root_elem), Some("a"));
/// assert_eq!(doc.text_content(root_elem), "hi");
/// # Ok::<(), up2p_xml::ParseXmlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<NodeData>,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates an empty document containing only the document root node.
    pub fn new() -> Self {
        Document {
            nodes: vec![NodeData { parent: None, children: Vec::new(), kind: NodeKind::Document }],
        }
    }

    /// The document root node (kind [`NodeKind::Document`]).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// The outermost element, if the document has one.
    pub fn document_element(&self) -> Option<NodeId> {
        self.children(self.root()).iter().copied().find(|&c| self.is_element(c))
    }

    /// Number of nodes in the arena (including detached ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the document contains only the root node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.nodes[0].children.is_empty()
    }

    fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    fn data_mut(&mut self, id: NodeId) -> &mut NodeData {
        &mut self.nodes[id.index()]
    }

    /// The kind (element/text/comment/...) of `id`.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.data(id).kind
    }

    /// `true` when `id` is an element node.
    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.data(id).kind, NodeKind::Element { .. })
    }

    /// `true` when `id` is a text node.
    pub fn is_text(&self, id: NodeId) -> bool {
        matches!(self.data(id).kind, NodeKind::Text(_))
    }

    /// Element name, or `None` for non-element nodes.
    pub fn name(&self, id: NodeId) -> Option<&QName> {
        match &self.data(id).kind {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Local part of the element name, or `None` for non-elements.
    pub fn local_name(&self, id: NodeId) -> Option<&str> {
        self.name(id).map(|q| q.local())
    }

    /// Text of a text node, or `None` for other kinds.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match &self.data(id).kind {
            NodeKind::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Attributes of an element (empty slice for non-elements).
    pub fn attributes(&self, id: NodeId) -> &[Attribute] {
        match &self.data(id).kind {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// Value of the attribute whose full name (as written) is `name`.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attributes(id).iter().find(|a| a.name.to_string() == name).map(|a| a.value.as_str())
    }

    /// Value of the first attribute whose *local* name is `local`,
    /// regardless of prefix.
    pub fn attr_local(&self, id: NodeId, local: &str) -> Option<&str> {
        self.attributes(id).iter().find(|a| a.name.local() == local).map(|a| a.value.as_str())
    }

    /// Sets (or replaces) an attribute on an element.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an element.
    pub fn set_attr(&mut self, id: NodeId, name: QName, value: impl Into<String>) {
        match &mut self.data_mut(id).kind {
            NodeKind::Element { attributes, .. } => {
                let value = value.into();
                if let Some(a) = attributes.iter_mut().find(|a| a.name == name) {
                    a.value = value;
                } else {
                    attributes.push(Attribute { name, value });
                }
            }
            _ => panic!("set_attr on non-element node"),
        }
    }

    /// Removes an attribute by full name, returning its value if present.
    pub fn remove_attr(&mut self, id: NodeId, name: &str) -> Option<String> {
        match &mut self.data_mut(id).kind {
            NodeKind::Element { attributes, .. } => {
                let i = attributes.iter().position(|a| a.name.to_string() == name)?;
                Some(attributes.remove(i).value)
            }
            _ => None,
        }
    }

    /// Children of `id` in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.data(id).children
    }

    /// Child elements of `id` in document order.
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.data(id).children.iter().copied().filter(move |&c| self.is_element(c))
    }

    /// First child element with the given local name.
    pub fn child_named(&self, id: NodeId, local: &str) -> Option<NodeId> {
        self.child_elements(id).find(|&c| self.local_name(c) == Some(local))
    }

    /// All child elements with the given local name.
    pub fn children_named<'a>(
        &'a self,
        id: NodeId,
        local: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.child_elements(id).filter(move |&c| self.local_name(c) == Some(local))
    }

    /// Parent of `id`, or `None` for the root and detached nodes.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).parent
    }

    /// Concatenation of all descendant text nodes, in document order.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match &self.data(id).kind {
            NodeKind::Text(t) => out.push_str(t),
            _ => {
                for &c in &self.data(id).children {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// All descendants of `id` (excluding `id`) in document order.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.push_descendants(id, &mut out);
        out
    }

    fn push_descendants(&self, id: NodeId, out: &mut Vec<NodeId>) {
        for &c in &self.data(id).children {
            out.push(c);
            self.push_descendants(c, out);
        }
    }

    /// Ancestors of `id` from parent to root.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// Creates a detached element node.
    pub fn create_element(&mut self, name: QName) -> NodeId {
        self.push_node(NodeKind::Element { name, attributes: Vec::new() })
    }

    /// Creates a detached text node.
    pub fn create_text(&mut self, text: impl Into<String>) -> NodeId {
        self.push_node(NodeKind::Text(text.into()))
    }

    /// Creates a detached comment node.
    pub fn create_comment(&mut self, text: impl Into<String>) -> NodeId {
        self.push_node(NodeKind::Comment(text.into()))
    }

    /// Creates a detached processing-instruction node.
    pub fn create_pi(&mut self, target: impl Into<String>, data: impl Into<String>) -> NodeId {
        self.push_node(NodeKind::ProcessingInstruction {
            target: target.into(),
            data: data.into(),
        })
    }

    fn push_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData { parent: None, children: Vec::new(), kind });
        id
    }

    /// Appends `child` (which must be detached) as the last child of
    /// `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `child` already has a parent, if `parent` cannot have
    /// children (text/comment/PI), or if the edge would create a cycle.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        assert!(self.data(child).parent.is_none(), "node already has a parent");
        assert!(
            matches!(self.data(parent).kind, NodeKind::Document | NodeKind::Element { .. }),
            "parent node cannot have children"
        );
        assert_ne!(parent, child, "node cannot be its own child");
        debug_assert!(
            !self.descendants(child).contains(&parent),
            "appending would create a cycle"
        );
        self.data_mut(parent).children.push(child);
        self.data_mut(child).parent = Some(parent);
    }

    /// Detaches `id` from its parent (no-op if already detached).
    pub fn detach(&mut self, id: NodeId) {
        if let Some(p) = self.data_mut(id).parent.take() {
            self.data_mut(p).children.retain(|&c| c != id);
        }
    }

    /// Recursively copies `node` from `src` into this document, returning
    /// the (detached) copy root.
    pub fn import_subtree(&mut self, src: &Document, node: NodeId) -> NodeId {
        let kind = src.data(node).kind.clone();
        let copy = self.push_node(kind);
        for &c in src.children(node) {
            let cc = self.import_subtree(src, c);
            self.data_mut(cc).parent = Some(copy);
            self.data_mut(copy).children.push(cc);
        }
        copy
    }

    /// Resolves `prefix` (or the default namespace for `None`) to a
    /// namespace URI by walking `xmlns` declarations from `node` upward.
    ///
    /// The `xml` prefix is bound per the XML namespaces spec.
    pub fn namespace_uri(&self, node: NodeId, prefix: Option<&str>) -> Option<String> {
        if prefix == Some("xml") {
            return Some("http://www.w3.org/XML/1998/namespace".to_string());
        }
        let mut cur = Some(node);
        while let Some(n) = cur {
            for a in self.attributes(n) {
                let matches = match prefix {
                    None => a.name.is_unprefixed("xmlns"),
                    Some(p) => a.name.prefix() == Some("xmlns") && a.name.local() == p,
                };
                if matches {
                    if a.value.is_empty() {
                        return None; // explicit un-declaration
                    }
                    return Some(a.value.clone());
                }
            }
            cur = self.parent(n);
        }
        None
    }

    /// Namespace URI of an element, resolved through its own prefix.
    pub fn element_namespace(&self, node: NodeId) -> Option<String> {
        let name = self.name(node)?;
        self.namespace_uri(node, name.prefix())
    }

    /// Compares two nodes by document order (pre-order position).
    ///
    /// Detached nodes order after attached ones.
    pub fn cmp_document_order(&self, a: NodeId, b: NodeId) -> std::cmp::Ordering {
        if a == b {
            return std::cmp::Ordering::Equal;
        }
        let pa = self.root_path(a);
        let pb = self.root_path(b);
        pa.cmp(&pb)
    }

    /// Path of child indices from the root to `id`; used for document-order
    /// comparison. A leading `usize::MAX` marks detached nodes.
    fn root_path(&self, id: NodeId) -> Vec<usize> {
        let mut rev = Vec::new();
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            let idx = self.children(p).iter().position(|&c| c == cur).unwrap_or(usize::MAX);
            rev.push(idx);
            cur = p;
        }
        if cur != self.root() {
            rev.push(usize::MAX);
        }
        rev.reverse();
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut d = Document::new();
        let root = d.create_element(QName::local_only("community"));
        d.append_child(d.root(), root);
        let name = d.create_element(QName::local_only("name"));
        d.append_child(root, name);
        let t = d.create_text("mp3");
        d.append_child(name, t);
        (d, root, name, t)
    }

    #[test]
    fn build_and_navigate() {
        let (d, root, name, t) = sample();
        assert_eq!(d.document_element(), Some(root));
        assert_eq!(d.parent(name), Some(root));
        assert_eq!(d.parent(t), Some(name));
        assert_eq!(d.children(root), &[name]);
        assert_eq!(d.text_content(root), "mp3");
        assert_eq!(d.local_name(root), Some("community"));
    }

    #[test]
    fn attributes_set_get_remove() {
        let (mut d, root, ..) = sample();
        d.set_attr(root, QName::local_only("category"), "music");
        assert_eq!(d.attr(root, "category"), Some("music"));
        d.set_attr(root, QName::local_only("category"), "audio");
        assert_eq!(d.attr(root, "category"), Some("audio"));
        assert_eq!(d.attributes(root).len(), 1);
        assert_eq!(d.remove_attr(root, "category"), Some("audio".into()));
        assert_eq!(d.attr(root, "category"), None);
    }

    #[test]
    fn attr_local_ignores_prefix() {
        let (mut d, root, ..) = sample();
        d.set_attr(root, QName::prefixed("up2p", "searchable"), "true");
        assert_eq!(d.attr_local(root, "searchable"), Some("true"));
        assert_eq!(d.attr(root, "up2p:searchable"), Some("true"));
        assert_eq!(d.attr(root, "searchable"), None);
    }

    #[test]
    fn detach_and_reattach() {
        let (mut d, root, name, _) = sample();
        d.detach(name);
        assert_eq!(d.children(root), &[] as &[NodeId]);
        assert_eq!(d.parent(name), None);
        d.append_child(root, name);
        assert_eq!(d.children(root), &[name]);
    }

    #[test]
    #[should_panic(expected = "already has a parent")]
    fn double_append_panics() {
        let (mut d, root, name, _) = sample();
        d.append_child(root, name);
    }

    #[test]
    fn descendants_in_document_order() {
        let (d, root, name, t) = sample();
        assert_eq!(d.descendants(root), vec![name, t]);
        assert_eq!(d.descendants(d.root()), vec![root, name, t]);
    }

    #[test]
    fn document_order_comparison() {
        let (mut d, root, name, t) = sample();
        let late = d.create_element(QName::local_only("description"));
        d.append_child(root, late);
        use std::cmp::Ordering::*;
        assert_eq!(d.cmp_document_order(root, name), Less);
        assert_eq!(d.cmp_document_order(t, late), Less);
        assert_eq!(d.cmp_document_order(late, root), Greater);
        assert_eq!(d.cmp_document_order(name, name), Equal);
    }

    #[test]
    fn namespace_resolution_walks_ancestors() {
        let mut d = Document::new();
        let root = d.create_element(QName::local_only("schema"));
        d.append_child(d.root(), root);
        d.set_attr(root, QName::local_only("xmlns"), "http://www.w3.org/2001/XMLSchema");
        d.set_attr(root, QName::prefixed("xmlns", "up2p"), "http://up2p.example/ns");
        let child = d.create_element(QName::local_only("element"));
        d.append_child(root, child);
        assert_eq!(
            d.namespace_uri(child, None).as_deref(),
            Some("http://www.w3.org/2001/XMLSchema")
        );
        assert_eq!(d.namespace_uri(child, Some("up2p")).as_deref(), Some("http://up2p.example/ns"));
        assert_eq!(d.namespace_uri(child, Some("zzz")), None);
        assert_eq!(d.element_namespace(child).as_deref(), Some("http://www.w3.org/2001/XMLSchema"));
    }

    #[test]
    fn import_subtree_copies_recursively() {
        let (src, root, ..) = sample();
        let mut dst = Document::new();
        let copy = dst.import_subtree(&src, root);
        dst.append_child(dst.root(), copy);
        assert_eq!(dst.text_content(copy), "mp3");
        assert_eq!(dst.local_name(copy), Some("community"));
        // the copy is independent of the source
        assert_eq!(src.text_content(root), "mp3");
    }

    #[test]
    fn empty_document_reports_empty() {
        let d = Document::new();
        assert!(d.is_empty());
        assert_eq!(d.document_element(), None);
        assert_eq!(d.len(), 1);
    }
}
