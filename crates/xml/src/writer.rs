//! Serialization of [`Document`] trees back to XML text.

use crate::document::{Document, NodeId, NodeKind};
use crate::escape::{escape_attr, escape_text};
use std::fmt::Write as _;

/// Serialization options.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct WriteOptions {
    /// Emit an `<?xml version="1.0" encoding="UTF-8"?>` declaration.
    pub declaration: bool,
    /// Pretty-print with the given indent string, or `None` for compact
    /// output that preserves text exactly.
    pub indent: Option<String>,
}


impl WriteOptions {
    /// Compact output without a declaration (the default).
    pub fn compact() -> Self {
        Self::default()
    }

    /// Two-space pretty-printing with a declaration.
    pub fn pretty() -> Self {
        WriteOptions { declaration: true, indent: Some("  ".to_string()) }
    }
}

impl Document {
    /// Serializes the whole document compactly (no declaration).
    ///
    /// Compact output round-trips: `Document::parse(doc.to_xml_string())`
    /// reproduces an equivalent tree.
    pub fn to_xml_string(&self) -> String {
        self.to_xml_with(&WriteOptions::compact())
    }

    /// Serializes the whole document with a declaration and two-space
    /// indentation. Pretty output inserts whitespace and is intended for
    /// human consumption, not round-tripping of mixed content.
    pub fn to_xml_pretty(&self) -> String {
        self.to_xml_with(&WriteOptions::pretty())
    }

    /// Serializes the whole document with explicit options.
    pub fn to_xml_with(&self, options: &WriteOptions) -> String {
        let mut out = String::new();
        if options.declaration {
            out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
            if options.indent.is_some() {
                out.push('\n');
            }
        }
        for &child in self.children(self.root()) {
            self.write_node(child, options, 0, &mut out);
            if options.indent.is_some() {
                out.push('\n');
            }
        }
        if options.indent.is_some() && out.ends_with('\n') {
            out.pop();
        }
        out
    }

    /// Serializes the subtree rooted at `node` compactly.
    pub fn node_to_xml_string(&self, node: NodeId) -> String {
        let mut out = String::new();
        self.write_node(node, &WriteOptions::compact(), 0, &mut out);
        out
    }

    fn write_node(&self, id: NodeId, options: &WriteOptions, depth: usize, out: &mut String) {
        match self.kind(id) {
            NodeKind::Document => {
                for &c in self.children(id) {
                    self.write_node(c, options, depth, out);
                }
            }
            NodeKind::Element { name, attributes } => {
                self.write_indent(options, depth, out);
                let _ = write!(out, "<{name}");
                for a in attributes {
                    let _ = write!(out, " {}=\"{}\"", a.name, escape_attr(&a.value));
                }
                // empty text nodes contribute nothing; skip them so that
                // `<a></a>` and `<a/>` serialize identically
                let children: Vec<NodeId> = self
                    .children(id)
                    .iter()
                    .copied()
                    .filter(|&c| self.text(c).is_none_or(|t| !t.is_empty()))
                    .collect();
                if children.is_empty() {
                    out.push_str("/>");
                } else {
                    out.push('>');
                    let text_only =
                        children.iter().all(|&c: &NodeId| matches!(self.kind(c), NodeKind::Text(_)));
                    if options.indent.is_some() && !text_only {
                        for &c in &children {
                            out.push('\n');
                            self.write_node(c, options, depth + 1, out);
                        }
                        out.push('\n');
                        self.write_indent(options, depth, out);
                    } else {
                        for &c in &children {
                            self.write_node(c, &WriteOptions::compact(), 0, out);
                        }
                    }
                    let _ = write!(out, "</{name}>");
                }
            }
            NodeKind::Text(t) => {
                out.push_str(&escape_text(t));
            }
            NodeKind::Comment(c) => {
                self.write_indent(options, depth, out);
                let _ = write!(out, "<!--{c}-->");
            }
            NodeKind::ProcessingInstruction { target, data } => {
                self.write_indent(options, depth, out);
                if data.is_empty() {
                    let _ = write!(out, "<?{target}?>");
                } else {
                    let _ = write!(out, "<?{target} {data}?>");
                }
            }
        }
    }

    fn write_indent(&self, options: &WriteOptions, depth: usize, out: &mut String) {
        if let Some(indent) = &options.indent {
            for _ in 0..depth {
                out.push_str(indent);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let src = r#"<a x="1&quot;2"><b>t &amp; u</b><c/><!--note--><?pi data?></a>"#;
        let d = Document::parse(src).unwrap();
        let out = d.to_xml_string();
        let d2 = Document::parse(&out).unwrap();
        assert_eq!(out, d2.to_xml_string());
        assert_eq!(d.text_content(d.document_element().unwrap()), "t & u");
    }

    #[test]
    fn pretty_output_has_declaration_and_indent() {
        let d = Document::parse("<a><b>x</b></a>").unwrap();
        let s = d.to_xml_pretty();
        assert!(s.starts_with("<?xml version=\"1.0\""));
        assert!(s.contains("\n  <b>x</b>"));
    }

    #[test]
    fn text_only_elements_stay_inline_when_pretty() {
        let d = Document::parse("<a><name>Observer</name></a>").unwrap();
        let s = d.to_xml_pretty();
        assert!(s.contains("<name>Observer</name>"), "got: {s}");
    }

    #[test]
    fn empty_element_collapses() {
        let d = Document::parse("<a></a>").unwrap();
        assert_eq!(d.to_xml_string(), "<a/>");
    }

    #[test]
    fn node_to_xml_serializes_subtree() {
        let d = Document::parse("<a><b i='1'>x</b></a>").unwrap();
        let a = d.document_element().unwrap();
        let b = d.child_named(a, "b").unwrap();
        assert_eq!(d.node_to_xml_string(b), "<b i=\"1\">x</b>");
    }

    #[test]
    fn attr_special_chars_escaped() {
        let mut d = Document::new();
        let e = d.create_element("a".into());
        d.append_child(d.root(), e);
        d.set_attr(e, "v".into(), "a\"b<c>&d\ne");
        let s = d.to_xml_string();
        assert_eq!(s, "<a v=\"a&quot;b&lt;c&gt;&amp;d&#10;e\"/>");
        // and it parses back to the same value
        let d2 = Document::parse(&s).unwrap();
        assert_eq!(d2.attr(d2.document_element().unwrap(), "v"), Some("a\"b<c>&d\ne"));
    }
}
