//! Error types for XML parsing and XPath evaluation.

use std::fmt;

/// Position (1-based line and column) in the source text where an error was
/// detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TextPos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in characters, not bytes).
    pub col: u32,
}

impl fmt::Display for TextPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Error produced while parsing an XML document.
///
/// The `Display` form is lowercase without trailing punctuation and includes
/// the source position, e.g. `unexpected end of input at 3:17`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseXmlError {
    kind: ParseErrorKind,
    pos: TextPos,
}

/// The specific reason a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A character that is not allowed at this point was found.
    UnexpectedChar(char),
    /// An element name, attribute name or other token was malformed.
    InvalidName(String),
    /// A close tag did not match the open tag.
    MismatchedTag {
        /// Name of the element that was opened.
        open: String,
        /// Name found in the close tag.
        close: String,
    },
    /// An attribute appeared twice on the same element.
    DuplicateAttribute(String),
    /// A `&name;` entity reference was not one of the predefined five and
    /// not a valid character reference.
    UnknownEntity(String),
    /// A numeric character reference did not denote a valid char.
    InvalidCharRef(String),
    /// Document contained content after the root element or no root at all.
    InvalidDocumentStructure(String),
    /// Anything else, with a human-readable description.
    Other(String),
}

impl ParseXmlError {
    pub(crate) fn new(kind: ParseErrorKind, pos: TextPos) -> Self {
        ParseXmlError { kind, pos }
    }

    /// The reason parsing failed.
    pub fn kind(&self) -> &ParseErrorKind {
        &self.kind
    }

    /// Where in the input the failure was detected.
    pub fn pos(&self) -> TextPos {
        self.pos
    }
}

impl fmt::Display for ParseXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::UnexpectedEof => write!(f, "unexpected end of input")?,
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}")?,
            ParseErrorKind::InvalidName(n) => write!(f, "invalid name {n:?}")?,
            ParseErrorKind::MismatchedTag { open, close } => {
                write!(f, "mismatched tag: <{open}> closed by </{close}>")?
            }
            ParseErrorKind::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}")?,
            ParseErrorKind::UnknownEntity(e) => write!(f, "unknown entity &{e};")?,
            ParseErrorKind::InvalidCharRef(r) => write!(f, "invalid character reference {r:?}")?,
            ParseErrorKind::InvalidDocumentStructure(d) => write!(f, "{d}")?,
            ParseErrorKind::Other(d) => write!(f, "{d}")?,
        }
        write!(f, " at {}", self.pos)
    }
}

impl std::error::Error for ParseXmlError {}

/// Error produced while parsing or evaluating an XPath-lite expression.
#[derive(Debug, Clone, PartialEq)]
pub struct XPathError {
    message: String,
}

impl XPathError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        XPathError { message: message.into() }
    }

    /// Human-readable description of the failure.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xpath error: {}", self.message)
    }
}

impl std::error::Error for XPathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseXmlError::new(ParseErrorKind::UnexpectedEof, TextPos { line: 3, col: 17 });
        assert_eq!(e.to_string(), "unexpected end of input at 3:17");
    }

    #[test]
    fn display_mismatched_tag() {
        let e = ParseXmlError::new(
            ParseErrorKind::MismatchedTag { open: "a".into(), close: "b".into() },
            TextPos { line: 1, col: 5 },
        );
        assert_eq!(e.to_string(), "mismatched tag: <a> closed by </b> at 1:5");
    }

    #[test]
    fn xpath_error_display() {
        let e = XPathError::new("unknown function foo");
        assert_eq!(e.to_string(), "xpath error: unknown function foo");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseXmlError>();
        assert_send_sync::<XPathError>();
    }
}
