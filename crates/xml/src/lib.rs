//! # up2p-xml
//!
//! XML substrate for the U-P2P reproduction: a from-scratch XML 1.0 subset
//! parser, an arena DOM with parent pointers, a serializer and an XPath 1.0
//! subset engine.
//!
//! The paper's implementation used the Xerces (parsing) and Xalan (XSLT)
//! Java libraries; this crate plays the Xerces role and provides the XPath
//! engine that both the XSLT engine (`up2p-xslt`) and the metadata query
//! layer (`up2p-store`) build on.
//!
//! ## Quick start
//!
//! ```
//! use up2p_xml::{Document, ElementBuilder, XPath};
//!
//! // Parse
//! let doc = Document::parse("<community><name>mp3</name></community>")?;
//! assert_eq!(doc.text_content(doc.document_element().unwrap()), "mp3");
//!
//! // Query
//! let xp = XPath::parse("/community/name")?;
//! assert_eq!(xp.eval_root(&doc)?.into_string(&doc), "mp3");
//!
//! // Build and serialize
//! let built = ElementBuilder::new("community").child_text("name", "cml").build();
//! assert_eq!(built.to_xml_string(), "<community><name>cml</name></community>");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod document;
mod error;
mod escape;
mod name;
mod parser;
mod writer;
pub mod xpath;

pub use builder::ElementBuilder;
pub use document::{Attribute, Document, NodeId, NodeKind};
pub use error::{ParseErrorKind, ParseXmlError, TextPos, XPathError};
pub use escape::{escape_attr, escape_text, unescape};
pub use name::{is_valid_ncname, ParseQNameError, QName};
pub use writer::WriteOptions;
pub use xpath::{Context, Value, XNode, XPath};

/// The XML Schema namespace URI (`http://www.w3.org/2001/XMLSchema`).
pub const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema";
/// The XSLT 1.0 namespace URI (`http://www.w3.org/1999/XSL/Transform`).
pub const XSLT_NS: &str = "http://www.w3.org/1999/XSL/Transform";
/// The U-P2P extension namespace used for `up2p:searchable` annotations.
pub const UP2P_NS: &str = "http://up2p.sce.carleton.ca/ns";
