//! Ergonomic construction of XML trees.
//!
//! ```
//! use up2p_xml::ElementBuilder;
//!
//! let doc = ElementBuilder::new("community")
//!     .attr("category", "music")
//!     .child_text("name", "mp3")
//!     .child(ElementBuilder::new("protocol").text("Gnutella"))
//!     .build();
//! assert_eq!(
//!     doc.to_xml_string(),
//!     r#"<community category="music"><name>mp3</name><protocol>Gnutella</protocol></community>"#
//! );
//! ```

use crate::document::{Document, NodeId};
use crate::name::QName;

#[derive(Debug, Clone)]
enum BuilderNode {
    Element(ElementBuilder),
    Text(String),
    Comment(String),
}

/// A consuming builder for element subtrees.
#[derive(Debug, Clone)]
pub struct ElementBuilder {
    name: QName,
    attrs: Vec<(QName, String)>,
    children: Vec<BuilderNode>,
}

impl ElementBuilder {
    /// Starts building an element with the given name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid qualified name.
    pub fn new(name: impl Into<QName>) -> Self {
        ElementBuilder { name: name.into(), attrs: Vec::new(), children: Vec::new() }
    }

    /// Adds an attribute.
    pub fn attr(mut self, name: impl Into<QName>, value: impl Into<String>) -> Self {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Appends a text child.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(BuilderNode::Text(text.into()));
        self
    }

    /// Appends a comment child.
    pub fn comment(mut self, text: impl Into<String>) -> Self {
        self.children.push(BuilderNode::Comment(text.into()));
        self
    }

    /// Appends an element child.
    pub fn child(mut self, child: ElementBuilder) -> Self {
        self.children.push(BuilderNode::Element(child));
        self
    }

    /// Appends `<name>text</name>` — the most common leaf shape in U-P2P
    /// object documents.
    pub fn child_text(self, name: impl Into<QName>, text: impl Into<String>) -> Self {
        self.child(ElementBuilder::new(name).text(text))
    }

    /// Appends several element children.
    pub fn children<I: IntoIterator<Item = ElementBuilder>>(mut self, iter: I) -> Self {
        self.children.extend(iter.into_iter().map(BuilderNode::Element));
        self
    }

    /// Builds a fresh document whose document element is this subtree.
    pub fn build(self) -> Document {
        let mut doc = Document::new();
        let root = doc.root();
        self.attach(&mut doc, root);
        doc
    }

    /// Materializes this subtree inside `doc` under `parent`, returning the
    /// id of the newly created element.
    ///
    /// # Panics
    ///
    /// Panics if `parent` cannot have children.
    pub fn attach(self, doc: &mut Document, parent: NodeId) -> NodeId {
        let el = doc.create_element(self.name);
        for (name, value) in self.attrs {
            doc.set_attr(el, name, value);
        }
        doc.append_child(parent, el);
        for child in self.children {
            match child {
                BuilderNode::Element(b) => {
                    b.attach(doc, el);
                }
                BuilderNode::Text(t) => {
                    let id = doc.create_text(t);
                    doc.append_child(el, id);
                }
                BuilderNode::Comment(c) => {
                    let id = doc.create_comment(c);
                    doc.append_child(el, id);
                }
            }
        }
        el
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structure() {
        let doc = ElementBuilder::new("pattern")
            .attr("lang", "en")
            .child_text("name", "Observer")
            .child(
                ElementBuilder::new("participants")
                    .child_text("participant", "Subject")
                    .child_text("participant", "Observer"),
            )
            .build();
        let root = doc.document_element().unwrap();
        assert_eq!(doc.attr(root, "lang"), Some("en"));
        let participants = doc.child_named(root, "participants").unwrap();
        assert_eq!(doc.children_named(participants, "participant").count(), 2);
    }

    #[test]
    fn attach_into_existing_document() {
        let mut doc = ElementBuilder::new("results").build();
        let root = doc.document_element().unwrap();
        let id = ElementBuilder::new("hit").attr("peer", "p1").attach(&mut doc, root);
        assert_eq!(doc.parent(id), Some(root));
        assert_eq!(doc.to_xml_string(), r#"<results><hit peer="p1"/></results>"#);
    }

    #[test]
    fn children_from_iterator() {
        let doc = ElementBuilder::new("list")
            .children((0..3).map(|i| ElementBuilder::new("item").text(i.to_string())))
            .build();
        let root = doc.document_element().unwrap();
        assert_eq!(doc.children_named(root, "item").count(), 3);
    }

    #[test]
    fn comments_round_trip() {
        let doc = ElementBuilder::new("a").comment("generated").build();
        assert_eq!(doc.to_xml_string(), "<a><!--generated--></a>");
    }
}
