//! Escaping and unescaping of XML character data and attribute values.

use crate::error::{ParseErrorKind, ParseXmlError, TextPos};

/// Escapes text content: `&`, `<`, `>` are replaced by entity references.
///
/// ```
/// assert_eq!(up2p_xml::escape_text("a < b & c"), "a &lt; b &amp; c");
/// ```
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes an attribute value for inclusion in double quotes: additionally
/// escapes `"`, tab, CR and LF so the value round-trips exactly.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\t' => out.push_str("&#9;"),
            '\n' => out.push_str("&#10;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
    out
}

/// Expands the five predefined entities and numeric character references in
/// `s`.
///
/// # Errors
///
/// Returns an error for unknown entities (`&foo;`), unterminated references
/// and numeric references that do not denote a valid character.
pub fn unescape(s: &str) -> Result<String, ParseXmlError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &s[i + 1..];
        let Some(end) = rest.find(';') else {
            return Err(err_at("unterminated entity reference", s, i));
        };
        let name = &rest[..end];
        out.push(expand_entity(name).map_err(|k| ParseXmlError::new(k, pos_of(s, i)))?);
        // advance the iterator past the entity
        for _ in 0..=end {
            chars.next();
        }
    }
    Ok(out)
}

/// Expands a single entity name (without `&` and `;`) to its character.
pub(crate) fn expand_entity(name: &str) -> Result<char, ParseErrorKind> {
    match name {
        "lt" => Ok('<'),
        "gt" => Ok('>'),
        "amp" => Ok('&'),
        "apos" => Ok('\''),
        "quot" => Ok('"'),
        _ => {
            if let Some(num) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                u32::from_str_radix(num, 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| ParseErrorKind::InvalidCharRef(name.to_string()))
            } else if let Some(num) = name.strip_prefix('#') {
                num.parse::<u32>()
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| ParseErrorKind::InvalidCharRef(name.to_string()))
            } else {
                Err(ParseErrorKind::UnknownEntity(name.to_string()))
            }
        }
    }
}

fn pos_of(s: &str, byte: usize) -> TextPos {
    let mut line = 1;
    let mut col = 1;
    for (i, c) in s.char_indices() {
        if i >= byte {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    TextPos { line, col }
}

fn err_at(msg: &str, s: &str, byte: usize) -> ParseXmlError {
    ParseXmlError::new(ParseErrorKind::Other(msg.to_string()), pos_of(s, byte))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_and_unescape_text_round_trip() {
        let original = "design <patterns> & \"gang of four\" 'quotes'";
        let escaped = escape_text(original);
        assert_eq!(unescape(&escaped).unwrap(), original);
    }

    #[test]
    fn attr_escaping_handles_quotes_and_whitespace() {
        assert_eq!(escape_attr("a\"b\nc"), "a&quot;b&#10;c");
    }

    #[test]
    fn unescape_numeric_refs() {
        assert_eq!(unescape("&#65;&#x42;&#x63;").unwrap(), "ABc");
    }

    #[test]
    fn unescape_rejects_unknown_entity() {
        let e = unescape("&nbsp;").unwrap_err();
        assert!(e.to_string().contains("unknown entity"));
    }

    #[test]
    fn unescape_rejects_unterminated() {
        assert!(unescape("x &amp y").is_err());
    }

    #[test]
    fn unescape_rejects_surrogate_char_ref() {
        assert!(unescape("&#xD800;").is_err());
    }

    #[test]
    fn error_position_counts_lines() {
        let e = unescape("ok\nok &bad; x").unwrap_err();
        assert_eq!(e.pos().line, 2);
        assert_eq!(e.pos().col, 4);
    }
}
