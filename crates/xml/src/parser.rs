//! Recursive-descent parser producing a [`Document`] arena.
//!
//! Supported XML 1.0 subset: prolog (`<?xml ...?>`), `DOCTYPE` declarations
//! (skipped, including a bracketed internal subset), elements, attributes
//! with `'` or `"` quotes, character data, the five predefined entities,
//! numeric character references, CDATA sections, comments, and processing
//! instructions. Not supported: custom entity declarations and DTD
//! validation — the paper's documents need neither.

use crate::document::{Document, NodeId};
use crate::error::{ParseErrorKind, ParseXmlError, TextPos};
use crate::escape::expand_entity;
use crate::name::{is_name_char, is_name_start_char, QName};

impl Document {
    /// Parses an XML document from a string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseXmlError`] with line/column information for malformed
    /// input (mismatched tags, invalid names, unknown entities, trailing
    /// content, ...).
    pub fn parse(input: &str) -> Result<Document, ParseXmlError> {
        let mut p = Parser::new(input);
        p.parse_document()?;
        Ok(p.doc)
    }

    /// Parses a string that contains a single element (fragment form).
    ///
    /// Convenience wrapper over [`Document::parse`] returning the document
    /// element id alongside the document.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Document::parse`], plus an error when the input
    /// has no document element.
    pub fn parse_element(input: &str) -> Result<(Document, NodeId), ParseXmlError> {
        let doc = Document::parse(input)?;
        let el = doc.document_element().ok_or_else(|| {
            ParseXmlError::new(
                ParseErrorKind::InvalidDocumentStructure("no document element".into()),
                TextPos { line: 1, col: 1 },
            )
        })?;
        Ok((doc, el))
    }
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    doc: Document,
    _input: &'a str,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            doc: Document::new(),
            _input: input,
        }
    }

    fn text_pos(&self) -> TextPos {
        TextPos { line: self.line, col: self.col }
    }

    fn err(&self, kind: ParseErrorKind) -> ParseXmlError {
        ParseXmlError::new(kind, self.text_pos())
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat(&mut self, expected: char) -> Result<(), ParseXmlError> {
        match self.bump() {
            Some(c) if c == expected => Ok(()),
            Some(c) => Err(self.err(ParseErrorKind::UnexpectedChar(c))),
            None => Err(self.err(ParseErrorKind::UnexpectedEof)),
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        s.chars().enumerate().all(|(i, c)| self.peek_at(i) == Some(c))
    }

    fn eat_str(&mut self, s: &str) -> Result<(), ParseXmlError> {
        for c in s.chars() {
            self.eat(c)?;
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.bump();
        }
    }

    fn parse_document(&mut self) -> Result<(), ParseXmlError> {
        // byte-order mark
        if self.peek() == Some('\u{FEFF}') {
            self.bump();
        }
        self.skip_ws();
        if self.starts_with("<?xml") {
            self.skip_pi_or_decl()?;
        }
        let mut saw_element = false;
        loop {
            self.skip_ws();
            match self.peek() {
                None => break,
                Some('<') => match self.peek_at(1) {
                    Some('!') if self.starts_with("<!--") => {
                        let c = self.parse_comment()?;
                        let root = self.doc.root();
                        self.doc.append_child(root, c);
                    }
                    Some('!') if self.starts_with("<!DOCTYPE") => self.skip_doctype()?,
                    Some('?') => {
                        let pi = self.parse_pi()?;
                        let root = self.doc.root();
                        self.doc.append_child(root, pi);
                    }
                    _ => {
                        if saw_element {
                            return Err(self.err(ParseErrorKind::InvalidDocumentStructure(
                                "multiple root elements".into(),
                            )));
                        }
                        let el = self.parse_element()?;
                        let root = self.doc.root();
                        self.doc.append_child(root, el);
                        saw_element = true;
                    }
                },
                Some(c) => return Err(self.err(ParseErrorKind::UnexpectedChar(c))),
            }
        }
        if !saw_element {
            return Err(self.err(ParseErrorKind::InvalidDocumentStructure(
                "document has no root element".into(),
            )));
        }
        Ok(())
    }

    fn skip_pi_or_decl(&mut self) -> Result<(), ParseXmlError> {
        self.eat_str("<?")?;
        while !self.starts_with("?>") {
            if self.bump().is_none() {
                return Err(self.err(ParseErrorKind::UnexpectedEof));
            }
        }
        self.eat_str("?>")
    }

    fn skip_doctype(&mut self) -> Result<(), ParseXmlError> {
        self.eat_str("<!DOCTYPE")?;
        let mut depth = 0usize;
        loop {
            match self.bump() {
                Some('[') => depth += 1,
                Some(']') => depth = depth.saturating_sub(1),
                Some('>') if depth == 0 => return Ok(()),
                Some(_) => {}
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_name(&mut self) -> Result<QName, ParseXmlError> {
        let start_pos = self.text_pos();
        let mut s = String::new();
        match self.peek() {
            Some(c) if is_name_start_char(c) || c == ':' => {}
            Some(c) => return Err(self.err(ParseErrorKind::UnexpectedChar(c))),
            None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
        }
        while let Some(c) = self.peek() {
            if is_name_char(c) || c == ':' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s.parse::<QName>()
            .map_err(|_| ParseXmlError::new(ParseErrorKind::InvalidName(s), start_pos))
    }

    fn parse_element(&mut self) -> Result<NodeId, ParseXmlError> {
        self.eat('<')?;
        let name = self.parse_name()?;
        let el = self.doc.create_element(name.clone());
        // attributes
        loop {
            self.skip_ws();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    break;
                }
                Some('/') => {
                    self.bump();
                    self.eat('>')?;
                    return Ok(el);
                }
                Some(c) if is_name_start_char(c) => {
                    let aname = self.parse_name()?;
                    if self.doc.attributes(el).iter().any(|a| a.name == aname) {
                        return Err(
                            self.err(ParseErrorKind::DuplicateAttribute(aname.to_string()))
                        );
                    }
                    self.skip_ws();
                    self.eat('=')?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    self.doc.set_attr(el, aname, value);
                }
                Some(c) => return Err(self.err(ParseErrorKind::UnexpectedChar(c))),
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
        // content
        self.parse_content(el)?;
        // close tag
        self.eat_str("</")?;
        let close = self.parse_name()?;
        if close != name {
            return Err(self.err(ParseErrorKind::MismatchedTag {
                open: name.to_string(),
                close: close.to_string(),
            }));
        }
        self.skip_ws();
        self.eat('>')?;
        Ok(el)
    }

    fn parse_content(&mut self, parent: NodeId) -> Result<(), ParseXmlError> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                Some('<') => {
                    if self.starts_with("</") {
                        self.flush_text(parent, &mut text);
                        return Ok(());
                    } else if self.starts_with("<!--") {
                        self.flush_text(parent, &mut text);
                        let c = self.parse_comment()?;
                        self.doc.append_child(parent, c);
                    } else if self.starts_with("<![CDATA[") {
                        self.parse_cdata(&mut text)?;
                    } else if self.starts_with("<?") {
                        self.flush_text(parent, &mut text);
                        let pi = self.parse_pi()?;
                        self.doc.append_child(parent, pi);
                    } else {
                        self.flush_text(parent, &mut text);
                        let child = self.parse_element()?;
                        self.doc.append_child(parent, child);
                    }
                }
                Some('&') => {
                    self.bump();
                    let mut ent = String::new();
                    loop {
                        match self.bump() {
                            Some(';') => break,
                            Some(c) if ent.len() < 12 => ent.push(c),
                            Some(_) => {
                                return Err(self.err(ParseErrorKind::UnknownEntity(ent)));
                            }
                            None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                        }
                    }
                    let c = expand_entity(&ent).map_err(|k| self.err(k))?;
                    text.push(c);
                }
                Some(_) => {
                    text.push(self.bump().unwrap());
                }
            }
        }
    }

    fn flush_text(&mut self, parent: NodeId, text: &mut String) {
        if !text.is_empty() {
            let t = self.doc.create_text(std::mem::take(text));
            self.doc.append_child(parent, t);
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseXmlError> {
        let quote = match self.bump() {
            Some(c @ ('"' | '\'')) => c,
            Some(c) => return Err(self.err(ParseErrorKind::UnexpectedChar(c))),
            None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
        };
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => return Ok(out),
                Some('<') => return Err(self.err(ParseErrorKind::UnexpectedChar('<'))),
                Some('&') => {
                    let mut ent = String::new();
                    loop {
                        match self.bump() {
                            Some(';') => break,
                            Some(c) if ent.len() < 12 => ent.push(c),
                            Some(_) => {
                                return Err(self.err(ParseErrorKind::UnknownEntity(ent)));
                            }
                            None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                        }
                    }
                    out.push(expand_entity(&ent).map_err(|k| self.err(k))?);
                }
                Some(c) => out.push(c),
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_comment(&mut self) -> Result<NodeId, ParseXmlError> {
        self.eat_str("<!--")?;
        let mut s = String::new();
        while !self.starts_with("-->") {
            match self.bump() {
                Some(c) => s.push(c),
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
        self.eat_str("-->")?;
        Ok(self.doc.create_comment(s))
    }

    fn parse_cdata(&mut self, text: &mut String) -> Result<(), ParseXmlError> {
        self.eat_str("<![CDATA[")?;
        while !self.starts_with("]]>") {
            match self.bump() {
                Some(c) => text.push(c),
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
        self.eat_str("]]>")
    }

    fn parse_pi(&mut self) -> Result<NodeId, ParseXmlError> {
        self.eat_str("<?")?;
        let target = self.parse_name()?.to_string();
        let mut data = String::new();
        self.skip_ws();
        while !self.starts_with("?>") {
            match self.bump() {
                Some(c) => data.push(c),
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }
        self.eat_str("?>")?;
        Ok(self.doc.create_pi(target, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::NodeKind;

    #[test]
    fn parse_simple_element() {
        let d = Document::parse("<a/>").unwrap();
        assert_eq!(d.local_name(d.document_element().unwrap()), Some("a"));
    }

    #[test]
    fn parse_nested_with_text() {
        let d = Document::parse("<a><b>one</b><b>two</b></a>").unwrap();
        let a = d.document_element().unwrap();
        let bs: Vec<_> = d.children_named(a, "b").collect();
        assert_eq!(bs.len(), 2);
        assert_eq!(d.text_content(bs[0]), "one");
        assert_eq!(d.text_content(bs[1]), "two");
    }

    #[test]
    fn parse_attributes_both_quote_styles() {
        let d = Document::parse(r#"<e a="1" b='2' xmlns:x="u"/>"#).unwrap();
        let e = d.document_element().unwrap();
        assert_eq!(d.attr(e, "a"), Some("1"));
        assert_eq!(d.attr(e, "b"), Some("2"));
        assert_eq!(d.attr(e, "xmlns:x"), Some("u"));
    }

    #[test]
    fn parse_prolog_doctype_comment_pi() {
        let src = r#"<?xml version="1.0"?>
<!DOCTYPE pattern [ <!ELEMENT pattern ANY> ]>
<!-- top comment -->
<?style hint?>
<pattern name="Observer"/>"#;
        let d = Document::parse(src).unwrap();
        let el = d.document_element().unwrap();
        assert_eq!(d.attr(el, "name"), Some("Observer"));
        // comment + pi + element are children of the root
        assert_eq!(d.children(d.root()).len(), 3);
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let d = Document::parse(r#"<a t="&lt;&amp;&quot;&#65;">x &gt; y &#x41;</a>"#).unwrap();
        let a = d.document_element().unwrap();
        assert_eq!(d.attr(a, "t"), Some("<&\"A"));
        assert_eq!(d.text_content(a), "x > y A");
    }

    #[test]
    fn cdata_becomes_text() {
        let d = Document::parse("<a><![CDATA[1 < 2 && 3 > 2]]></a>").unwrap();
        assert_eq!(d.text_content(d.document_element().unwrap()), "1 < 2 && 3 > 2");
    }

    #[test]
    fn mismatched_tags_error() {
        let e = Document::parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(e.kind(), ParseErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn duplicate_attribute_error() {
        let e = Document::parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(e.kind(), ParseErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn multiple_roots_error() {
        let e = Document::parse("<a/><b/>").unwrap_err();
        assert!(matches!(e.kind(), ParseErrorKind::InvalidDocumentStructure(_)));
    }

    #[test]
    fn empty_input_error() {
        assert!(Document::parse("").is_err());
        assert!(Document::parse("   \n ").is_err());
    }

    #[test]
    fn unknown_entity_error_with_position() {
        let e = Document::parse("<a>&nope;</a>").unwrap_err();
        assert!(matches!(e.kind(), ParseErrorKind::UnknownEntity(_)));
        assert_eq!(e.pos().line, 1);
    }

    #[test]
    fn unclosed_element_error() {
        let e = Document::parse("<a><b>").unwrap_err();
        assert!(matches!(e.kind(), ParseErrorKind::UnexpectedEof));
    }

    #[test]
    fn lt_in_attribute_rejected() {
        assert!(Document::parse(r#"<a x="<"/>"#).is_err());
    }

    #[test]
    fn whitespace_preserved_in_mixed_content() {
        let d = Document::parse("<a>one <b>two</b> three</a>").unwrap();
        assert_eq!(d.text_content(d.document_element().unwrap()), "one two three");
    }

    #[test]
    fn pi_inside_element() {
        let d = Document::parse("<a><?target some data?></a>").unwrap();
        let a = d.document_element().unwrap();
        let pi = d.children(a)[0];
        match d.kind(pi) {
            NodeKind::ProcessingInstruction { target, data } => {
                assert_eq!(target, "target");
                assert_eq!(data, "some data");
            }
            other => panic!("expected PI, got {other:?}"),
        }
    }

    #[test]
    fn bom_is_skipped() {
        let d = Document::parse("\u{FEFF}<a/>").unwrap();
        assert!(d.document_element().is_some());
    }

    #[test]
    fn error_position_tracks_lines() {
        let e = Document::parse("<a>\n  <b>\n</a>").unwrap_err();
        assert!(e.pos().line >= 3, "expected error on line 3+, got {}", e.pos());
    }

    #[test]
    fn parse_element_fragment_helper() {
        let (d, el) = Document::parse_element("<x v='1'/>").unwrap();
        assert_eq!(d.attr(el, "v"), Some("1"));
    }

    #[test]
    fn fig3_community_schema_parses() {
        // The exact schema of Fig. 3 in the paper.
        let src = r#"<?xml version="1.0"?>
<schema xmlns="http://www.w3.org/2001/XMLSchema">
 <element name="community">
  <complexType>
   <sequence>
    <element name="name" type="xsd:string"/>
    <element name="description" type="xsd:string"/>
    <element name="keywords" type="xsd:string"/>
    <element name="category" type="xsd:string"/>
    <element name="security" type="xsd:string"/>
    <element name="protocol" type="protocolTypes"/>
    <element name="schema" type="xsd:anyURI"/>
    <element name="displaystyle" type="xsd:anyURI"/>
    <element name="createstyle" type="xsd:anyURI"/>
    <element name="searchstyle" type="xsd:anyURI"/>
   </sequence>
  </complexType>
 </element>
 <simpleType name="protocolTypes">
  <restriction base="string">
   <enumeration value=""/>
   <enumeration value="Napster"/>
   <enumeration value="Gnutella"/>
   <enumeration value="FastTrack"/>
  </restriction>
 </simpleType>
</schema>"#;
        let d = Document::parse(src).unwrap();
        let schema = d.document_element().unwrap();
        assert_eq!(d.local_name(schema), Some("schema"));
        assert_eq!(
            d.namespace_uri(schema, None).as_deref(),
            Some("http://www.w3.org/2001/XMLSchema")
        );
        let element = d.child_named(schema, "element").unwrap();
        assert_eq!(d.attr(element, "name"), Some("community"));
        let st = d.child_named(schema, "simpleType").unwrap();
        let restriction = d.child_named(st, "restriction").unwrap();
        assert_eq!(d.children_named(restriction, "enumeration").count(), 4);
    }
}
