//! XPath 1.0 subset ("XPath-lite") used by the XSLT engine and the U-P2P
//! query layer.
//!
//! Supported: location paths with the `child`, `attribute`, `self`,
//! `parent`, `descendant`, `descendant-or-self`, `ancestor`,
//! `following-sibling` and `preceding-sibling` axes (plus the `.` `..` `@`
//! `//` abbreviations); name/wildcard/`text()`/`node()`/`comment()` node
//! tests; predicates; the full boolean/relational/arithmetic operator set;
//! variables (`$x`); the core function library. Node-sets may contain
//! attribute nodes ([`XNode::Attr`]) with correct set-comparison semantics.
//!
//! ```
//! use up2p_xml::{Document, XPath};
//! let doc = Document::parse("<c><name>mp3</name><name>cml</name></c>")?;
//! let xp = XPath::parse("/c/name[2]")?;
//! let v = xp.eval_root(&doc)?;
//! assert_eq!(v.into_string(&doc), "cml");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::document::{Document, NodeId, NodeKind};
use crate::error::XPathError;
use std::collections::HashMap;
use std::fmt;

// ---------------------------------------------------------------------------
// values
// ---------------------------------------------------------------------------

/// A node in the XPath data model: either a tree node or an attribute of
/// one (attributes are not arena nodes in [`Document`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XNode {
    /// An element, text, comment, PI or the document root.
    Node(NodeId),
    /// Attribute `index` of element `NodeId`.
    Attr(NodeId, usize),
}

impl XNode {
    /// The underlying tree node (the owning element for attributes).
    pub fn node_id(self) -> NodeId {
        match self {
            XNode::Node(n) | XNode::Attr(n, _) => n,
        }
    }

    /// String-value per XPath 1.0 (text content for elements, the value for
    /// attributes).
    pub fn string_value(self, doc: &Document) -> String {
        match self {
            XNode::Node(n) => doc.text_content(n),
            XNode::Attr(n, i) => {
                doc.attributes(n).get(i).map(|a| a.value.clone()).unwrap_or_default()
            }
        }
    }

    /// Name of the node (element name or attribute name), empty for other
    /// kinds.
    pub fn name(self, doc: &Document) -> String {
        match self {
            XNode::Node(n) => doc.name(n).map(|q| q.to_string()).unwrap_or_default(),
            XNode::Attr(n, i) => {
                doc.attributes(n).get(i).map(|a| a.name.to_string()).unwrap_or_default()
            }
        }
    }

    /// Local name of the node, empty for unnamed kinds.
    pub fn local_name(self, doc: &Document) -> String {
        match self {
            XNode::Node(n) => doc.local_name(n).unwrap_or_default().to_string(),
            XNode::Attr(n, i) => {
                doc.attributes(n).get(i).map(|a| a.name.local().to_string()).unwrap_or_default()
            }
        }
    }
}

/// Result of evaluating an XPath expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A set of nodes in document order without duplicates.
    Nodes(Vec<XNode>),
    /// A string.
    Str(String),
    /// A double-precision number (may be NaN).
    Num(f64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Converts to a string per XPath rules (first node's string-value for
    /// node-sets; empty string for the empty set).
    pub fn into_string(self, doc: &Document) -> String {
        match self {
            Value::Nodes(ns) => ns.first().map(|n| n.string_value(doc)).unwrap_or_default(),
            Value::Str(s) => s,
            Value::Num(n) => format_number(n),
            Value::Bool(b) => if b { "true" } else { "false" }.to_string(),
        }
    }

    /// Converts to a number per XPath rules.
    pub fn into_number(self, doc: &Document) -> f64 {
        match self {
            Value::Num(n) => n,
            Value::Str(s) => parse_number(&s),
            Value::Bool(b) => {
                if b {
                    1.0
                } else {
                    0.0
                }
            }
            v @ Value::Nodes(_) => parse_number(&v.into_string(doc)),
        }
    }

    /// Converts to a boolean per XPath rules (non-empty node-set, non-empty
    /// string, non-zero non-NaN number).
    pub fn into_bool(self) -> bool {
        match self {
            Value::Nodes(ns) => !ns.is_empty(),
            Value::Str(s) => !s.is_empty(),
            Value::Num(n) => n != 0.0 && !n.is_nan(),
            Value::Bool(b) => b,
        }
    }

    /// The node-set, or an error for non-node values.
    ///
    /// # Errors
    ///
    /// Returns [`XPathError`] when the value is a string, number or boolean.
    pub fn into_nodes(self) -> Result<Vec<XNode>, XPathError> {
        match self {
            Value::Nodes(ns) => Ok(ns),
            other => Err(XPathError::new(format!("expected node-set, got {other:?}"))),
        }
    }
}

/// Formats a number the way XPath's `string()` does (integers without a
/// decimal point).
pub fn format_number(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 { "Infinity" } else { "-Infinity" }.to_string()
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn parse_number(s: &str) -> f64 {
    s.trim().parse::<f64>().unwrap_or(f64::NAN)
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

/// Axes supported by the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variants mirror the XPath axis names directly
pub enum Axis {
    Child,
    Attribute,
    SelfAxis,
    Parent,
    Descendant,
    DescendantOrSelf,
    Ancestor,
    FollowingSibling,
    PrecedingSibling,
}

/// Node tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// A name test, optionally prefixed. `prefix:*` is expressed as a
    /// wildcard local part `*`.
    Name {
        /// Namespace prefix, when written.
        prefix: Option<String>,
        /// Local name, or `*` for a prefix wildcard.
        local: String,
    },
    /// `*` — any element (or any attribute on the attribute axis).
    Wildcard,
    /// `text()`
    Text,
    /// `node()`
    AnyNode,
    /// `comment()`
    Comment,
}

/// One step of a location path.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Axis to walk.
    pub axis: Axis,
    /// Which nodes on the axis are kept.
    pub test: NodeTest,
    /// Zero or more predicate expressions.
    pub predicates: Vec<Expr>,
}

/// A location path.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// `true` for paths starting with `/` (evaluated from the document
    /// root).
    pub absolute: bool,
    /// The steps, possibly empty (bare `/`).
    pub steps: Vec<Step>,
}

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // =, !=, <, <=, >, >=
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // +, -, *, div, mod
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Parsed expression tree.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variants mirror the XPath grammar productions
pub enum Expr {
    Or(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Compare(CmpOp, Box<Expr>, Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    Union(Box<Expr>, Box<Expr>),
    Literal(String),
    Number(f64),
    Var(String),
    Call(String, Vec<Expr>),
    Path(Path),
}

/// A compiled XPath expression.
///
/// Parse once with [`XPath::parse`], evaluate many times with
/// [`XPath::eval`] / [`XPath::eval_root`].
#[derive(Debug, Clone, PartialEq)]
pub struct XPath {
    expr: Expr,
    source: String,
}

impl fmt::Display for XPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.source)
    }
}

impl XPath {
    /// Parses an expression.
    ///
    /// # Errors
    ///
    /// Returns [`XPathError`] describing the first syntax error.
    pub fn parse(source: &str) -> Result<XPath, XPathError> {
        let tokens = tokenize(source)?;
        let mut p = ExprParser { tokens, pos: 0 };
        let expr = p.parse_expr()?;
        if p.pos != p.tokens.len() {
            return Err(XPathError::new(format!(
                "trailing tokens after expression in {source:?}"
            )));
        }
        Ok(XPath { expr, source: source.to_string() })
    }

    /// The parsed tree (exposed for the XSLT pattern compiler).
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Evaluates against an explicit context.
    ///
    /// # Errors
    ///
    /// Returns [`XPathError`] for unknown functions/variables or type
    /// errors.
    pub fn eval(&self, ctx: &Context<'_>) -> Result<Value, XPathError> {
        eval_expr(&self.expr, ctx)
    }

    /// Evaluates with the document root as context node.
    ///
    /// # Errors
    ///
    /// Same conditions as [`XPath::eval`].
    pub fn eval_root(&self, doc: &Document) -> Result<Value, XPathError> {
        let vars = HashMap::new();
        let ctx = Context::new(doc, XNode::Node(doc.root()), &vars);
        self.eval(&ctx)
    }

    /// Convenience: evaluates and converts to a string.
    ///
    /// # Errors
    ///
    /// Same conditions as [`XPath::eval`].
    pub fn eval_string(&self, doc: &Document, node: NodeId) -> Result<String, XPathError> {
        let vars = HashMap::new();
        let ctx = Context::new(doc, XNode::Node(node), &vars);
        Ok(self.eval(&ctx)?.into_string(doc))
    }

    /// Convenience: evaluates to a node-set of tree nodes (attributes
    /// dropped).
    ///
    /// # Errors
    ///
    /// Returns an error if the expression does not yield a node-set.
    pub fn select_nodes(&self, doc: &Document, node: NodeId) -> Result<Vec<NodeId>, XPathError> {
        let vars = HashMap::new();
        let ctx = Context::new(doc, XNode::Node(node), &vars);
        Ok(self
            .eval(&ctx)?
            .into_nodes()?
            .into_iter()
            .filter_map(|x| match x {
                XNode::Node(n) => Some(n),
                XNode::Attr(..) => None,
            })
            .collect())
    }
}

impl std::str::FromStr for XPath {
    type Err = XPathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        XPath::parse(s)
    }
}

// ---------------------------------------------------------------------------
// tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Slash,
    DoubleSlash,
    Dot,
    DotDot,
    At,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Pipe,
    Plus,
    Minus,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Dollar,
    ColonColon,
    Colon,
    Name(String),
    Literal(String),
    Number(f64),
}

fn tokenize(src: &str) -> Result<Vec<Tok>, XPathError> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' => {
                if chars.get(i + 1) == Some(&'/') {
                    toks.push(Tok::DoubleSlash);
                    i += 2;
                } else {
                    toks.push(Tok::Slash);
                    i += 1;
                }
            }
            '.' => {
                if chars.get(i + 1) == Some(&'.') {
                    toks.push(Tok::DotDot);
                    i += 2;
                } else if chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                    let (n, len) = lex_number(&chars[i..]);
                    toks.push(Tok::Number(n));
                    i += len;
                } else {
                    toks.push(Tok::Dot);
                    i += 1;
                }
            }
            '@' => {
                toks.push(Tok::At);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '|' => {
                toks.push(Tok::Pipe);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '$' => {
                toks.push(Tok::Dollar);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push(Tok::Ne);
                    i += 2;
                } else {
                    return Err(XPathError::new("unexpected '!'"));
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push(Tok::Le);
                    i += 2;
                } else {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            ':' => {
                if chars.get(i + 1) == Some(&':') {
                    toks.push(Tok::ColonColon);
                    i += 2;
                } else {
                    toks.push(Tok::Colon);
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some(&ch) if ch == quote => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(XPathError::new("unterminated string literal")),
                    }
                }
                toks.push(Tok::Literal(s));
            }
            '0'..='9' => {
                let (n, len) = lex_number(&chars[i..]);
                toks.push(Tok::Number(n));
                i += len;
            }
            c if crate::name::is_name_start_char(c) => {
                let mut s = String::new();
                while i < chars.len() && crate::name::is_name_char(chars[i]) {
                    s.push(chars[i]);
                    i += 1;
                }
                toks.push(Tok::Name(s));
            }
            other => return Err(XPathError::new(format!("unexpected character {other:?}"))),
        }
    }
    Ok(toks)
}

fn lex_number(chars: &[char]) -> (f64, usize) {
    let mut len = 0;
    let mut seen_dot = false;
    while len < chars.len() {
        match chars[len] {
            '0'..='9' => len += 1,
            '.' if !seen_dot => {
                seen_dot = true;
                len += 1;
            }
            _ => break,
        }
    }
    let s: String = chars[..len].iter().collect();
    (s.parse().unwrap_or(f64::NAN), len)
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

struct ExprParser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl ExprParser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> Result<(), XPathError> {
        match self.bump() {
            Some(ref got) if got == t => Ok(()),
            got => Err(XPathError::new(format!("expected {t:?}, got {got:?}"))),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, XPathError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, XPathError> {
        let mut left = self.parse_and()?;
        while matches!(self.peek(), Some(Tok::Name(n)) if n == "or") {
            self.bump();
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, XPathError> {
        let mut left = self.parse_equality()?;
        while matches!(self.peek(), Some(Tok::Name(n)) if n == "and") {
            self.bump();
            let right = self.parse_equality()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_equality(&mut self) -> Result<Expr, XPathError> {
        let mut left = self.parse_relational()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Eq) => CmpOp::Eq,
                Some(Tok::Ne) => CmpOp::Ne,
                _ => break,
            };
            self.bump();
            let right = self.parse_relational()?;
            left = Expr::Compare(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_relational(&mut self) -> Result<Expr, XPathError> {
        let mut left = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Lt) => CmpOp::Lt,
                Some(Tok::Le) => CmpOp::Le,
                Some(Tok::Gt) => CmpOp::Gt,
                Some(Tok::Ge) => CmpOp::Ge,
                _ => break,
            };
            self.bump();
            let right = self.parse_additive()?;
            left = Expr::Compare(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, XPathError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => ArithOp::Add,
                Some(Tok::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, XPathError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => ArithOp::Mul,
                Some(Tok::Name(n)) if n == "div" => ArithOp::Div,
                Some(Tok::Name(n)) if n == "mod" => ArithOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, XPathError> {
        if matches!(self.peek(), Some(Tok::Minus)) {
            self.bump();
            let e = self.parse_unary()?;
            return Ok(Expr::Neg(Box::new(e)));
        }
        self.parse_union()
    }

    fn parse_union(&mut self) -> Result<Expr, XPathError> {
        let mut left = self.parse_path_expr()?;
        while matches!(self.peek(), Some(Tok::Pipe)) {
            self.bump();
            let right = self.parse_path_expr()?;
            left = Expr::Union(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_path_expr(&mut self) -> Result<Expr, XPathError> {
        match self.peek() {
            Some(Tok::Literal(_)) => {
                if let Some(Tok::Literal(s)) = self.bump() {
                    Ok(Expr::Literal(s))
                } else {
                    unreachable!()
                }
            }
            Some(Tok::Number(_)) => {
                if let Some(Tok::Number(n)) = self.bump() {
                    Ok(Expr::Number(n))
                } else {
                    unreachable!()
                }
            }
            Some(Tok::Dollar) => {
                self.bump();
                match self.bump() {
                    Some(Tok::Name(n)) => Ok(Expr::Var(n)),
                    got => Err(XPathError::new(format!("expected variable name, got {got:?}"))),
                }
            }
            Some(Tok::LParen) => {
                self.bump();
                let e = self.parse_expr()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Name(n)) if self.tokens.get(self.pos + 1) == Some(&Tok::LParen)
                && !is_node_type_name(n) =>
            {
                // function call
                let name = if let Some(Tok::Name(n)) = self.bump() { n } else { unreachable!() };
                self.eat(&Tok::LParen)?;
                let mut args = Vec::new();
                if self.peek() != Some(&Tok::RParen) {
                    loop {
                        args.push(self.parse_expr()?);
                        if self.peek() == Some(&Tok::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.eat(&Tok::RParen)?;
                Ok(Expr::Call(name, args))
            }
            _ => Ok(Expr::Path(self.parse_location_path()?)),
        }
    }

    fn parse_location_path(&mut self) -> Result<Path, XPathError> {
        let mut steps = Vec::new();
        let absolute = match self.peek() {
            Some(Tok::Slash) => {
                self.bump();
                // bare "/" with nothing following
                if !self.step_can_start() {
                    return Ok(Path { absolute: true, steps });
                }
                true
            }
            Some(Tok::DoubleSlash) => {
                self.bump();
                steps.push(Step {
                    axis: Axis::DescendantOrSelf,
                    test: NodeTest::AnyNode,
                    predicates: Vec::new(),
                });
                true
            }
            _ => false,
        };
        steps.push(self.parse_step()?);
        loop {
            match self.peek() {
                Some(Tok::Slash) => {
                    self.bump();
                    steps.push(self.parse_step()?);
                }
                Some(Tok::DoubleSlash) => {
                    self.bump();
                    steps.push(Step {
                        axis: Axis::DescendantOrSelf,
                        test: NodeTest::AnyNode,
                        predicates: Vec::new(),
                    });
                    steps.push(self.parse_step()?);
                }
                _ => break,
            }
        }
        Ok(Path { absolute, steps })
    }

    fn step_can_start(&self) -> bool {
        matches!(
            self.peek(),
            Some(Tok::Name(_) | Tok::Star | Tok::At | Tok::Dot | Tok::DotDot)
        )
    }

    fn parse_step(&mut self) -> Result<Step, XPathError> {
        let mut axis = Axis::Child;
        match self.peek() {
            Some(Tok::Dot) => {
                self.bump();
                return Ok(Step {
                    axis: Axis::SelfAxis,
                    test: NodeTest::AnyNode,
                    predicates: self.parse_predicates()?,
                });
            }
            Some(Tok::DotDot) => {
                self.bump();
                return Ok(Step {
                    axis: Axis::Parent,
                    test: NodeTest::AnyNode,
                    predicates: self.parse_predicates()?,
                });
            }
            Some(Tok::At) => {
                self.bump();
                axis = Axis::Attribute;
            }
            Some(Tok::Name(_))
                if self.tokens.get(self.pos + 1) == Some(&Tok::ColonColon) =>
            {
                let name = if let Some(Tok::Name(n)) = self.bump() { n } else { unreachable!() };
                self.bump(); // ::
                axis = match name.as_str() {
                    "child" => Axis::Child,
                    "attribute" => Axis::Attribute,
                    "self" => Axis::SelfAxis,
                    "parent" => Axis::Parent,
                    "descendant" => Axis::Descendant,
                    "descendant-or-self" => Axis::DescendantOrSelf,
                    "ancestor" => Axis::Ancestor,
                    "following-sibling" => Axis::FollowingSibling,
                    "preceding-sibling" => Axis::PrecedingSibling,
                    other => {
                        return Err(XPathError::new(format!("unsupported axis {other:?}")))
                    }
                };
            }
            _ => {}
        }
        let test = self.parse_node_test()?;
        let predicates = self.parse_predicates()?;
        Ok(Step { axis, test, predicates })
    }

    fn parse_node_test(&mut self) -> Result<NodeTest, XPathError> {
        match self.bump() {
            Some(Tok::Star) => Ok(NodeTest::Wildcard),
            Some(Tok::Name(n)) => {
                if self.peek() == Some(&Tok::LParen) && is_node_type_name(&n) {
                    self.bump();
                    self.eat(&Tok::RParen)?;
                    return Ok(match n.as_str() {
                        "text" => NodeTest::Text,
                        "node" => NodeTest::AnyNode,
                        "comment" => NodeTest::Comment,
                        _ => NodeTest::AnyNode, // processing-instruction()
                    });
                }
                if self.peek() == Some(&Tok::Colon) {
                    self.bump();
                    match self.bump() {
                        Some(Tok::Name(local)) => {
                            Ok(NodeTest::Name { prefix: Some(n), local })
                        }
                        Some(Tok::Star) => {
                            Ok(NodeTest::Name { prefix: Some(n), local: "*".to_string() })
                        }
                        got => Err(XPathError::new(format!(
                            "expected local name after prefix, got {got:?}"
                        ))),
                    }
                } else {
                    Ok(NodeTest::Name { prefix: None, local: n })
                }
            }
            got => Err(XPathError::new(format!("expected node test, got {got:?}"))),
        }
    }

    fn parse_predicates(&mut self) -> Result<Vec<Expr>, XPathError> {
        let mut preds = Vec::new();
        while self.peek() == Some(&Tok::LBracket) {
            self.bump();
            preds.push(self.parse_expr()?);
            self.eat(&Tok::RBracket)?;
        }
        Ok(preds)
    }
}

fn is_node_type_name(n: &str) -> bool {
    matches!(n, "text" | "node" | "comment" | "processing-instruction")
}

// ---------------------------------------------------------------------------
// evaluation
// ---------------------------------------------------------------------------

/// Evaluation context: document, context node, position/size within the
/// current node list, and variable bindings.
#[derive(Debug, Clone)]
pub struct Context<'d> {
    /// The document being queried.
    pub doc: &'d Document,
    /// The context node.
    pub node: XNode,
    /// 1-based context position.
    pub position: usize,
    /// Context size.
    pub size: usize,
    /// In-scope variable bindings.
    pub vars: &'d HashMap<String, Value>,
}

impl<'d> Context<'d> {
    /// Creates a context with position 1 of 1.
    pub fn new(doc: &'d Document, node: XNode, vars: &'d HashMap<String, Value>) -> Self {
        Context { doc, node, position: 1, size: 1, vars }
    }
}

fn eval_expr(expr: &Expr, ctx: &Context<'_>) -> Result<Value, XPathError> {
    match expr {
        Expr::Or(a, b) => {
            if eval_expr(a, ctx)?.into_bool() {
                Ok(Value::Bool(true))
            } else {
                Ok(Value::Bool(eval_expr(b, ctx)?.into_bool()))
            }
        }
        Expr::And(a, b) => {
            if !eval_expr(a, ctx)?.into_bool() {
                Ok(Value::Bool(false))
            } else {
                Ok(Value::Bool(eval_expr(b, ctx)?.into_bool()))
            }
        }
        Expr::Compare(op, a, b) => {
            let va = eval_expr(a, ctx)?;
            let vb = eval_expr(b, ctx)?;
            Ok(Value::Bool(compare_values(*op, va, vb, ctx.doc)))
        }
        Expr::Arith(op, a, b) => {
            let va = eval_expr(a, ctx)?.into_number(ctx.doc);
            let vb = eval_expr(b, ctx)?.into_number(ctx.doc);
            Ok(Value::Num(match op {
                ArithOp::Add => va + vb,
                ArithOp::Sub => va - vb,
                ArithOp::Mul => va * vb,
                ArithOp::Div => va / vb,
                ArithOp::Mod => va % vb,
            }))
        }
        Expr::Neg(e) => Ok(Value::Num(-eval_expr(e, ctx)?.into_number(ctx.doc))),
        Expr::Union(a, b) => {
            let mut na = eval_expr(a, ctx)?.into_nodes()?;
            let nb = eval_expr(b, ctx)?.into_nodes()?;
            na.extend(nb);
            Ok(Value::Nodes(sort_dedup(na, ctx.doc)))
        }
        Expr::Literal(s) => Ok(Value::Str(s.clone())),
        Expr::Number(n) => Ok(Value::Num(*n)),
        Expr::Var(name) => ctx
            .vars
            .get(name)
            .cloned()
            .ok_or_else(|| XPathError::new(format!("unknown variable ${name}"))),
        Expr::Call(name, args) => call_function(name, args, ctx),
        Expr::Path(path) => Ok(Value::Nodes(eval_path(path, ctx)?)),
    }
}

/// Evaluates a parsed expression against a context. Exposed for the XSLT
/// engine, which evaluates predicate sub-expressions of compiled patterns
/// directly.
///
/// # Errors
///
/// Returns [`XPathError`] for unknown functions/variables or type errors.
pub fn evaluate(expr: &Expr, ctx: &Context<'_>) -> Result<Value, XPathError> {
    eval_expr(expr, ctx)
}

/// Evaluates a location path from the context node. Exposed for the XSLT
/// engine's `apply-templates`/`for-each` select handling.
///
/// # Errors
///
/// Returns [`XPathError`] for evaluation failures inside predicates.
pub fn eval_path(path: &Path, ctx: &Context<'_>) -> Result<Vec<XNode>, XPathError> {
    let start = if path.absolute {
        XNode::Node(ctx.doc.root())
    } else {
        ctx.node
    };
    let mut current = vec![start];
    for step in &path.steps {
        let mut next = Vec::new();
        for &node in &current {
            let candidates = axis_nodes(ctx.doc, node, step.axis);
            let mut kept: Vec<XNode> = candidates
                .into_iter()
                .filter(|&c| node_test_matches(ctx.doc, c, step.axis, &step.test))
                .collect();
            // apply predicates with position relative to this node's list
            for pred in &step.predicates {
                let size = kept.len();
                let mut filtered = Vec::new();
                for (i, &cand) in kept.iter().enumerate() {
                    let sub = Context {
                        doc: ctx.doc,
                        node: cand,
                        position: i + 1,
                        size,
                        vars: ctx.vars,
                    };
                    let v = eval_expr(pred, &sub)?;
                    let keep = match v {
                        Value::Num(n) => (i + 1) as f64 == n,
                        other => other.into_bool(),
                    };
                    if keep {
                        filtered.push(cand);
                    }
                }
                kept = filtered;
            }
            next.extend(kept);
        }
        current = sort_dedup(next, ctx.doc);
    }
    Ok(current)
}

fn axis_nodes(doc: &Document, node: XNode, axis: Axis) -> Vec<XNode> {
    match axis {
        Axis::SelfAxis => vec![node],
        Axis::Child => match node {
            XNode::Node(n) => doc.children(n).iter().map(|&c| XNode::Node(c)).collect(),
            XNode::Attr(..) => Vec::new(),
        },
        Axis::Attribute => match node {
            XNode::Node(n) => {
                (0..doc.attributes(n).len()).map(|i| XNode::Attr(n, i)).collect()
            }
            XNode::Attr(..) => Vec::new(),
        },
        Axis::Parent => match node {
            XNode::Node(n) => doc.parent(n).map(XNode::Node).into_iter().collect(),
            XNode::Attr(n, _) => vec![XNode::Node(n)],
        },
        Axis::Descendant => match node {
            XNode::Node(n) => doc.descendants(n).into_iter().map(XNode::Node).collect(),
            XNode::Attr(..) => Vec::new(),
        },
        Axis::DescendantOrSelf => match node {
            XNode::Node(n) => std::iter::once(XNode::Node(n))
                .chain(doc.descendants(n).into_iter().map(XNode::Node))
                .collect(),
            XNode::Attr(..) => vec![node],
        },
        Axis::Ancestor => match node {
            XNode::Node(n) => doc.ancestors(n).into_iter().map(XNode::Node).collect(),
            XNode::Attr(n, _) => std::iter::once(XNode::Node(n))
                .chain(doc.ancestors(n).into_iter().map(XNode::Node))
                .collect(),
        },
        Axis::FollowingSibling | Axis::PrecedingSibling => match node {
            XNode::Node(n) => {
                let Some(p) = doc.parent(n) else { return Vec::new() };
                let sibs = doc.children(p);
                let Some(idx) = sibs.iter().position(|&s| s == n) else {
                    return Vec::new();
                };
                if axis == Axis::FollowingSibling {
                    sibs[idx + 1..].iter().map(|&s| XNode::Node(s)).collect()
                } else {
                    sibs[..idx].iter().rev().map(|&s| XNode::Node(s)).collect()
                }
            }
            XNode::Attr(..) => Vec::new(),
        },
    }
}

fn node_test_matches(doc: &Document, node: XNode, axis: Axis, test: &NodeTest) -> bool {
    match test {
        NodeTest::AnyNode => true,
        NodeTest::Text => matches!(node, XNode::Node(n) if doc.is_text(n)),
        NodeTest::Comment => {
            matches!(node, XNode::Node(n) if matches!(doc.kind(n), NodeKind::Comment(_)))
        }
        NodeTest::Wildcard => match (axis, node) {
            (Axis::Attribute, XNode::Attr(..)) => true,
            (_, XNode::Node(n)) => doc.is_element(n),
            _ => false,
        },
        NodeTest::Name { prefix, local } => {
            let (node_prefix, node_local): (Option<String>, String) = match node {
                XNode::Node(n) => match doc.name(n) {
                    Some(q) => (q.prefix().map(str::to_string), q.local().to_string()),
                    None => return false,
                },
                XNode::Attr(n, i) => match doc.attributes(n).get(i) {
                    Some(a) => {
                        (a.name.prefix().map(str::to_string), a.name.local().to_string())
                    }
                    None => return false,
                },
            };
            if local != "*" && node_local != *local {
                return false;
            }
            match prefix {
                None => true, // match on local name regardless of node prefix
                Some(p) => {
                    // compare namespace URIs when resolvable, else prefixes
                    let base = node.node_id();
                    let test_uri = doc.namespace_uri(base, Some(p));
                    let node_uri = doc.namespace_uri(base, node_prefix.as_deref());
                    match (test_uri, node_uri) {
                        (Some(a), Some(b)) => a == b,
                        _ => node_prefix.as_deref() == Some(p.as_str()),
                    }
                }
            }
        }
    }
}

fn sort_dedup(mut nodes: Vec<XNode>, doc: &Document) -> Vec<XNode> {
    nodes.sort_by(|a, b| cmp_xnode(doc, *a, *b));
    nodes.dedup();
    nodes
}

fn cmp_xnode(doc: &Document, a: XNode, b: XNode) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let base = doc.cmp_document_order(a.node_id(), b.node_id());
    if base != Ordering::Equal {
        return base;
    }
    match (a, b) {
        (XNode::Node(_), XNode::Node(_)) => Ordering::Equal,
        (XNode::Node(_), XNode::Attr(..)) => Ordering::Less,
        (XNode::Attr(..), XNode::Node(_)) => Ordering::Greater,
        (XNode::Attr(_, i), XNode::Attr(_, j)) => i.cmp(&j),
    }
}

fn compare_values(op: CmpOp, a: Value, b: Value, doc: &Document) -> bool {
    use CmpOp::*;
    match (&a, &b) {
        (Value::Nodes(na), Value::Nodes(nb)) => {
            let sa: Vec<String> = na.iter().map(|n| n.string_value(doc)).collect();
            let sb: Vec<String> = nb.iter().map(|n| n.string_value(doc)).collect();
            sa.iter().any(|x| sb.iter().any(|y| cmp_strings(op, x, y)))
        }
        (Value::Nodes(ns), other) | (other, Value::Nodes(ns)) => {
            let flipped = matches!(&b, Value::Nodes(_)) && !matches!(&a, Value::Nodes(_));
            match other {
                Value::Bool(bv) => {
                    let nsb = !ns.is_empty();
                    let (l, r) = if flipped { (*bv, nsb) } else { (nsb, *bv) };
                    cmp_bools(op, l, r)
                }
                Value::Num(n) => ns.iter().any(|x| {
                    let xv = parse_number(&x.string_value(doc));
                    let (l, r) = if flipped { (*n, xv) } else { (xv, *n) };
                    cmp_numbers(op, l, r)
                }),
                Value::Str(s) => ns.iter().any(|x| {
                    let xv = x.string_value(doc);
                    if flipped {
                        cmp_strings(op, s, &xv)
                    } else {
                        cmp_strings(op, &xv, s)
                    }
                }),
                Value::Nodes(_) => unreachable!(),
            }
        }
        _ => {
            if matches!(a, Value::Bool(_)) || matches!(b, Value::Bool(_)) {
                cmp_bools(op, a.into_bool(), b.into_bool())
            } else if matches!(a, Value::Num(_))
                || matches!(b, Value::Num(_))
                || matches!(op, Lt | Le | Gt | Ge)
            {
                cmp_numbers(op, a.into_number(doc), b.into_number(doc))
            } else {
                cmp_strings(op, &a.into_string(doc), &b.into_string(doc))
            }
        }
    }
}

fn cmp_strings(op: CmpOp, a: &str, b: &str) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        _ => cmp_numbers(op, parse_number(a), parse_number(b)),
    }
}

fn cmp_numbers(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

fn cmp_bools(op: CmpOp, a: bool, b: bool) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        _ => cmp_numbers(op, a as u8 as f64, b as u8 as f64),
    }
}

fn call_function(name: &str, args: &[Expr], ctx: &Context<'_>) -> Result<Value, XPathError> {
    let eval_arg = |i: usize| -> Result<Value, XPathError> { eval_expr(&args[i], ctx) };
    let arg_str = |i: usize| -> Result<String, XPathError> {
        Ok(eval_expr(&args[i], ctx)?.into_string(ctx.doc))
    };
    let expect = |n: usize| -> Result<(), XPathError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(XPathError::new(format!("{name}() expects {n} argument(s), got {}", args.len())))
        }
    };
    match name {
        "position" => {
            expect(0)?;
            Ok(Value::Num(ctx.position as f64))
        }
        "last" => {
            expect(0)?;
            Ok(Value::Num(ctx.size as f64))
        }
        "count" => {
            expect(1)?;
            Ok(Value::Num(eval_arg(0)?.into_nodes()?.len() as f64))
        }
        "name" => {
            if args.is_empty() {
                Ok(Value::Str(ctx.node.name(ctx.doc)))
            } else {
                expect(1)?;
                let ns = eval_arg(0)?.into_nodes()?;
                Ok(Value::Str(ns.first().map(|n| n.name(ctx.doc)).unwrap_or_default()))
            }
        }
        "local-name" => {
            if args.is_empty() {
                Ok(Value::Str(ctx.node.local_name(ctx.doc)))
            } else {
                expect(1)?;
                let ns = eval_arg(0)?.into_nodes()?;
                Ok(Value::Str(ns.first().map(|n| n.local_name(ctx.doc)).unwrap_or_default()))
            }
        }
        "string" => {
            if args.is_empty() {
                Ok(Value::Str(ctx.node.string_value(ctx.doc)))
            } else {
                expect(1)?;
                Ok(Value::Str(eval_arg(0)?.into_string(ctx.doc)))
            }
        }
        "number" => {
            if args.is_empty() {
                Ok(Value::Num(parse_number(&ctx.node.string_value(ctx.doc))))
            } else {
                expect(1)?;
                Ok(Value::Num(eval_arg(0)?.into_number(ctx.doc)))
            }
        }
        "boolean" => {
            expect(1)?;
            Ok(Value::Bool(eval_arg(0)?.into_bool()))
        }
        "not" => {
            expect(1)?;
            Ok(Value::Bool(!eval_arg(0)?.into_bool()))
        }
        "true" => {
            expect(0)?;
            Ok(Value::Bool(true))
        }
        "false" => {
            expect(0)?;
            Ok(Value::Bool(false))
        }
        "contains" => {
            expect(2)?;
            Ok(Value::Bool(arg_str(0)?.contains(&arg_str(1)?)))
        }
        "starts-with" => {
            expect(2)?;
            Ok(Value::Bool(arg_str(0)?.starts_with(&arg_str(1)?)))
        }
        "concat" => {
            if args.len() < 2 {
                return Err(XPathError::new("concat() expects at least 2 arguments"));
            }
            let mut out = String::new();
            for i in 0..args.len() {
                out.push_str(&arg_str(i)?);
            }
            Ok(Value::Str(out))
        }
        "substring-before" => {
            expect(2)?;
            let s = arg_str(0)?;
            let sep = arg_str(1)?;
            Ok(Value::Str(s.split_once(&sep).map(|(a, _)| a.to_string()).unwrap_or_default()))
        }
        "substring-after" => {
            expect(2)?;
            let s = arg_str(0)?;
            let sep = arg_str(1)?;
            Ok(Value::Str(s.split_once(&sep).map(|(_, b)| b.to_string()).unwrap_or_default()))
        }
        "substring" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(XPathError::new("substring() expects 2 or 3 arguments"));
            }
            let s = arg_str(0)?;
            let chars: Vec<char> = s.chars().collect();
            let start = eval_arg(1)?.into_number(ctx.doc).round();
            let len = if args.len() == 3 {
                eval_arg(2)?.into_number(ctx.doc).round()
            } else {
                f64::INFINITY
            };
            if start.is_nan() || len.is_nan() {
                return Ok(Value::Str(String::new()));
            }
            let begin = (start - 1.0).max(0.0) as usize;
            let end = if len.is_infinite() {
                chars.len()
            } else {
                ((start - 1.0 + len).max(0.0) as usize).min(chars.len())
            };
            if begin >= end || begin >= chars.len() {
                return Ok(Value::Str(String::new()));
            }
            Ok(Value::Str(chars[begin..end].iter().collect()))
        }
        "string-length" => {
            let s = if args.is_empty() {
                ctx.node.string_value(ctx.doc)
            } else {
                expect(1)?;
                arg_str(0)?
            };
            Ok(Value::Num(s.chars().count() as f64))
        }
        "normalize-space" => {
            let s = if args.is_empty() {
                ctx.node.string_value(ctx.doc)
            } else {
                expect(1)?;
                arg_str(0)?
            };
            Ok(Value::Str(s.split_whitespace().collect::<Vec<_>>().join(" ")))
        }
        "translate" => {
            expect(3)?;
            let s = arg_str(0)?;
            let from: Vec<char> = arg_str(1)?.chars().collect();
            let to: Vec<char> = arg_str(2)?.chars().collect();
            let mut out = String::new();
            for c in s.chars() {
                match from.iter().position(|&f| f == c) {
                    Some(i) => {
                        if let Some(&r) = to.get(i) {
                            out.push(r);
                        } // else: dropped
                    }
                    None => out.push(c),
                }
            }
            Ok(Value::Str(out))
        }
        "floor" => {
            expect(1)?;
            Ok(Value::Num(eval_arg(0)?.into_number(ctx.doc).floor()))
        }
        "ceiling" => {
            expect(1)?;
            Ok(Value::Num(eval_arg(0)?.into_number(ctx.doc).ceil()))
        }
        "round" => {
            expect(1)?;
            Ok(Value::Num(eval_arg(0)?.into_number(ctx.doc).round()))
        }
        "sum" => {
            expect(1)?;
            let ns = eval_arg(0)?.into_nodes()?;
            Ok(Value::Num(ns.iter().map(|n| parse_number(&n.string_value(ctx.doc))).sum()))
        }
        other => Err(XPathError::new(format!("unknown function {other}()"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse(
            r#"<catalog>
  <pattern id="1" cat="behavioral"><name>Observer</name><uses>12</uses></pattern>
  <pattern id="2" cat="creational"><name>Singleton</name><uses>40</uses></pattern>
  <pattern id="3" cat="behavioral"><name>Visitor</name><uses>5</uses></pattern>
</catalog>"#,
        )
        .unwrap()
    }

    fn eval(d: &Document, s: &str) -> Value {
        let vars = HashMap::new();
        let ctx = Context::new(d, XNode::Node(d.root()), &vars);
        XPath::parse(s).unwrap().eval(&ctx).unwrap()
    }

    fn eval_str(d: &Document, s: &str) -> String {
        eval(d, s).into_string(d)
    }

    #[test]
    fn absolute_path_selects_children() {
        let d = doc();
        let v = eval(&d, "/catalog/pattern");
        assert_eq!(v.into_nodes().unwrap().len(), 3);
    }

    #[test]
    fn descendant_shortcut() {
        let d = doc();
        let v = eval(&d, "//name");
        assert_eq!(v.into_nodes().unwrap().len(), 3);
    }

    #[test]
    fn positional_predicate() {
        let d = doc();
        assert_eq!(eval_str(&d, "/catalog/pattern[2]/name"), "Singleton");
        assert_eq!(eval_str(&d, "/catalog/pattern[last()]/name"), "Visitor");
        assert_eq!(eval_str(&d, "/catalog/pattern[position()=1]/name"), "Observer");
    }

    #[test]
    fn attribute_predicate_and_selection() {
        let d = doc();
        assert_eq!(eval_str(&d, "/catalog/pattern[@id='2']/name"), "Singleton");
        assert_eq!(eval_str(&d, "/catalog/pattern[1]/@cat"), "behavioral");
        let v = eval(&d, "//pattern[@cat='behavioral']");
        assert_eq!(v.into_nodes().unwrap().len(), 2);
    }

    #[test]
    fn comparisons_on_node_values() {
        let d = doc();
        let v = eval(&d, "//pattern[uses > 10]");
        assert_eq!(v.into_nodes().unwrap().len(), 2);
        assert_eq!(eval(&d, "count(//pattern[uses > 10])"), Value::Num(2.0));
    }

    #[test]
    fn string_functions() {
        let d = doc();
        assert_eq!(eval(&d, "contains('Observer', 'serve')"), Value::Bool(true));
        assert_eq!(eval(&d, "starts-with('Observer', 'Ob')"), Value::Bool(true));
        assert_eq!(eval_str(&d, "concat('a', 'b', 'c')"), "abc");
        assert_eq!(eval_str(&d, "substring-before('a-b', '-')"), "a");
        assert_eq!(eval_str(&d, "substring-after('a-b', '-')"), "b");
        assert_eq!(eval_str(&d, "substring('12345', 2, 3)"), "234");
        assert_eq!(eval(&d, "string-length('abc')"), Value::Num(3.0));
        assert_eq!(eval_str(&d, "normalize-space('  a   b ')"), "a b");
        assert_eq!(eval_str(&d, "translate('abc', 'abc', 'ABC')"), "ABC");
        assert_eq!(eval_str(&d, "translate('abc', 'b', '')"), "ac");
    }

    #[test]
    fn arithmetic_and_precedence() {
        let d = doc();
        assert_eq!(eval(&d, "1 + 2 * 3"), Value::Num(7.0));
        assert_eq!(eval(&d, "(1 + 2) * 3"), Value::Num(9.0));
        assert_eq!(eval(&d, "10 mod 3"), Value::Num(1.0));
        assert_eq!(eval(&d, "10 div 4"), Value::Num(2.5));
        assert_eq!(eval(&d, "-2 + 5"), Value::Num(3.0));
    }

    #[test]
    fn boolean_logic() {
        let d = doc();
        assert_eq!(eval(&d, "true() and false()"), Value::Bool(false));
        assert_eq!(eval(&d, "true() or false()"), Value::Bool(true));
        assert_eq!(eval(&d, "not(false())"), Value::Bool(true));
        assert_eq!(eval(&d, "1 = 1 and 2 = 2"), Value::Bool(true));
    }

    #[test]
    fn sum_and_count() {
        let d = doc();
        assert_eq!(eval(&d, "sum(//uses)"), Value::Num(57.0));
        assert_eq!(eval(&d, "count(//pattern)"), Value::Num(3.0));
    }

    #[test]
    fn union_sorts_in_document_order() {
        let d = doc();
        let v = eval(&d, "//pattern[3]/name | //pattern[1]/name").into_nodes().unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].string_value(&d), "Observer");
        assert_eq!(v[1].string_value(&d), "Visitor");
    }

    #[test]
    fn parent_and_self_axes() {
        let d = doc();
        assert_eq!(eval_str(&d, "string(//name[1]/../@id)"), "1");
        let v = eval(&d, "//pattern[1]/self::pattern");
        assert_eq!(v.into_nodes().unwrap().len(), 1);
    }

    #[test]
    fn sibling_axes() {
        let d = doc();
        let v = eval(&d, "//pattern[1]/following-sibling::pattern");
        assert_eq!(v.into_nodes().unwrap().len(), 2);
        let v = eval(&d, "//pattern[3]/preceding-sibling::pattern");
        assert_eq!(v.into_nodes().unwrap().len(), 2);
    }

    #[test]
    fn explicit_axes() {
        let d = doc();
        let v = eval(&d, "/catalog/child::pattern/attribute::id");
        assert_eq!(v.into_nodes().unwrap().len(), 3);
        let v = eval(&d, "//name/ancestor::catalog");
        assert_eq!(v.into_nodes().unwrap().len(), 1);
    }

    #[test]
    fn text_node_test() {
        let d = doc();
        assert_eq!(eval_str(&d, "//name[1]/text()"), "Observer");
    }

    #[test]
    fn descendant_axis_excludes_self() {
        let d = doc();
        let with_self = eval(&d, "count(/catalog/descendant-or-self::*)");
        let without = eval(&d, "count(/catalog/descendant::*)");
        assert_eq!(with_self, Value::Num(10.0)); // catalog + 3*(pattern,name,uses)
        assert_eq!(without, Value::Num(9.0));
    }

    #[test]
    fn chained_predicates() {
        let d = doc();
        assert_eq!(
            eval_str(&d, "//pattern[@cat='behavioral'][2]/name"),
            "Visitor",
            "second behavioral pattern"
        );
        assert_eq!(eval(&d, "count(//pattern[@cat='behavioral'][uses > 10])"), Value::Num(1.0));
    }

    #[test]
    fn prefix_wildcard_name_test() {
        let d = Document::parse(
            r#"<r xmlns:a="http://a" xmlns:b="http://b"><a:x>1</a:x><b:x>2</b:x></r>"#,
        )
        .unwrap();
        let vars = HashMap::new();
        let ctx = Context::new(&d, XNode::Node(d.root()), &vars);
        let v = XPath::parse("//a:x").unwrap().eval(&ctx).unwrap();
        assert_eq!(v.into_string(&d), "1");
        let v = XPath::parse("//a:*").unwrap().eval(&ctx).unwrap().into_nodes().unwrap();
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn variables() {
        let d = doc();
        let mut vars = HashMap::new();
        vars.insert("target".to_string(), Value::Str("Visitor".to_string()));
        let ctx = Context::new(&d, XNode::Node(d.root()), &vars);
        let v = XPath::parse("//pattern[name = $target]/@id").unwrap().eval(&ctx).unwrap();
        assert_eq!(v.into_string(&d), "3");
    }

    #[test]
    fn unknown_variable_is_error() {
        let d = doc();
        let vars = HashMap::new();
        let ctx = Context::new(&d, XNode::Node(d.root()), &vars);
        assert!(XPath::parse("$nope").unwrap().eval(&ctx).is_err());
    }

    #[test]
    fn unknown_function_is_error() {
        let d = doc();
        let vars = HashMap::new();
        let ctx = Context::new(&d, XNode::Node(d.root()), &vars);
        assert!(XPath::parse("frobnicate(1)").unwrap().eval(&ctx).is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(XPath::parse("").is_err());
        assert!(XPath::parse("//[1]").is_err());
        assert!(XPath::parse("'unterminated").is_err());
        assert!(XPath::parse("a b").is_err());
        assert!(XPath::parse("following::x").is_err());
    }

    #[test]
    fn nodeset_to_string_uses_first_node() {
        let d = doc();
        assert_eq!(eval_str(&d, "//name"), "Observer");
    }

    #[test]
    fn nodeset_comparison_any_semantics() {
        let d = doc();
        assert_eq!(eval(&d, "//name = 'Visitor'"), Value::Bool(true));
        assert_eq!(eval(&d, "//name = 'Nonexistent'"), Value::Bool(false));
        assert_eq!(eval(&d, "//uses > 39"), Value::Bool(true));
        assert_eq!(eval(&d, "//uses > 100"), Value::Bool(false));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(2.5), "2.5");
        assert_eq!(format_number(-4.0), "-4");
        assert_eq!(format_number(f64::NAN), "NaN");
    }

    #[test]
    fn wildcard_and_node_tests() {
        let d = doc();
        assert_eq!(eval(&d, "count(/catalog/*)"), Value::Num(3.0));
        assert_eq!(eval(&d, "count(//pattern[1]/node())"), Value::Num(2.0));
    }

    #[test]
    fn relative_path_from_context_node() {
        let d = doc();
        let catalog = d.document_element().unwrap();
        let first = d.child_named(catalog, "pattern").unwrap();
        let vars = HashMap::new();
        let ctx = Context::new(&d, XNode::Node(first), &vars);
        let v = XPath::parse("name").unwrap().eval(&ctx).unwrap();
        assert_eq!(v.into_string(&d), "Observer");
        let v = XPath::parse(".").unwrap().eval(&ctx).unwrap();
        assert_eq!(v.into_nodes().unwrap(), vec![XNode::Node(first)]);
        let v = XPath::parse("..").unwrap().eval(&ctx).unwrap();
        assert_eq!(v.into_nodes().unwrap(), vec![XNode::Node(catalog)]);
    }

    #[test]
    fn bare_slash_selects_root() {
        let d = doc();
        let v = eval(&d, "/");
        assert_eq!(v.into_nodes().unwrap(), vec![XNode::Node(d.root())]);
    }

    #[test]
    fn select_nodes_helper() {
        let d = doc();
        let xp = XPath::parse("//pattern").unwrap();
        assert_eq!(xp.select_nodes(&d, d.root()).unwrap().len(), 3);
    }
}
