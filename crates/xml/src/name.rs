//! Qualified names (`prefix:local`) and XML name validity checks.

use std::fmt;

/// A qualified XML name: an optional prefix plus a local part.
///
/// `QName` does not itself resolve the prefix to a namespace URI — resolution
/// depends on the in-scope `xmlns` declarations and is provided by
/// [`crate::Document::namespace_uri`].
///
/// ```
/// use up2p_xml::QName;
/// let q: QName = "xsl:template".parse().unwrap();
/// assert_eq!(q.prefix(), Some("xsl"));
/// assert_eq!(q.local(), "template");
/// assert_eq!(q.to_string(), "xsl:template");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QName {
    prefix: Option<Box<str>>,
    local: Box<str>,
}

impl QName {
    /// Creates a name with no prefix.
    ///
    /// # Panics
    ///
    /// Panics if `local` is not a valid XML name (use [`QName::parse`] via
    /// `str::parse` for a fallible version).
    pub fn local_only(local: &str) -> Self {
        assert!(is_valid_ncname(local), "invalid XML name: {local:?}");
        QName { prefix: None, local: local.into() }
    }

    /// Creates a prefixed name.
    ///
    /// # Panics
    ///
    /// Panics if either part is not a valid NCName.
    pub fn prefixed(prefix: &str, local: &str) -> Self {
        assert!(is_valid_ncname(prefix), "invalid XML prefix: {prefix:?}");
        assert!(is_valid_ncname(local), "invalid XML name: {local:?}");
        QName { prefix: Some(prefix.into()), local: local.into() }
    }

    /// The prefix part, if any.
    pub fn prefix(&self) -> Option<&str> {
        self.prefix.as_deref()
    }

    /// The local part.
    pub fn local(&self) -> &str {
        &self.local
    }

    /// `true` when this name has the given local part and no prefix.
    pub fn is_unprefixed(&self, local: &str) -> bool {
        self.prefix.is_none() && &*self.local == local
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prefix {
            Some(p) => write!(f, "{p}:{}", self.local),
            None => write!(f, "{}", self.local),
        }
    }
}

/// Error returned when parsing an invalid qualified name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQNameError(String);

impl fmt::Display for ParseQNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid qualified name {:?}", self.0)
    }
}

impl std::error::Error for ParseQNameError {}

impl std::str::FromStr for QName {
    type Err = ParseQNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once(':') {
            Some((p, l)) if is_valid_ncname(p) && is_valid_ncname(l) => {
                Ok(QName { prefix: Some(p.into()), local: l.into() })
            }
            None if is_valid_ncname(s) => Ok(QName { prefix: None, local: s.into() }),
            _ => Err(ParseQNameError(s.to_string())),
        }
    }
}

impl From<&str> for QName {
    /// Converts a string to a `QName`.
    ///
    /// # Panics
    ///
    /// Panics if the string is not a valid qualified name. Use `str::parse`
    /// for the fallible conversion.
    fn from(s: &str) -> Self {
        s.parse().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Is `c` valid as the first character of an XML name?
pub fn is_name_start_char(c: char) -> bool {
    matches!(c,
        'A'..='Z' | 'a'..='z' | '_'
        | '\u{C0}'..='\u{D6}' | '\u{D8}'..='\u{F6}' | '\u{F8}'..='\u{2FF}'
        | '\u{370}'..='\u{37D}' | '\u{37F}'..='\u{1FFF}'
        | '\u{200C}'..='\u{200D}' | '\u{2070}'..='\u{218F}'
        | '\u{2C00}'..='\u{2FEF}' | '\u{3001}'..='\u{D7FF}'
        | '\u{F900}'..='\u{FDCF}' | '\u{FDF0}'..='\u{FFFD}'
        | '\u{10000}'..='\u{EFFFF}')
}

/// Is `c` valid as a subsequent character of an XML name?
pub fn is_name_char(c: char) -> bool {
    is_name_start_char(c)
        || matches!(c, '-' | '.' | '0'..='9' | '\u{B7}' | '\u{300}'..='\u{36F}' | '\u{203F}'..='\u{2040}')
}

/// Is `s` a valid NCName (an XML name with no colon)?
pub fn is_valid_ncname(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if is_name_start_char(c) => chars.all(is_name_char),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_prefixed() {
        let q: QName = "xs:element".parse().unwrap();
        assert_eq!(q.prefix(), Some("xs"));
        assert_eq!(q.local(), "element");
    }

    #[test]
    fn parse_unprefixed() {
        let q: QName = "community".parse().unwrap();
        assert_eq!(q.prefix(), None);
        assert!(q.is_unprefixed("community"));
    }

    #[test]
    fn rejects_empty_and_bad_names() {
        assert!("".parse::<QName>().is_err());
        assert!(":x".parse::<QName>().is_err());
        assert!("x:".parse::<QName>().is_err());
        assert!("a:b:c".parse::<QName>().is_err());
        assert!("1abc".parse::<QName>().is_err());
        assert!("a b".parse::<QName>().is_err());
    }

    #[test]
    fn accepts_names_with_digits_dots_dashes_inside() {
        assert!("a1-b.c_d".parse::<QName>().is_ok());
        assert!(is_valid_ncname("_private"));
        assert!(!is_valid_ncname("-lead"));
        assert!(!is_valid_ncname(".lead"));
    }

    #[test]
    fn display_round_trip() {
        for s in ["a", "xsl:value-of", "x_1:y-2.z"] {
            let q: QName = s.parse().unwrap();
            assert_eq!(q.to_string(), s);
        }
    }

    #[test]
    fn ordering_is_stable() {
        let a: QName = "a:x".parse().unwrap();
        let b: QName = "b:x".parse().unwrap();
        assert!(a < b);
    }
}
