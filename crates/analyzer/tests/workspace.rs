//! The analyzer against the real repository: the lexer must tokenize
//! every Rust file in the workspace, and the configured pass must be
//! clean — these tests are what makes re-introducing a panic site, a
//! deleted emission or an inverted lock pair a test failure and not just
//! a CI-job failure.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" {
                rust_files(&path, out);
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

#[test]
fn lexer_tokenizes_every_workspace_file() {
    let root = repo_root();
    let mut files = Vec::new();
    for dir in ["crates", "shims", "src", "tests"] {
        rust_files(&root.join(dir), &mut files);
    }
    assert!(files.len() > 40, "workspace walk looks broken: {} files", files.len());
    for path in files {
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let tokens = analyzer::lexer::lex(&src)
            .unwrap_or_else(|e| panic!("lex {}:{}: {}", path.display(), e.line, e.message));
        assert!(!tokens.is_empty() || src.trim().is_empty(), "{}", path.display());
    }
}

#[test]
fn repo_self_check_is_clean() {
    // deny-by-default on the repo itself: the same invariants CI's
    // `analyze` job enforces, as a plain `cargo test`
    let findings = analyzer::run_check(&repo_root()).expect("pass runs");
    assert!(findings.is_empty(), "repository violates its own invariants:\n{findings:#?}");
}
