pub fn first(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn second(x: u8) {
    if x > 250 {
        panic!("too large");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_not_flagged() {
        assert_eq!(super::first(Some(1)), 1);
        let v: Option<u8> = Some(2);
        let _ = v.unwrap();
    }
}
