pub fn forward(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    a.merge(&b);
}

pub fn notify(&self) {
    let node = self.shared.lock();
    node.for_each(|hit| {
        let _ = self.reply.send(hit);
    });
}

pub fn double(&self) {
    let first = self.table.lock();
    let second = self.table.lock();
    first.merge(&second);
}
