pub fn backward(&self) {
    let b = self.beta.lock();
    let a = self.alpha.lock();
    b.merge(&a);
}
