pub fn serve(&self) {
    self.stats.sent(Kind::A);
    self.stats.sent_n(Kind::B, 3);
    let cfg = self.config.parse().expect("config is loaded at boot");
    {
        let first = self.table.lock();
        let second = self.journal.lock();
        first.merge(&second, cfg);
    }
    self.tx.send(1);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let held = table.lock();
        let _ = tx.send(held.len()); // sends under guards are fine in tests
    }
}
