pub enum Kind {
    A,
    B,
}

impl Kind {
    pub const ALL: [Kind; 2] = [Kind::A, Kind::B];
}
