pub fn serve(&self) {
    self.stats.sent(Kind::A);
    self.stats.sent(Kind::C);
}
