pub enum Kind {
    A,
    B,
    C,
}

impl Kind {
    pub const ALL: [Kind; 3] = [Kind::A, Kind::B];
}
