//! End-to-end runs of the analyzer over the fixture mini-workspaces in
//! `tests/fixtures/`: one passing tree exercising all three rules, and
//! one failing tree per rule family.

use analyzer::{run_check, Finding};
use std::path::PathBuf;

fn fixture(name: &str) -> Vec<Finding> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    run_check(&root).expect("fixture config parses")
}

fn rules(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn clean_fixture_passes_all_three_rules() {
    let findings = fixture("clean");
    assert!(findings.is_empty(), "expected a clean pass, got: {findings:#?}");
}

#[test]
fn stats_fixture_fails_each_conservation_check() {
    let findings = fixture("stats_bad");
    assert!(rules(&findings).iter().all(|r| *r == "stat-conservation"), "{findings:#?}");
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    // ALL drifted: declared length 3, lists 2, misses variant C
    assert!(
        messages.iter().any(|m| m.contains("ALL")),
        "missing ALL-sync finding: {messages:#?}"
    );
    // variant C belongs to no declared class
    assert!(
        messages.iter().any(|m| m.contains('C') && m.contains("class")),
        "missing unclassified-variant finding: {messages:#?}"
    );
    // the substrate declares class alpha but never emits Kind::B
    assert!(
        messages.iter().any(|m| m.contains("Kind::B") && m.contains("no")),
        "missing deleted-emission finding: {messages:#?}"
    );
}

#[test]
fn deleting_an_emission_site_fails_the_pass() {
    // the stats_bad substrate emits Kind::A but not Kind::B — exactly
    // the shape left behind by deleting a `sent(...)` call
    let findings = fixture("stats_bad");
    assert!(
        findings
            .iter()
            .any(|f| f.file == "crates/demo/src/node.rs" && f.message.contains("Kind::B")),
        "{findings:#?}"
    );
}

#[test]
fn panic_fixture_flags_sites_and_stale_allows_but_not_tests() {
    let findings = fixture("panic_bad");
    assert!(rules(&findings).iter().all(|r| *r == "panic-freedom"), "{findings:#?}");
    assert_eq!(findings.len(), 3, "{findings:#?}");
    assert!(findings.iter().any(|f| f.message.contains("unwrap")));
    assert!(findings.iter().any(|f| f.message.contains("`panic!`")));
    // the allow entry whose pattern matches nothing is itself a finding
    assert!(findings
        .iter()
        .any(|f| f.file == "analyzer-allow.toml" && f.message.contains("stale")));
    // the unwraps inside #[cfg(test)] contribute nothing
    assert!(findings.iter().filter(|f| f.message.contains("unwrap")).count() == 1);
}

#[test]
fn locks_fixture_flags_cycle_send_and_same_class_nesting() {
    let findings = fixture("locks_bad");
    assert!(rules(&findings).iter().all(|r| *r == "lock-discipline"), "{findings:#?}");
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    // reordering a nested lock pair across files is the ABBA cycle
    assert!(
        messages.iter().any(|m| m.contains("lock-order cycle")
            && m.contains("alpha")
            && m.contains("beta")),
        "{messages:#?}"
    );
    assert!(messages.iter().any(|m| m.contains("held across")), "{messages:#?}");
    assert!(messages.iter().any(|m| m.contains("intra-class")), "{messages:#?}");
}

#[test]
fn findings_serialize_to_json() {
    let findings = fixture("panic_bad");
    let json = analyzer::json::findings_to_json(&findings);
    assert!(json.contains("\"version\": 1"));
    assert!(json.contains("\"count\": 3"));
    assert!(json.contains("panic-freedom"));
}
