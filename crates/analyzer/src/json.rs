//! Machine-readable findings report: a tiny hand-rolled JSON writer (the
//! workspace takes no external dependencies). Schema:
//!
//! ```json
//! {
//!   "version": 1,
//!   "count": 2,
//!   "findings": [
//!     {"rule": "...", "file": "...", "line": 10, "message": "..."}
//!   ]
//! }
//! ```

use crate::Finding;

/// Escapes a string for a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders the findings report.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::with_capacity(64 + findings.len() * 96);
    out.push_str("{\n  \"version\": 1,\n  \"count\": ");
    out.push_str(&findings.len().to_string());
    out.push_str(",\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"rule\": \"");
        escape(f.rule, &mut out);
        out.push_str("\", \"file\": \"");
        escape(&f.file, &mut out);
        out.push_str("\", \"line\": ");
        out.push_str(&f.line.to_string());
        out.push_str(", \"message\": \"");
        escape(&f.message, &mut out);
        out.push_str("\"}");
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report() {
        let json = findings_to_json(&[]);
        assert!(json.contains("\"count\": 0"));
        assert!(json.contains("\"findings\": []"));
    }

    #[test]
    fn escapes_specials() {
        let f = Finding {
            rule: "panic-freedom",
            file: "a/b.rs".into(),
            line: 7,
            message: "call to `unwrap()` with \"quotes\"\nand newline".into(),
        };
        let json = findings_to_json(&[f]);
        assert!(json.contains(r#"\"quotes\""#));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"line\": 7"));
    }
}
