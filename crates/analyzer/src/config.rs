//! `analyzer-allow.toml` — the analyzer's one checked-in configuration
//! file: the panic-freedom allowlist plus the declarative inputs of the
//! stat-conservation and lock-discipline rules.
//!
//! Parsed with a purpose-built subset-of-TOML reader (the workspace has
//! no external dependencies by policy): tables `[a.b]`, arrays of tables
//! `[[a]]`, bare or quoted keys, string values and (possibly multi-line)
//! arrays of strings. That subset is the whole format; anything else in
//! the file is a hard parse error so typos can't silently disable a rule.

use std::collections::BTreeMap;
use std::fmt;

/// One `[[allow]]` entry: a tolerated panic site with its justification.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Workspace-relative file the entry covers.
    pub file: String,
    /// Optional substring of the offending source line; when present the
    /// entry only matches lines containing it (so unrelated new panics in
    /// the same file still get flagged).
    pub pattern: Option<String>,
    /// Why the site is acceptable. Required.
    pub reason: String,
    /// Line of the entry in the config file (for stale-entry findings).
    pub line: u32,
}

/// `[stats]` — inputs of the stat-conservation rule.
#[derive(Debug, Clone)]
pub struct StatsConfig {
    /// File holding the message-kind enum and its `ALL` array.
    pub kinds_file: String,
    /// Name of the enum (`MsgKind`).
    pub enum_name: String,
    /// Message class name → enum variants in that class.
    pub classes: BTreeMap<String, Vec<String>>,
    /// Substrate file → message classes it declares it handles.
    pub substrates: BTreeMap<String, Vec<String>>,
}

/// `[panic]` — scope of the panic-freedom rule.
#[derive(Debug, Clone)]
pub struct PanicConfig {
    /// Crate directories whose `src/` trees are scanned.
    pub scan: Vec<String>,
}

/// `[locks]` — scope and vocabulary of the lock-discipline rule.
#[derive(Debug, Clone)]
pub struct LocksConfig {
    /// Directories scanned (recursively, `src/` trees only).
    pub scan: Vec<String>,
    /// Method names treated as network/channel sends; holding a guard
    /// across one is a finding.
    pub send_methods: Vec<String>,
    /// Total acquisition order over (a subset of) lock classes, outermost
    /// first. Any observed nested acquisition between two listed classes
    /// that runs against this order is a finding — even before a second
    /// function closes it into a cycle. Classes not listed are only
    /// subject to the cycle check. Empty = order check off.
    pub declared_order: Vec<String>,
}

/// The parsed configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Panic-freedom allowlist.
    pub allow: Vec<AllowEntry>,
    /// Stat-conservation inputs; rule skipped when absent.
    pub stats: Option<StatsConfig>,
    /// Panic-freedom scope; rule skipped when absent.
    pub panic: Option<PanicConfig>,
    /// Lock-discipline scope; rule skipped when absent.
    pub locks: Option<LocksConfig>,
}

/// Configuration file failure.
#[derive(Debug, Clone)]
pub struct ConfigError {
    /// 1-based line in the config file.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analyzer-allow.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Arr(Vec<String>),
}

/// Raw parse product: dotted table path → one map per occurrence
/// (normal tables occur once, `[[array]]` tables once per header).
type RawTables = Vec<(String, u32, Vec<(String, Value, u32)>)>;

struct Parser<'a> {
    lines: std::iter::Peekable<std::iter::Enumerate<std::str::Lines<'a>>>,
}

impl<'a> Parser<'a> {
    fn err(line: usize, message: impl Into<String>) -> ConfigError {
        ConfigError { line: line as u32 + 1, message: message.into() }
    }

    fn parse(src: &'a str) -> Result<RawTables, ConfigError> {
        let mut p = Parser { lines: src.lines().enumerate().peekable() };
        let mut tables: RawTables = Vec::new();
        // keys before any [table] header go to the implicit root table
        tables.push((String::new(), 0, Vec::new()));
        while let Some((n, raw)) = p.lines.next() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("[[") {
                let name = rest
                    .strip_suffix("]]")
                    .ok_or_else(|| Self::err(n, "missing ]] on table header"))?;
                tables.push((parse_key_path(name, n)?, n as u32 + 1, Vec::new()));
            } else if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| Self::err(n, "missing ] on table header"))?;
                let path = parse_key_path(name, n)?;
                if tables.iter().any(|(p, _, _)| *p == path) {
                    return Err(Self::err(n, format!("table [{path}] defined twice")));
                }
                tables.push((path, n as u32 + 1, Vec::new()));
            } else {
                let eq = line
                    .find('=')
                    .ok_or_else(|| Self::err(n, "expected `key = value`"))?;
                let key = parse_single_key(line[..eq].trim(), n)?;
                let mut value_src = line[eq + 1..].trim().to_string();
                // multi-line arrays: keep consuming lines until brackets
                // balance outside strings
                while !value_balanced(&value_src) {
                    match p.lines.next() {
                        Some((_, more)) => {
                            value_src.push('\n');
                            value_src.push_str(strip_comment(more));
                        }
                        None => return Err(Self::err(n, "unterminated array value")),
                    }
                }
                let value = parse_value(value_src.trim(), n)?;
                if let Some(current) = tables.last_mut() {
                    current.2.push((key, value, n as u32 + 1));
                }
            }
        }
        Ok(tables)
    }
}

/// Strips a `#` comment that is outside any string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// `true` when every `[` outside a string has a matching `]`.
fn value_balanced(src: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in src.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0 && !in_str
}

/// Parses a dotted table path with bare or quoted segments, returning it
/// re-joined with `.` (quoted segments keep their inner text).
fn parse_key_path(src: &str, line: usize) -> Result<String, ConfigError> {
    let src = src.trim();
    let mut out = String::new();
    let mut rest = src;
    loop {
        rest = rest.trim_start();
        let segment;
        if let Some(inner) = rest.strip_prefix('"') {
            let end = inner
                .find('"')
                .ok_or_else(|| Parser::err(line, "unterminated quoted key"))?;
            segment = &inner[..end];
            rest = &inner[end + 1..];
        } else {
            let end = rest.find('.').unwrap_or(rest.len());
            segment = rest[..end].trim();
            rest = &rest[end..];
        }
        if segment.is_empty() {
            return Err(Parser::err(line, "empty key segment"));
        }
        if !out.is_empty() {
            out.push('.');
        }
        out.push_str(segment);
        rest = rest.trim_start();
        if rest.is_empty() {
            return Ok(out);
        }
        rest = rest
            .strip_prefix('.')
            .ok_or_else(|| Parser::err(line, "expected `.` between key segments"))?;
    }
}

/// Parses one (possibly quoted) key, rejecting dotted keys.
fn parse_single_key(src: &str, line: usize) -> Result<String, ConfigError> {
    if let Some(inner) = src.strip_prefix('"') {
        let end = inner
            .find('"')
            .ok_or_else(|| Parser::err(line, "unterminated quoted key"))?;
        if !inner[end + 1..].trim().is_empty() {
            return Err(Parser::err(line, "unexpected text after quoted key"));
        }
        return Ok(inner[..end].to_string());
    }
    if src.is_empty() || src.contains(|c: char| c.is_whitespace() || c == '.') {
        return Err(Parser::err(line, format!("malformed key `{src}`")));
    }
    Ok(src.to_string())
}

fn parse_string(src: &str, line: usize) -> Result<(String, &str), ConfigError> {
    let inner = src
        .strip_prefix('"')
        .ok_or_else(|| Parser::err(line, "expected a quoted string"))?;
    let mut out = String::new();
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        if escaped {
            match c {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            }
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => return Ok((out, &inner[i + 1..])),
            other => out.push(other),
        }
    }
    Err(Parser::err(line, "unterminated string value"))
}

fn parse_value(src: &str, line: usize) -> Result<Value, ConfigError> {
    if src.starts_with('"') {
        let (s, rest) = parse_string(src, line)?;
        if !rest.trim().is_empty() {
            return Err(Parser::err(line, "unexpected text after string value"));
        }
        return Ok(Value::Str(s));
    }
    if let Some(mut rest) = src.strip_prefix('[') {
        let mut items = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(after) = rest.strip_prefix(']') {
                if !after.trim().is_empty() {
                    return Err(Parser::err(line, "unexpected text after array value"));
                }
                return Ok(Value::Arr(items));
            }
            let (s, after) = parse_string(rest, line)?;
            items.push(s);
            rest = after.trim_start();
            rest = rest.strip_prefix(',').unwrap_or(rest);
        }
    }
    Err(Parser::err(line, format!("unsupported value `{src}` (strings and string arrays only)")))
}

fn get_str(kvs: &[(String, Value, u32)], key: &str) -> Option<String> {
    kvs.iter().find(|(k, _, _)| k == key).and_then(|(_, v, _)| match v {
        Value::Str(s) => Some(s.clone()),
        Value::Arr(_) => None,
    })
}

fn get_arr(kvs: &[(String, Value, u32)], key: &str) -> Option<Vec<String>> {
    kvs.iter().find(|(k, _, _)| k == key).and_then(|(_, v, _)| match v {
        Value::Arr(a) => Some(a.clone()),
        Value::Str(_) => None,
    })
}

/// Parses the configuration from file contents.
///
/// # Errors
///
/// Returns [`ConfigError`] on any syntax the subset reader does not
/// understand, on `[[allow]]` entries missing `file`/`reason`, and on
/// rule sections missing their required keys.
pub fn parse_config(src: &str) -> Result<Config, ConfigError> {
    let tables = Parser::parse(src)?;
    let mut cfg = Config::default();
    let mut stats_kinds: Option<(String, String, u32)> = None;
    let mut stats_classes: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut stats_substrates: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut saw_stats = false;
    for (path, header_line, kvs) in &tables {
        let line = *header_line;
        match path.as_str() {
            "" => {
                if let Some((key, _, l)) = kvs.first() {
                    return Err(ConfigError {
                        line: *l,
                        message: format!("top-level key `{key}` outside any table"),
                    });
                }
            }
            "allow" => {
                let file = get_str(kvs, "file").ok_or(ConfigError {
                    line,
                    message: "[[allow]] entry needs a `file`".into(),
                })?;
                let reason = get_str(kvs, "reason").filter(|r| !r.trim().is_empty()).ok_or(
                    ConfigError {
                        line,
                        message: format!("[[allow]] entry for `{file}` needs a non-empty `reason`"),
                    },
                )?;
                cfg.allow.push(AllowEntry {
                    file,
                    pattern: get_str(kvs, "pattern"),
                    reason,
                    line,
                });
            }
            "panic" => {
                cfg.panic = Some(PanicConfig {
                    scan: get_arr(kvs, "scan").ok_or(ConfigError {
                        line,
                        message: "[panic] needs `scan = [\"crate-dir\", …]`".into(),
                    })?,
                });
            }
            "stats" => {
                saw_stats = true;
                let kinds_file = get_str(kvs, "kinds_file").ok_or(ConfigError {
                    line,
                    message: "[stats] needs `kinds_file`".into(),
                })?;
                let enum_name = get_str(kvs, "enum_name").unwrap_or_else(|| "MsgKind".into());
                stats_kinds = Some((kinds_file, enum_name, line));
            }
            "stats.classes" => {
                saw_stats = true;
                for (k, v, l) in kvs {
                    match v {
                        Value::Arr(a) => {
                            stats_classes.insert(k.clone(), a.clone());
                        }
                        Value::Str(_) => {
                            return Err(ConfigError {
                                line: *l,
                                message: format!("class `{k}` must list variants as an array"),
                            })
                        }
                    }
                }
            }
            "stats.substrates" => {
                saw_stats = true;
                for (k, v, l) in kvs {
                    match v {
                        Value::Arr(a) => {
                            stats_substrates.insert(k.clone(), a.clone());
                        }
                        Value::Str(_) => {
                            return Err(ConfigError {
                                line: *l,
                                message: format!("substrate `{k}` must list classes as an array"),
                            })
                        }
                    }
                }
            }
            "locks" => {
                let declared_order = get_arr(kvs, "declared_order").unwrap_or_default();
                for (i, class) in declared_order.iter().enumerate() {
                    if declared_order[..i].contains(class) {
                        return Err(ConfigError {
                            line,
                            message: format!(
                                "[locks] declared_order lists `{class}` twice — a total \
                                 order has each class once"
                            ),
                        });
                    }
                }
                cfg.locks = Some(LocksConfig {
                    scan: get_arr(kvs, "scan").ok_or(ConfigError {
                        line,
                        message: "[locks] needs `scan = [\"dir\", …]`".into(),
                    })?,
                    send_methods: get_arr(kvs, "send_methods")
                        .unwrap_or_else(|| vec!["send".into(), "send_timeout".into(), "try_send".into()]),
                    declared_order,
                });
            }
            other => {
                return Err(ConfigError {
                    line,
                    message: format!("unknown table [{other}]"),
                });
            }
        }
    }
    if saw_stats {
        let (kinds_file, enum_name, line) = stats_kinds.ok_or(ConfigError {
            line: 1,
            message: "[stats.classes]/[stats.substrates] present but [stats] kinds_file missing"
                .into(),
        })?;
        if stats_classes.is_empty() {
            return Err(ConfigError { line, message: "[stats.classes] is empty".into() });
        }
        cfg.stats = Some(StatsConfig {
            kinds_file,
            enum_name,
            classes: stats_classes,
            substrates: stats_substrates,
        });
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r##"
# comment
[[allow]]
file = "crates/x/src/a.rs"
pattern = "static schema"
reason = "compile-time literal"

[[allow]]
file = "crates/x/src/b.rs"
reason = "harness fails fast"

[panic]
scan = ["crates/x", "crates/y"]

[stats]
kinds_file = "crates/net/src/stats.rs"

[stats.classes]
query = [
    "Query",
    "QueryHit",  # trailing comment
]
retrieve = ["Retrieve"]

[stats.substrates]
"crates/net/src/live.rs" = ["query", "retrieve"]

[locks]
scan = ["crates"]
send_methods = ["send"]
declared_order = ["keys", "router", "shard"]
"##;

    #[test]
    fn parses_the_full_shape() {
        let cfg = parse_config(SAMPLE).expect("parses");
        assert_eq!(cfg.allow.len(), 2);
        assert_eq!(cfg.allow[0].pattern.as_deref(), Some("static schema"));
        assert!(cfg.allow[1].pattern.is_none());
        let p = cfg.panic.expect("panic section");
        assert_eq!(p.scan, vec!["crates/x", "crates/y"]);
        let s = cfg.stats.expect("stats section");
        assert_eq!(s.enum_name, "MsgKind");
        assert_eq!(s.classes["query"], vec!["Query", "QueryHit"]);
        assert_eq!(s.substrates["crates/net/src/live.rs"], vec!["query", "retrieve"]);
        let l = cfg.locks.expect("locks section");
        assert_eq!(l.send_methods, vec!["send"]);
        assert_eq!(l.declared_order, vec!["keys", "router", "shard"]);
    }

    #[test]
    fn declared_order_defaults_empty() {
        let cfg = parse_config("[locks]\nscan = [\"crates\"]\n").expect("parses");
        assert!(cfg.locks.expect("locks section").declared_order.is_empty());
    }

    #[test]
    fn duplicate_class_in_declared_order_is_rejected() {
        let err = parse_config("[locks]\nscan = [\"crates\"]\ndeclared_order = [\"a\", \"b\", \"a\"]\n")
            .expect_err("must fail");
        assert!(err.message.contains("twice"), "{}", err.message);
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let src = "[[allow]]\nfile = \"x.rs\"\n";
        let err = parse_config(src).expect_err("must fail");
        assert!(err.message.contains("reason"), "{}", err.message);
    }

    #[test]
    fn unknown_table_is_rejected() {
        let err = parse_config("[mystery]\nx = \"1\"\n").expect_err("must fail");
        assert!(err.message.contains("unknown table"));
    }

    #[test]
    fn comments_inside_strings_survive() {
        let cfg = parse_config("[[allow]]\nfile = \"a#b.rs\"\nreason = \"has # inside\"\n")
            .expect("parses");
        assert_eq!(cfg.allow[0].file, "a#b.rs");
        assert_eq!(cfg.allow[0].reason, "has # inside");
    }

    #[test]
    fn empty_config_is_all_rules_skipped() {
        let cfg = parse_config("").expect("parses");
        assert!(cfg.stats.is_none() && cfg.panic.is_none() && cfg.locks.is_none());
        assert!(cfg.allow.is_empty());
    }

    #[test]
    fn duplicate_table_rejected() {
        assert!(parse_config("[panic]\nscan = []\n[panic]\nscan = []\n").is_err());
    }
}
