//! `up2p-analyzer` — run the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p analyzer -- check [--root DIR] [--json FILE]
//! ```
//!
//! Exit codes: `0` clean, `1` findings (deny-by-default), `2` the pass
//! itself could not run (bad usage, unreadable config, I/O failure).

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: up2p-analyzer check [--root DIR] [--json FILE]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { return usage() };
    if command != "check" {
        eprintln!("unknown command `{command}`");
        return usage();
    }
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage(),
            },
            "--json" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage(),
            },
            other => {
                eprintln!("unknown flag `{other}`");
                return usage();
            }
        }
    }

    let findings = match analyzer::run_check(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("up2p-analyzer: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_out {
        let json = analyzer::json::findings_to_json(&findings);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("up2p-analyzer: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("up2p-analyzer: clean (0 findings)");
        ExitCode::SUCCESS
    } else {
        println!("up2p-analyzer: {} finding(s)", findings.len());
        ExitCode::from(1)
    }
}
