//! **Panic freedom.** Non-test code of the scanned crates must not call
//! `unwrap()` / `expect()` or invoke `panic!` / `unreachable!` / `todo!`
//! / `unimplemented!` — a servent that aborts on a malformed message or
//! a broken internal invariant takes the whole node down with it. Sites
//! that are provably infallible (or where fail-fast is the designed
//! behavior, as in the experiment harness) are tolerated only when
//! listed with a reason in `analyzer-allow.toml`; stale allowlist
//! entries are themselves findings, so the list can only shrink.
//!
//! Heuristic note: `.expect(` with the literal receiver `self` is
//! skipped — that is a method *named* `expect` (the CMIP parser has
//! one), not `Option::expect`.

use crate::config::{AllowEntry, PanicConfig};
use crate::lexer::TokenKind;
use crate::{collect_src_files, load_source, Finding};
use std::path::Path;

const RULE: &str = "panic-freedom";

/// Macros whose invocation in non-test code is a finding.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Runs the rule, appending findings.
pub fn check(root: &Path, cfg: &PanicConfig, allow: &[AllowEntry], findings: &mut Vec<Finding>) {
    let mut allow_used = vec![false; allow.len()];
    for dir in &cfg.scan {
        for rel in collect_src_files(root, dir) {
            let Some(file) = load_source(root, &rel, findings) else { continue };
            let mut sites: Vec<(u32, String)> = Vec::new();
            let code = &file.code;
            for j in 0..code.len() {
                let t = &code[j];
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let next_is = |ch: char| code.get(j + 1).map(|n| n.is_punct(ch)).unwrap_or(false);
                // `.unwrap()` / `.expect(…)` method calls
                if (t.is_ident("unwrap") || t.is_ident("expect"))
                    && j > 0
                    && code[j - 1].is_punct('.')
                    && next_is('(')
                {
                    // a method named `expect` on a parser: `self.expect('(')`
                    let receiver_is_self = j >= 2 && code[j - 2].is_ident("self");
                    if t.is_ident("expect") && receiver_is_self {
                        continue;
                    }
                    sites.push((t.line, format!("call to `{}()` outside tests", t.text)));
                    continue;
                }
                // `panic!` family macro invocations
                if PANIC_MACROS.contains(&t.text.as_str()) && next_is('!') {
                    sites.push((t.line, format!("`{}!` invocation outside tests", t.text)));
                }
            }
            for (line, message) in sites {
                let src_line =
                    file.lines.get(line as usize - 1).map(String::as_str).unwrap_or("");
                let allowed = allow.iter().enumerate().find(|(_, e)| {
                    e.file == rel
                        && e.pattern.as_deref().map(|p| src_line.contains(p)).unwrap_or(true)
                });
                match allowed {
                    Some((idx, _)) => allow_used[idx] = true,
                    None => findings.push(Finding {
                        rule: RULE,
                        file: rel.clone(),
                        line,
                        message,
                    }),
                }
            }
        }
    }
    // an allow entry that matches nothing is dead weight — flag it so the
    // list can only shrink as sites get fixed
    for (entry, used) in allow.iter().zip(&allow_used) {
        if !used {
            findings.push(Finding {
                rule: RULE,
                file: "analyzer-allow.toml".to_string(),
                line: entry.line,
                message: format!(
                    "stale allow entry for `{}`{}: no matching panic site",
                    entry.file,
                    entry
                        .pattern
                        .as_deref()
                        .map(|p| format!(" (pattern `{p}`)"))
                        .unwrap_or_default()
                ),
            });
        }
    }
}
