//! **Lock discipline.** Statically approximates guard lifetimes to catch
//! the two deadlock-and-contention shapes that bite threaded serving
//! planes:
//!
//! * **Order cycles** — every nested acquisition (`b.lock()` while a
//!   guard from `a.lock()` is live) contributes an `a → b` edge to a
//!   cross-file lock-order graph; any cycle in that graph is a finding
//!   (two functions taking the same pair of locks in opposite order is
//!   the classic ABBA deadlock). Nested acquisition of the *same* class
//!   is flagged immediately — there is no intra-class order.
//! * **Guard held across a send** — a `.send(…)`-shaped call while any
//!   guard is live serializes network traffic behind the lock (and, with
//!   bounded channels, can deadlock outright).
//! * **Declared-order contradictions** — `[locks] declared_order` in the
//!   config fixes a total acquisition order over named classes (the
//!   serving plane declares `keys → router → shard`, mirroring the
//!   runtime `parking_lot::declare_order` call); an observed edge running
//!   against it is flagged on its own, without waiting for a second
//!   function to close the cycle.
//!
//! The approximation is lexical, not type-checked: an acquisition is a
//! `.lock()` / `.read()` / `.write()` call with empty parentheses; its
//! class is the last identifier of the receiver chain (`p.shared.lock()`
//! → `shared`); a `let`-bound guard lives to the end of its block
//! (`drop(g)` ends it early), a temporary to the end of its statement.
//! The instrumented `parking_lot` shim checks the same discipline
//! dynamically in debug builds, so what the lexical pass under-reports
//! the runtime checker still catches.

use crate::config::LocksConfig;
use crate::lexer::{Token, TokenKind};
use crate::{collect_src_files, load_source, Finding};
use std::collections::BTreeMap;
use std::path::Path;

const RULE: &str = "lock-discipline";

/// Methods whose empty-parens call acquires a guard.
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

#[derive(Debug)]
struct Guard {
    class: String,
    binding: Option<String>,
    line: u32,
    /// Brace depth the guard was created at.
    depth: u32,
    /// `true` for `let`-bound guards (live to end of block), `false` for
    /// temporaries (live to end of statement).
    let_bound: bool,
}

/// One observed `from → to` nested-acquisition edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Class whose guard was held.
    pub from: String,
    /// Class acquired while `from` was held.
    pub to: String,
    /// Where the nested acquisition happened.
    pub file: String,
    /// 1-based line of the nested acquisition.
    pub line: u32,
}

/// Scans one function body (tokens strictly inside its braces), pushing
/// findings and observed edges.
fn scan_body(
    file: &str,
    body: &[Token],
    send_methods: &[String],
    edges: &mut Vec<Edge>,
    findings: &mut Vec<Finding>,
) {
    let mut brace_depth: u32 = 1;
    let mut paren_depth: i32 = 0;
    let mut held: Vec<Guard> = Vec::new();
    let mut j = 0usize;
    while j < body.len() {
        let t = &body[j];
        if t.is_punct('{') {
            brace_depth += 1;
        } else if t.is_punct('}') {
            held.retain(|g| g.depth < brace_depth);
            brace_depth = brace_depth.saturating_sub(1);
        } else if t.is_punct('(') {
            paren_depth += 1;
        } else if t.is_punct(')') {
            paren_depth -= 1;
        } else if t.is_punct(';') && paren_depth == 0 {
            held.retain(|g| g.let_bound || g.depth < brace_depth);
        } else if t.is_ident("drop")
            && body.get(j + 1).map(|n| n.is_punct('(')).unwrap_or(false)
            && body.get(j + 2).map(|n| n.kind == TokenKind::Ident).unwrap_or(false)
            && body.get(j + 3).map(|n| n.is_punct(')')).unwrap_or(false)
        {
            let name = body[j + 2].text.as_str();
            if let Some(pos) = held.iter().rposition(|g| g.binding.as_deref() == Some(name)) {
                held.remove(pos);
            }
        } else if t.is_punct('.') {
            let Some(m) = body.get(j + 1) else {
                j += 1;
                continue;
            };
            let empty_call = body.get(j + 2).map(|n| n.is_punct('(')).unwrap_or(false)
                && body.get(j + 3).map(|n| n.is_punct(')')).unwrap_or(false);
            let open_call = body.get(j + 2).map(|n| n.is_punct('(')).unwrap_or(false);
            if ACQUIRE_METHODS.contains(&m.text.as_str()) && empty_call {
                let class = match j.checked_sub(1).and_then(|k| body.get(k)) {
                    Some(prev) if prev.kind == TokenKind::Ident => prev.text.clone(),
                    _ => "<expr>".to_string(),
                };
                let (let_bound, binding) = statement_binding(body, j);
                for g in &held {
                    if g.class == class {
                        findings.push(Finding {
                            rule: RULE,
                            file: file.to_string(),
                            line: m.line,
                            message: format!(
                                "nested acquisition of lock class `{class}` (outer guard \
                                 taken at line {}): no intra-class order exists",
                                g.line
                            ),
                        });
                    } else {
                        edges.push(Edge {
                            from: g.class.clone(),
                            to: class.clone(),
                            file: file.to_string(),
                            line: m.line,
                        });
                    }
                }
                held.push(Guard { class, binding, line: m.line, depth: brace_depth, let_bound });
                j += 4; // past `.name()`
                continue;
            }
            if open_call
                && m.kind == TokenKind::Ident
                && send_methods.iter().any(|s| s == &m.text)
            {
                if let Some(g) = held.last() {
                    findings.push(Finding {
                        rule: RULE,
                        file: file.to_string(),
                        line: m.line,
                        message: format!(
                            "guard on `{}` (taken at line {}) held across `.{}(…)` — \
                             release the lock before sending",
                            g.class, g.line, m.text
                        ),
                    });
                }
            }
        }
        j += 1;
    }
}

/// Determines whether the acquisition at `dot` starts a `let`-bound
/// statement and, if so, the bound name (first identifier of the
/// pattern, `mut` skipped — good enough for `drop(g)` matching).
fn statement_binding(body: &[Token], dot: usize) -> (bool, Option<String>) {
    let mut k = dot;
    while k > 0 {
        let t = &body[k - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        k -= 1;
    }
    if !body.get(k).map(|t| t.is_ident("let")).unwrap_or(false) {
        return (false, None);
    }
    let mut p = k + 1;
    if body.get(p).map(|t| t.is_ident("mut")).unwrap_or(false) {
        p += 1;
    }
    let name = body.get(p).and_then(|t| {
        if t.kind == TokenKind::Ident {
            Some(t.text.clone())
        } else {
            None
        }
    });
    (true, name)
}

/// Flags observed edges that run against the declared total order:
/// acquiring an earlier-declared class while a later-declared one is
/// held. Each offending `(from, to)` pair is reported once, at its first
/// observed site (edges arrive sorted).
fn report_order_contradictions(edges: &[Edge], declared: &[String], findings: &mut Vec<Finding>) {
    if declared.is_empty() {
        return;
    }
    let rank = |class: &str| declared.iter().position(|c| c == class);
    let mut seen: Vec<(&str, &str)> = Vec::new();
    for e in edges {
        let (Some(from), Some(to)) = (rank(&e.from), rank(&e.to)) else { continue };
        if from <= to || seen.contains(&(e.from.as_str(), e.to.as_str())) {
            continue;
        }
        seen.push((e.from.as_str(), e.to.as_str()));
        findings.push(Finding {
            rule: RULE,
            file: e.file.clone(),
            line: e.line,
            message: format!(
                "acquiring `{}` while holding `{}` contradicts the declared lock order ({})",
                e.to,
                e.from,
                declared.iter().map(|c| format!("`{c}`")).collect::<Vec<_>>().join(" → "),
            ),
        });
    }
}

/// Detects cycles in the observed lock-order graph and reports each once.
fn report_cycles(edges: &[Edge], findings: &mut Vec<Finding>) {
    // adjacency with one example site per directed pair
    let mut adj: BTreeMap<&str, BTreeMap<&str, &Edge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().entry(e.to.as_str()).or_insert(e);
    }
    let nodes: Vec<&str> = adj
        .iter()
        .flat_map(|(from, tos)| std::iter::once(*from).chain(tos.keys().copied()))
        .collect();
    let mut reported: Vec<Vec<&str>> = Vec::new();
    for &start in &nodes {
        // DFS from each node; a path returning to `start` is a cycle
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
        while let Some((node, path)) = stack.pop() {
            let Some(tos) = adj.get(node) else { continue };
            for (&to, _) in tos.iter() {
                if to == start {
                    // canonical form: rotate so the smallest node leads
                    let mut cycle = path.clone();
                    let Some(min_pos) = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, n)| **n)
                        .map(|(i, _)| i)
                    else {
                        continue;
                    };
                    cycle.rotate_left(min_pos);
                    if reported.contains(&cycle) {
                        continue;
                    }
                    reported.push(cycle.clone());
                    let mut parts = Vec::new();
                    for w in 0..cycle.len() {
                        let from = cycle[w];
                        let to = cycle[(w + 1) % cycle.len()];
                        if let Some(e) = adj.get(from).and_then(|t| t.get(to)) {
                            parts.push(format!("`{from}` → `{to}` at {}:{}", e.file, e.line));
                        }
                    }
                    let site = adj
                        .get(cycle[0])
                        .and_then(|t| t.get(cycle.get(1).copied().unwrap_or(cycle[0])));
                    findings.push(Finding {
                        rule: RULE,
                        file: site.map(|e| e.file.clone()).unwrap_or_default(),
                        line: site.map(|e| e.line).unwrap_or(0),
                        message: format!("lock-order cycle: {}", parts.join(", ")),
                    });
                } else if !path.contains(&to) {
                    let mut next = path.clone();
                    next.push(to);
                    stack.push((to, next));
                }
            }
        }
    }
}

/// Extracts every function body in a token stream and scans it.
fn scan_file(
    file: &str,
    code: &[Token],
    send_methods: &[String],
    edges: &mut Vec<Edge>,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while i < code.len() {
        if code[i].is_ident("fn") && code.get(i + 1).map(|t| t.kind == TokenKind::Ident).unwrap_or(false)
        {
            // find the body's `{`, skipping the parameter list; a `;`
            // first means a bodyless declaration (trait method, extern)
            let mut j = i + 2;
            let mut body_open = None;
            while j < code.len() {
                if code[j].is_punct('(') {
                    let mut d = 0usize;
                    while j < code.len() {
                        if code[j].is_punct('(') {
                            d += 1;
                        } else if code[j].is_punct(')') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                } else if code[j].is_punct('{') {
                    body_open = Some(j);
                    break;
                } else if code[j].is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = body_open {
                let mut d = 0usize;
                let mut end = open;
                while end < code.len() {
                    if code[end].is_punct('{') {
                        d += 1;
                    } else if code[end].is_punct('}') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    end += 1;
                }
                scan_body(file, &code[open + 1..end.min(code.len())], send_methods, edges, findings);
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Runs the rule, appending findings.
pub fn check(root: &Path, cfg: &LocksConfig, findings: &mut Vec<Finding>) {
    let mut edges: Vec<Edge> = Vec::new();
    for dir in &cfg.scan {
        for rel in collect_src_files(root, dir) {
            let Some(file) = load_source(root, &rel, findings) else { continue };
            scan_file(&rel, &file.code, &cfg.send_methods, &mut edges, findings);
        }
    }
    edges.sort();
    edges.dedup();
    report_order_contradictions(&edges, &cfg.declared_order, findings);
    report_cycles(&edges, findings);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, sends: &[&str]) -> (Vec<Edge>, Vec<Finding>) {
        let code = lex(src).expect("lexes");
        let mut edges = Vec::new();
        let mut findings = Vec::new();
        let sends: Vec<String> = sends.iter().map(|s| s.to_string()).collect();
        scan_file("t.rs", &code, &sends, &mut edges, &mut findings);
        (edges, findings)
    }

    #[test]
    fn nested_let_guards_record_an_edge() {
        let (edges, findings) =
            run("fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }", &[]);
        assert_eq!(findings.len(), 0);
        assert_eq!(edges.len(), 1);
        assert_eq!((edges[0].from.as_str(), edges[0].to.as_str()), ("alpha", "beta"));
    }

    #[test]
    fn guard_dies_with_its_block() {
        let (edges, _) =
            run("fn f(&self) { { let a = self.alpha.lock(); } let b = self.beta.lock(); }", &[]);
        assert!(edges.is_empty(), "alpha's guard ended before beta's acquisition: {edges:?}");
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let (edges, _) = run(
            "fn f(&self) { self.alpha.lock().touch(); let b = self.beta.lock(); }",
            &[],
        );
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn explicit_drop_ends_the_guard() {
        let (edges, _) = run(
            "fn f(&self) { let a = self.alpha.lock(); drop(a); let b = self.beta.lock(); }",
            &[],
        );
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn same_class_nesting_is_flagged() {
        let (_, findings) =
            run("fn f(&self) { let a = self.table.lock(); let b = self.table.lock(); }", &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("intra-class"));
    }

    #[test]
    fn send_under_guard_is_flagged() {
        let (_, findings) = run(
            "fn f(&self) { let g = self.node.lock(); self.tx.send(1); }",
            &["send"],
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("held across"));
    }

    #[test]
    fn send_after_block_is_clean() {
        let (_, findings) = run(
            "fn f(&self) { { let g = self.node.lock(); g.touch(); } self.tx.send(1); }",
            &["send"],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn abba_cycle_is_reported() {
        let (edges, mut findings) = run(
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
             fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }",
            &[],
        );
        report_cycles(&edges, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("lock-order cycle"));
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        let (edges, mut findings) = run(
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
             fn g(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }",
            &[],
        );
        report_cycles(&edges, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn rwlock_read_write_count_as_acquisitions() {
        let (edges, _) = run(
            "fn f(&self) { let r = self.index.read(); let w = self.journal.write(); }",
            &[],
        );
        assert_eq!(edges.len(), 1);
        assert_eq!((edges[0].from.as_str(), edges[0].to.as_str()), ("index", "journal"));
    }

    fn declared(classes: &[&str]) -> Vec<String> {
        classes.iter().map(|c| c.to_string()).collect()
    }

    #[test]
    fn edge_against_declared_order_is_flagged() {
        // shard → keys contradicts keys → router → shard, even though a
        // single edge forms no cycle
        let (edges, mut findings) = run(
            "fn f(&self) { let s = self.shard.write(); let k = self.keys.write(); }",
            &[],
        );
        report_order_contradictions(&edges, &declared(&["keys", "router", "shard"]), &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("declared lock order"), "{findings:?}");
        assert!(findings[0].message.contains("`keys` → `router` → `shard`"), "{findings:?}");
    }

    #[test]
    fn edge_along_declared_order_is_clean() {
        // keys → shard skips router; skipping ranks is fine, reversing is not
        let (edges, mut findings) = run(
            "fn f(&self) { let k = self.keys.write(); let s = self.shard.write(); }",
            &[],
        );
        report_order_contradictions(&edges, &declared(&["keys", "router", "shard"]), &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn undeclared_classes_are_exempt_from_the_order_check() {
        let (edges, mut findings) = run(
            "fn f(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }",
            &[],
        );
        report_order_contradictions(&edges, &declared(&["keys", "router", "shard"]), &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn contradicting_pair_is_reported_once_across_sites() {
        let (edges, mut findings) = run(
            "fn f(&self) { let s = self.shard.write(); let k = self.keys.write(); }\n\
             fn g(&self) { let s = self.shard.write(); let k = self.keys.read(); }",
            &[],
        );
        let mut sorted = edges.clone();
        sorted.sort();
        sorted.dedup();
        report_order_contradictions(&sorted, &declared(&["keys", "router", "shard"]), &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn closure_inside_guard_scope_still_counts() {
        // the live.rs PR-4 shape: callback sends while the node guard lives
        let (_, findings) = run(
            "fn f(&self) { let node = shared.lock(); node.search(|k| { let _ = reply.send(k); }); }",
            &["send"],
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
    }
}
