//! **Stat conservation.** The protocol's message accounting lives across
//! files: the `MsgKind` enum (and its `ALL` mirror) in one, and
//! `stats.sent(MsgKind::…)` emission sites spread over every substrate.
//! PR 4 fixed two silent bugs this split caused — `RetrieveFail` was
//! never counted, and a dead-origin retrieve was. This rule turns the
//! invariant into a CI failure:
//!
//! * `MsgKind::ALL` lists every enum variant exactly once (and its
//!   declared length matches),
//! * every variant belongs to exactly one declared message class,
//! * every substrate emits (`sent`/`sent_n`) each variant of every class
//!   it declares — deleting an emission site is a finding,
//! * no substrate emits a variant of a class it does not declare — a
//!   counter bump on a path the protocol says carries no such message.

use crate::config::StatsConfig;
use crate::lexer::{Token, TokenKind};
use crate::{load_source, Finding};
use std::collections::BTreeMap;
use std::path::Path;

const RULE: &str = "stat-conservation";

fn finding(file: &str, line: u32, message: String) -> Finding {
    Finding { rule: RULE, file: file.to_string(), line, message }
}

/// Extracts `(variant, line)` pairs from `enum <name> { … }`.
fn enum_variants(code: &[Token], name: &str) -> Option<Vec<(String, u32)>> {
    let mut i = 0;
    while i + 1 < code.len() {
        if code[i].is_ident("enum") && code[i + 1].is_ident(name) {
            break;
        }
        i += 1;
    }
    if i + 1 >= code.len() {
        return None;
    }
    // find the opening brace
    while i < code.len() && !code[i].is_punct('{') {
        i += 1;
    }
    let mut variants = Vec::new();
    let mut depth = 0u32;
    let mut expecting = true;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            if depth == 0 && t.is_punct('{') {
                depth = 1;
                i += 1;
                continue;
            }
            // payload or nested group: skip it wholesale
            let open = t.text.chars().next().unwrap_or('{');
            let close = match open {
                '(' => ')',
                '[' => ']',
                _ => '}',
            };
            let mut d = 0usize;
            while i < code.len() {
                if code[i].is_punct(open) {
                    d += 1;
                } else if code[i].is_punct(close) {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                i += 1;
            }
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            return Some(variants);
        }
        if t.is_punct(',') {
            expecting = true;
            i += 1;
            continue;
        }
        if t.is_punct('#') {
            // attribute on a variant: skip `#[…]`
            i += 1;
            if i < code.len() && code[i].is_punct('[') {
                let mut d = 0usize;
                while i < code.len() {
                    if code[i].is_punct('[') {
                        d += 1;
                    } else if code[i].is_punct(']') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    i += 1;
                }
                i += 1;
            }
            continue;
        }
        if expecting && t.kind == TokenKind::Ident {
            variants.push((t.text.clone(), t.line));
            expecting = false;
        }
        i += 1;
    }
    Some(variants)
}

/// The parsed `ALL` mirror array.
struct AllArray {
    /// Length literal from the `[Kind; N]` type, when parseable.
    declared_len: Option<u64>,
    /// `(variant, line)` of every `<enum>::Variant` listed.
    entries: Vec<(String, u32)>,
    /// Line of the `ALL` identifier itself.
    line: u32,
}

/// Extracts the `ALL` array: the declared length literal and the listed
/// `<enum>::Variant` entries with their lines.
fn all_array(code: &[Token], enum_name: &str) -> Option<AllArray> {
    let mut i = 0;
    while i < code.len() {
        if code[i].is_ident("ALL") && i > 0 && code[i - 1].is_ident("const") {
            break;
        }
        i += 1;
    }
    if i >= code.len() {
        return None;
    }
    let all_line = code[i].line;
    // declared length: the Num between `[` and `]` in the type position
    let mut declared_len = None;
    let mut j = i;
    while j < code.len() && !code[j].is_punct('=') {
        if code[j].kind == TokenKind::Num {
            declared_len = code[j].text.replace('_', "").parse::<u64>().ok();
        }
        j += 1;
    }
    // entries between the `[` after `=` and its matching `]`
    while j < code.len() && !code[j].is_punct('[') {
        j += 1;
    }
    let mut entries = Vec::new();
    while j < code.len() && !code[j].is_punct(']') {
        if code[j].is_ident(enum_name)
            && code.get(j + 1).map(|t| t.is_punct(':')).unwrap_or(false)
            && code.get(j + 2).map(|t| t.is_punct(':')).unwrap_or(false)
            && code.get(j + 3).map(|t| t.kind == TokenKind::Ident).unwrap_or(false)
        {
            entries.push((code[j + 3].text.clone(), code[j + 3].line));
            j += 4;
            continue;
        }
        j += 1;
    }
    Some(AllArray { declared_len, entries, line: all_line })
}

/// Finds `(variant, line)` of every `.sent(<enum>::V…)` /
/// `.sent_n(<enum>::V…)` call in a (test-stripped) token stream.
fn emissions(code: &[Token], enum_name: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for j in 0..code.len() {
        if !code[j].is_punct('.') {
            continue;
        }
        let Some(m) = code.get(j + 1) else { continue };
        if !(m.is_ident("sent") || m.is_ident("sent_n")) {
            continue;
        }
        if code.get(j + 2).map(|t| t.is_punct('(')).unwrap_or(false)
            && code.get(j + 3).map(|t| t.is_ident(enum_name)).unwrap_or(false)
            && code.get(j + 4).map(|t| t.is_punct(':')).unwrap_or(false)
            && code.get(j + 5).map(|t| t.is_punct(':')).unwrap_or(false)
            && code.get(j + 6).map(|t| t.kind == TokenKind::Ident).unwrap_or(false)
        {
            out.push((code[j + 6].text.clone(), code[j + 6].line));
        }
    }
    out
}

/// Runs the rule, appending findings.
pub fn check(root: &Path, cfg: &StatsConfig, findings: &mut Vec<Finding>) {
    let Some(kinds) = load_source(root, &cfg.kinds_file, findings) else { return };
    let Some(variants) = enum_variants(&kinds.code, &cfg.enum_name) else {
        findings.push(finding(
            &cfg.kinds_file,
            0,
            format!("enum `{}` not found", cfg.enum_name),
        ));
        return;
    };
    let variant_names: Vec<&str> = variants.iter().map(|(v, _)| v.as_str()).collect();

    // ---- ALL stays in sync with the enum ----
    match all_array(&kinds.code, &cfg.enum_name) {
        None => findings.push(finding(
            &cfg.kinds_file,
            0,
            format!("`{}::ALL` array not found", cfg.enum_name),
        )),
        Some(AllArray { declared_len, entries, line: all_line }) => {
            if let Some(len) = declared_len {
                if len != variants.len() as u64 {
                    findings.push(finding(
                        &cfg.kinds_file,
                        all_line,
                        format!(
                            "`ALL` declares length {len} but the enum has {} variants",
                            variants.len()
                        ),
                    ));
                }
            }
            let mut seen = BTreeMap::new();
            for (v, line) in &entries {
                *seen.entry(v.clone()).or_insert(0u32) += 1;
                if !variant_names.contains(&v.as_str()) {
                    findings.push(finding(
                        &cfg.kinds_file,
                        *line,
                        format!("`ALL` lists `{v}` which is not an enum variant"),
                    ));
                }
            }
            for (v, count) in &seen {
                if *count > 1 {
                    findings.push(finding(
                        &cfg.kinds_file,
                        all_line,
                        format!("`ALL` lists `{v}` {count} times"),
                    ));
                }
            }
            for (v, line) in &variants {
                if !seen.contains_key(v) {
                    findings.push(finding(
                        &cfg.kinds_file,
                        *line,
                        format!("variant `{v}` is missing from `ALL`"),
                    ));
                }
            }
        }
    }

    // ---- every variant classified exactly once ----
    let mut class_of: BTreeMap<&str, &str> = BTreeMap::new();
    for (class, members) in &cfg.classes {
        for v in members {
            if !variant_names.contains(&v.as_str()) {
                findings.push(finding(
                    "analyzer-allow.toml",
                    0,
                    format!("[stats.classes] `{class}` lists unknown variant `{v}`"),
                ));
                continue;
            }
            if let Some(prev) = class_of.insert(v.as_str(), class.as_str()) {
                findings.push(finding(
                    "analyzer-allow.toml",
                    0,
                    format!("variant `{v}` is in both class `{prev}` and class `{class}`"),
                ));
            }
        }
    }
    for (v, line) in &variants {
        if !class_of.contains_key(v.as_str()) {
            findings.push(finding(
                &cfg.kinds_file,
                *line,
                format!("variant `{v}` belongs to no [stats.classes] message class"),
            ));
        }
    }

    // ---- per-substrate conservation ----
    for (substrate, declared) in &cfg.substrates {
        for class in declared {
            if !cfg.classes.contains_key(class) {
                findings.push(finding(
                    "analyzer-allow.toml",
                    0,
                    format!("substrate `{substrate}` declares unknown class `{class}`"),
                ));
            }
        }
        let Some(file) = load_source(root, substrate, findings) else { continue };
        let emitted = emissions(&file.code, &cfg.enum_name);
        for class in declared {
            let Some(members) = cfg.classes.get(class) else { continue };
            for v in members {
                if !emitted.iter().any(|(e, _)| e == v) {
                    findings.push(finding(
                        substrate,
                        1,
                        format!(
                            "declares message class `{class}` but has no \
                             `sent({}::{v})` emission site",
                            cfg.enum_name
                        ),
                    ));
                }
            }
        }
        for (v, line) in &emitted {
            match class_of.get(v.as_str()) {
                Some(class) if declared.contains(&class.to_string()) => {}
                Some(class) => findings.push(finding(
                    substrate,
                    *line,
                    format!(
                        "emits `{}::{v}` (class `{class}`) outside its declared \
                         classes [{}]",
                        cfg.enum_name,
                        declared.join(", ")
                    ),
                )),
                None => findings.push(finding(
                    substrate,
                    *line,
                    format!("emits unknown variant `{}::{v}`", cfg.enum_name),
                )),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const STATS_SRC: &str = "
pub enum MsgKind { Query, QueryHit, Retrieve }
impl MsgKind {
    pub const ALL: [MsgKind; 3] = [MsgKind::Query, MsgKind::QueryHit, MsgKind::Retrieve];
}
";

    #[test]
    fn parses_enum_and_all() {
        let code = lex(STATS_SRC).expect("lexes");
        let vs = enum_variants(&code, "MsgKind").expect("enum found");
        assert_eq!(
            vs.iter().map(|(v, _)| v.as_str()).collect::<Vec<_>>(),
            vec!["Query", "QueryHit", "Retrieve"]
        );
        let all = all_array(&code, "MsgKind").expect("ALL found");
        assert_eq!(all.declared_len, Some(3));
        assert_eq!(all.entries.len(), 3);
    }

    #[test]
    fn finds_emissions() {
        let code = lex(
            "fn f(s: &mut NetStats) { s.sent(MsgKind::Query); self.stats.sent_n(MsgKind::Retrieve, n); }",
        )
        .expect("lexes");
        let em = emissions(&code, "MsgKind");
        assert_eq!(
            em.iter().map(|(v, _)| v.as_str()).collect::<Vec<_>>(),
            vec!["Query", "Retrieve"]
        );
    }

    #[test]
    fn enum_with_discriminants_and_payloads() {
        let code = lex("enum E { A = 1, B(u32), C { x: u8 }, D }").expect("lexes");
        let vs = enum_variants(&code, "E").expect("enum found");
        assert_eq!(
            vs.iter().map(|(v, _)| v.as_str()).collect::<Vec<_>>(),
            vec!["A", "B", "C", "D"]
        );
    }
}
