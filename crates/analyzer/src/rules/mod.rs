//! The three rule families the analyzer enforces.

pub mod locks;
pub mod panic_free;
pub mod stats;
