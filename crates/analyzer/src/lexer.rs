//! A small hand-rolled Rust lexer — just enough token structure for the
//! analyzer's rules: identifiers, lifetimes, literals (including raw and
//! byte strings), numbers and single-character punctuation, each tagged
//! with its 1-based source line. Comments and whitespace are discarded;
//! nested block comments and multi-line strings keep line counts exact.
//!
//! The lexer is deliberately forgiving about token *classes* (a malformed
//! exponent lexes as a number followed by an identifier) but strict about
//! delimiters: an unterminated string or block comment is a hard
//! [`LexError`], because every downstream rule depends on knowing where
//! tokens end.

use std::fmt;

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `MsgKind`, `r#raw_ident`).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (`42`, `0xff`, `1.5e-3`, `2_000u64`).
    Num,
    /// A single punctuation character (`.`, `:`, `{`, `!`, …).
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    fn new(kind: TokenKind, text: impl Into<String>, line: u32) -> Token {
        Token { kind, text: text.into(), line }
    }

    /// `true` when the token is punctuation with exactly this text.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }

    /// `true` when the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }
}

/// Failure to tokenize a source file.
#[derive(Debug, Clone)]
pub struct LexError {
    /// 1-based line of the failure.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError { line: self.line, message: message.into() }
    }

    /// Consumes `"…"` after the opening quote has been consumed.
    fn string_body(&mut self) -> Result<(), LexError> {
        loop {
            match self.bump() {
                Some('"') => return Ok(()),
                Some('\\') => {
                    self.bump();
                }
                Some(_) => {}
                None => return Err(self.err("unterminated string literal")),
            }
        }
    }

    /// Consumes `r"…"` / `r#"…"#` after the `r` (and optional `b`) prefix.
    fn raw_string_body(&mut self) -> Result<(), LexError> {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.bump() != Some('"') {
            return Err(self.err("malformed raw string prefix"));
        }
        loop {
            match self.bump() {
                Some('"') => {
                    let mut matched = 0usize;
                    while matched < hashes && self.peek(0) == Some('#') {
                        matched += 1;
                        self.bump();
                    }
                    if matched == hashes {
                        return Ok(());
                    }
                }
                Some(_) => {}
                None => return Err(self.err("unterminated raw string literal")),
            }
        }
    }

    /// Consumes `'x'` / `'\n'` after the opening quote has been consumed.
    fn char_body(&mut self) -> Result<(), LexError> {
        loop {
            match self.bump() {
                Some('\'') => return Ok(()),
                Some('\\') => {
                    self.bump();
                }
                Some(_) => {}
                None => return Err(self.err("unterminated character literal")),
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes one Rust source file.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings, characters or block
/// comments — the constructs that would make token boundaries ambiguous.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer { chars: src.chars().collect(), pos: 0, line: 1 };
    let mut out = Vec::new();
    while let Some(c) = lx.peek(0) {
        let line = lx.line;
        // whitespace
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        // comments
        if c == '/' && lx.peek(1) == Some('/') {
            while let Some(c) = lx.peek(0) {
                if c == '\n' {
                    break;
                }
                lx.bump();
            }
            continue;
        }
        if c == '/' && lx.peek(1) == Some('*') {
            lx.bump();
            lx.bump();
            let mut depth = 1usize;
            loop {
                match (lx.peek(0), lx.peek(1)) {
                    (Some('/'), Some('*')) => {
                        lx.bump();
                        lx.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        lx.bump();
                        lx.bump();
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    (Some(_), _) => {
                        lx.bump();
                    }
                    (None, _) => return Err(lx.err("unterminated block comment")),
                }
            }
            continue;
        }
        // string-ish prefixes: r" r#" br" b" b' (and raw identifiers r#ident)
        if c == 'r' || c == 'b' {
            let (next, next2) = (lx.peek(1), lx.peek(2));
            let start = lx.pos;
            match (c, next) {
                ('r', Some('"')) | ('r', Some('#')) => {
                    // r#ident (raw identifier) vs r#"…"# (raw string): a raw
                    // identifier has an ident char right after a single '#'
                    let is_raw_ident =
                        next == Some('#') && next2.map(is_ident_start).unwrap_or(false);
                    if is_raw_ident {
                        lx.bump(); // r
                        lx.bump(); // #
                        while lx.peek(0).map(is_ident_continue).unwrap_or(false) {
                            lx.bump();
                        }
                        let text: String = lx.chars[start..lx.pos].iter().collect();
                        out.push(Token::new(TokenKind::Ident, text, line));
                        continue;
                    }
                    lx.bump(); // r
                    lx.raw_string_body()?;
                    let text: String = lx.chars[start..lx.pos].iter().collect();
                    out.push(Token::new(TokenKind::Str, text, line));
                    continue;
                }
                ('b', Some('"')) => {
                    lx.bump(); // b
                    lx.bump(); // "
                    lx.string_body()?;
                    let text: String = lx.chars[start..lx.pos].iter().collect();
                    out.push(Token::new(TokenKind::Str, text, line));
                    continue;
                }
                ('b', Some('\'')) => {
                    lx.bump(); // b
                    lx.bump(); // '
                    lx.char_body()?;
                    let text: String = lx.chars[start..lx.pos].iter().collect();
                    out.push(Token::new(TokenKind::Char, text, line));
                    continue;
                }
                ('b', Some('r')) if next2 == Some('"') || next2 == Some('#') => {
                    lx.bump(); // b
                    lx.bump(); // r
                    lx.raw_string_body()?;
                    let text: String = lx.chars[start..lx.pos].iter().collect();
                    out.push(Token::new(TokenKind::Str, text, line));
                    continue;
                }
                _ => {} // plain identifier starting with r/b
            }
        }
        // identifiers and keywords
        if is_ident_start(c) {
            let start = lx.pos;
            while lx.peek(0).map(is_ident_continue).unwrap_or(false) {
                lx.bump();
            }
            let text: String = lx.chars[start..lx.pos].iter().collect();
            out.push(Token::new(TokenKind::Ident, text, line));
            continue;
        }
        // lifetimes vs character literals
        if c == '\'' {
            let next = lx.peek(1);
            let is_lifetime = next.map(is_ident_start).unwrap_or(false) && lx.peek(2) != Some('\'');
            if is_lifetime {
                let start = lx.pos;
                lx.bump(); // '
                while lx.peek(0).map(is_ident_continue).unwrap_or(false) {
                    lx.bump();
                }
                let text: String = lx.chars[start..lx.pos].iter().collect();
                out.push(Token::new(TokenKind::Lifetime, text, line));
            } else {
                let start = lx.pos;
                lx.bump(); // '
                lx.char_body()?;
                let text: String = lx.chars[start..lx.pos].iter().collect();
                out.push(Token::new(TokenKind::Char, text, line));
            }
            continue;
        }
        // strings
        if c == '"' {
            let start = lx.pos;
            lx.bump();
            lx.string_body()?;
            let text: String = lx.chars[start..lx.pos].iter().collect();
            out.push(Token::new(TokenKind::Str, text, line));
            continue;
        }
        // numbers: digits, then ident-continue chars (hex digits, suffixes,
        // exponents), '.' when followed by a digit, and the sign of an
        // exponent (1e-5)
        if c.is_ascii_digit() {
            let start = lx.pos;
            lx.bump();
            loop {
                match lx.peek(0) {
                    Some(n) if is_ident_continue(n) => {
                        lx.bump();
                    }
                    Some('.') if lx.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false) => {
                        lx.bump();
                    }
                    Some('+') | Some('-')
                        if lx.chars[lx.pos - 1] == 'e' || lx.chars[lx.pos - 1] == 'E' =>
                    {
                        // only part of the number inside an exponent; `1-2`
                        // never reaches here because '1' has no trailing e
                        lx.bump();
                    }
                    _ => break,
                }
            }
            let text: String = lx.chars[start..lx.pos].iter().collect();
            out.push(Token::new(TokenKind::Num, text, line));
            continue;
        }
        // everything else: single-character punctuation
        lx.bump();
        out.push(Token::new(TokenKind::Punct, c, line));
    }
    Ok(out)
}

/// Removes test-only code from a token stream: items annotated
/// `#[cfg(test)]` (or any `cfg(...)` mentioning `test`) and functions
/// annotated `#[test]`, attribute included. Everything the panic-freedom
/// and lock-discipline rules see has gone through this filter, so test
/// `unwrap()`s stay legal.
pub fn strip_test_code(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).map(|t| t.is_punct('[')).unwrap_or(false) {
            let attr_end = match skip_group(tokens, i + 1, '[', ']') {
                Some(end) => end,
                None => {
                    out.push(tokens[i].clone());
                    i += 1;
                    continue;
                }
            };
            let attr = &tokens[i + 2..attr_end - 1];
            let is_test_attr = attr.first().map(|t| t.is_ident("test")).unwrap_or(false)
                || (attr.first().map(|t| t.is_ident("cfg")).unwrap_or(false)
                    && attr.iter().any(|t| t.is_ident("test")));
            if !is_test_attr {
                out.extend_from_slice(&tokens[i..attr_end]);
                i = attr_end;
                continue;
            }
            // drop the attribute, any further attributes, and the item that
            // follows: up to its `;`, or through its balanced `{…}` body
            i = attr_end;
            while i < tokens.len()
                && tokens[i].is_punct('#')
                && tokens.get(i + 1).map(|t| t.is_punct('[')).unwrap_or(false)
            {
                match skip_group(tokens, i + 1, '[', ']') {
                    Some(end) => i = end,
                    None => break,
                }
            }
            while i < tokens.len() {
                if tokens[i].is_punct(';') {
                    i += 1;
                    break;
                }
                if tokens[i].is_punct('{') {
                    i = skip_group(tokens, i, '{', '}').unwrap_or(tokens.len());
                    break;
                }
                i += 1;
            }
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Returns the index one past the group's closing delimiter, given the
/// index of the opening delimiter. `None` when unbalanced.
fn skip_group(tokens: &[Token], open_at: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open_at;
    while i < tokens.len() {
        if tokens[i].is_punct(open) {
            depth += 1;
        } else if tokens[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).expect("lexes").into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(texts("fn f(x: u32) -> u32 { x + 0xff }"), vec![
            "fn", "f", "(", "x", ":", "u32", ")", "-", ">", "u32", "{", "x", "+", "0xff", "}"
        ]);
    }

    #[test]
    fn strings_and_chars_and_lifetimes() {
        let src = "let s = \"a\\\"b\"; let c = 'x'; let e = '\\n'; let l: &'static str = \"y\";";
        let toks = lex(src).expect("lexes");
        let kinds: Vec<TokenKind> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(kinds.iter().filter(|&&k| k == TokenKind::Str).count(), 2);
        assert_eq!(kinds.iter().filter(|&&k| k == TokenKind::Char).count(), 2);
        assert_eq!(kinds.iter().filter(|&&k| k == TokenKind::Lifetime).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes_and_newlines() {
        let src = "let x = r#\"line1\nline2 \"quoted\"\n\"#; let after = 1;";
        let toks = lex(src).expect("lexes");
        let after = toks.iter().find(|t| t.text == "after").expect("token after raw string");
        assert_eq!(after.line, 3, "newlines inside raw strings advance the line counter");
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(texts("a /* x /* y */ z */ b"), vec!["a", "b"]);
    }

    #[test]
    fn line_numbers_track() {
        let toks = lex("a\nb\n\nc").expect("lexes");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("let s = \"oops").is_err());
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn byte_literals() {
        let toks = lex("let a = b\"bytes\"; let c = b'x'; let r = br\"raw\";").expect("lexes");
        let kinds: Vec<TokenKind> =
            toks.iter().filter(|t| t.text.starts_with('b')).map(|t| t.kind).collect();
        assert!(kinds.contains(&TokenKind::Str));
        assert!(kinds.contains(&TokenKind::Char));
    }

    #[test]
    fn strip_cfg_test_mod() {
        let toks = lex("fn live() {} #[cfg(test)] mod tests { fn x() { y.unwrap(); } } fn more() {}")
            .expect("lexes");
        let kept = strip_test_code(&toks);
        let texts: Vec<&str> = kept.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"live"));
        assert!(texts.contains(&"more"));
        assert!(!texts.contains(&"unwrap"));
    }

    #[test]
    fn strip_test_fn_with_extra_attrs() {
        let toks = lex("#[test]\n#[ignore]\nfn t() { x.unwrap(); }\nfn keep() {}").expect("lexes");
        let kept = strip_test_code(&toks);
        let texts: Vec<&str> = kept.iter().map(|t| t.text.as_str()).collect();
        assert!(!texts.contains(&"unwrap"));
        assert!(texts.contains(&"keep"));
    }

    #[test]
    fn non_test_attrs_survive() {
        let toks = lex("#[derive(Debug)] struct S; #[cfg(feature = \"x\")] fn f() {}").expect("lexes");
        let kept = strip_test_code(&toks);
        let texts: Vec<&str> = kept.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"derive"));
        assert!(texts.contains(&"feature"));
    }
}
