//! `up2p-analyzer` — workspace static analysis for the invariants that
//! live *across* files and therefore evade per-crate unit tests:
//!
//! 1. **Stat conservation** — every `MsgKind` variant is emitted by every
//!    substrate that declares its message class, `MsgKind::ALL` stays in
//!    sync with the enum, and no substrate counts a kind outside the
//!    classes it declares (`rules::stats`).
//! 2. **Panic freedom** — no `unwrap()` / `expect()` / `panic!` /
//!    `unreachable!` in non-test code of the scanned crates, except sites
//!    allowlisted with a reason in `analyzer-allow.toml`
//!    (`rules::panic_free`).
//! 3. **Lock discipline** — nested guard acquisitions build a cross-file
//!    lock-order graph that must stay acyclic, and no guard may be held
//!    across a channel/network send (`rules::locks`).
//!
//! Everything is built on a hand-rolled lexer ([`lexer`]) and a
//! subset-of-TOML config reader ([`config`]) — the workspace takes no
//! external dependencies. The static pass is cross-validated at runtime
//! by the instrumented `parking_lot` shim, which records acquisition
//! order per thread in debug builds and panics on inversions.

pub mod config;
pub mod json;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

/// One diagnostic the pass emits. Findings are deny-by-default: any
/// finding makes `up2p-analyzer check` exit non-zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule family: `stat-conservation`, `panic-freedom`,
    /// `lock-discipline`, `lex`, or `config`.
    pub rule: &'static str,
    /// Workspace-relative file (`/`-separated on every platform).
    pub file: String,
    /// 1-based line, 0 when the finding has no specific line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}:{}: {}", self.rule, self.file, self.line, self.message)
    }
}

/// Fatal analyzer failure (unreadable config, I/O error) — distinct from
/// findings: findings mean "the code violates an invariant", an error
/// means "the pass could not run".
#[derive(Debug)]
pub struct AnalyzerError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AnalyzerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for AnalyzerError {}

/// A lexed source file with its workspace-relative path.
pub struct SourceFile {
    /// `/`-separated path relative to the analysis root.
    pub rel_path: String,
    /// Raw source lines (for allowlist pattern matching).
    pub lines: Vec<String>,
    /// Token stream with test-only items removed.
    pub code: Vec<lexer::Token>,
}

/// Loads and lexes one file, pushing a `lex` finding on tokenizer errors.
/// Returns `None` when the file cannot be read or lexed.
pub fn load_source(root: &Path, rel: &str, findings: &mut Vec<Finding>) -> Option<SourceFile> {
    let src = match std::fs::read_to_string(root.join(rel)) {
        Ok(s) => s,
        Err(e) => {
            findings.push(Finding {
                rule: "lex",
                file: rel.to_string(),
                line: 0,
                message: format!("cannot read file: {e}"),
            });
            return None;
        }
    };
    let tokens = match lexer::lex(&src) {
        Ok(t) => t,
        Err(e) => {
            findings.push(Finding {
                rule: "lex",
                file: rel.to_string(),
                line: e.line,
                message: format!("tokenizer error: {}", e.message),
            });
            return None;
        }
    };
    Some(SourceFile {
        rel_path: rel.to_string(),
        lines: src.lines().map(str::to_string).collect(),
        code: lexer::strip_test_code(&tokens),
    })
}

/// Path components that exclude a file from non-test rule scans.
const EXCLUDED_COMPONENTS: [&str; 5] = ["tests", "benches", "examples", "fixtures", "target"];

/// Collects the `.rs` files under `root/dir` that belong to shipped code:
/// inside a `src/` tree and outside `tests/`, `benches/`, `examples/`,
/// `fixtures/` and `target/`. Paths come back root-relative,
/// `/`-separated and sorted.
pub fn collect_src_files(root: &Path, dir: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![root.join(dir)];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                if let Some(rel) = rel_slash_path(root, &path) {
                    let comps: Vec<&str> = rel.split('/').collect();
                    if comps.contains(&"src")
                        && !comps.iter().any(|c| EXCLUDED_COMPONENTS.contains(c))
                    {
                        out.push(rel);
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Root-relative `/`-separated rendering of `path`, when under `root`.
pub fn rel_slash_path(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let parts: Vec<String> =
        rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    Some(parts.join("/"))
}

/// Runs every configured rule against the workspace at `root`, reading
/// `root/analyzer-allow.toml`. Findings come back sorted by (file, line,
/// rule, message) for deterministic output.
///
/// # Errors
///
/// Returns [`AnalyzerError`] when the configuration file is missing or
/// does not parse — a broken config must never look like a clean run.
pub fn run_check(root: &Path) -> Result<Vec<Finding>, AnalyzerError> {
    let config_path: PathBuf = root.join("analyzer-allow.toml");
    let src = std::fs::read_to_string(&config_path).map_err(|e| AnalyzerError {
        message: format!("cannot read {}: {e}", config_path.display()),
    })?;
    let cfg = config::parse_config(&src)
        .map_err(|e| AnalyzerError { message: e.to_string() })?;

    let mut findings = Vec::new();
    if let Some(stats) = &cfg.stats {
        rules::stats::check(root, stats, &mut findings);
    }
    if let Some(panic_cfg) = &cfg.panic {
        rules::panic_free::check(root, panic_cfg, &cfg.allow, &mut findings);
    }
    if let Some(locks) = &cfg.locks {
        rules::locks::check(root, locks, &mut findings);
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str())
            .cmp(&(b.file.as_str(), b.line, b.rule, b.message.as_str()))
    });
    Ok(findings)
}
