//! Property tests for the XSLT engine: the identity transform must
//! reproduce any tree, and sorting must agree with a reference sort.

use proptest::prelude::*;
use up2p_xml::ElementBuilder;
use up2p_xslt::Stylesheet;

const IDENTITY: &str = r#"<xsl:stylesheet version="1.0"
    xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="@*|node()">
    <xsl:copy><xsl:apply-templates select="@*|node()"/></xsl:copy>
  </xsl:template>
</xsl:stylesheet>"#;

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}"
}

fn text_strategy() -> impl Strategy<Value = String> {
    // printable, non-empty to avoid <a></a> vs <a/> ambiguity
    "[ -~&&[^<>&]]{1,20}"
}

fn tree_strategy() -> impl Strategy<Value = ElementBuilder> {
    let leaf = (name_strategy(), text_strategy())
        .prop_map(|(n, t)| ElementBuilder::new(n.as_str()).text(t));
    leaf.prop_recursive(3, 20, 4, |inner| {
        (
            name_strategy(),
            prop::collection::vec(("[a-z]{1,5}", "[a-z0-9 ]{0,10}"), 0..3),
            prop::collection::vec(inner, 1..4),
        )
            .prop_map(|(n, attrs, children)| {
                let mut b = ElementBuilder::new(n.as_str());
                let mut seen = std::collections::BTreeSet::new();
                for (k, v) in attrs {
                    if seen.insert(k.clone()) {
                        b = b.attr(k.as_str(), v);
                    }
                }
                for c in children {
                    b = b.child(c);
                }
                b
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The classic identity stylesheet reproduces any element tree
    /// exactly (modulo canonical serialization).
    #[test]
    fn identity_transform_reproduces_tree(tree in tree_strategy()) {
        let doc = tree.build();
        let sheet = Stylesheet::parse(IDENTITY).unwrap();
        let out = sheet.apply(&doc).unwrap();
        prop_assert_eq!(doc.to_xml_string(), out.to_xml_string());
    }

    /// `xsl:for-each` with `xsl:sort` agrees with a reference sort of the
    /// item string values.
    #[test]
    fn sort_agrees_with_reference(values in prop::collection::vec("[a-z]{1,8}", 1..12)) {
        let mut b = ElementBuilder::new("list");
        for v in &values {
            b = b.child_text("item", v.clone());
        }
        let doc = b.build();
        let sheet = Stylesheet::parse(r#"<xsl:stylesheet version="1.0"
            xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
          <xsl:output method="text"/>
          <xsl:template match="/">
            <xsl:for-each select="//item">
              <xsl:sort select="."/>
              <xsl:value-of select="."/><xsl:text>,</xsl:text>
            </xsl:for-each>
          </xsl:template>
        </xsl:stylesheet>"#).unwrap();
        let out = sheet.apply_to_string(&doc).unwrap();
        let mut expected = values.clone();
        expected.sort();
        let expected: String = expected.iter().map(|v| format!("{v},")).collect();
        prop_assert_eq!(out, expected);
    }

    /// `value-of select="//x"` equals the first matching node's text
    /// content, for arbitrary trees that contain a known marker.
    #[test]
    fn value_of_matches_text_content(tree in tree_strategy(), marker in "[a-z0-9 ]{1,12}") {
        let doc = ElementBuilder::new("root")
            .child(ElementBuilder::new("marker").text(marker.clone()))
            .child(tree)
            .build();
        let sheet = Stylesheet::parse(r#"<xsl:stylesheet version="1.0"
            xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
          <xsl:output method="text"/>
          <xsl:template match="/"><xsl:value-of select="//marker"/></xsl:template>
        </xsl:stylesheet>"#).unwrap();
        prop_assert_eq!(sheet.apply_to_string(&doc).unwrap(), marker);
    }

    /// The engine never panics on arbitrary stylesheet-shaped input.
    #[test]
    fn compiler_never_panics(s in "\\PC{0,200}") {
        let _ = Stylesheet::parse(&s);
    }
}
