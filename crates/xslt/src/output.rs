//! HTML output method (`xsl:output method="html"`).
//!
//! Differences from XML serialization that matter for browser-facing
//! output: void elements (`<br>`, `<input>`, ...) are written without a
//! closing tag, non-void empty elements keep an explicit closing tag
//! (`<div></div>`, never `<div/>`), and the contents of `<script>` and
//! `<style>` are not entity-escaped.

use up2p_xml::{escape_attr, escape_text, Document, NodeId, NodeKind};

/// HTML void elements per the HTML 4.01 / XHTML-era list the paper's
/// browser targets understood.
const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "hr", "img", "input", "link", "meta", "param",
];

/// Serializes a result tree using the HTML output method.
pub fn to_html(doc: &Document) -> String {
    let mut out = String::new();
    for &child in doc.children(doc.root()) {
        write_html(doc, child, &mut out, false);
    }
    out
}

fn write_html(doc: &Document, id: NodeId, out: &mut String, raw_text: bool) {
    match doc.kind(id) {
        NodeKind::Document => {
            for &c in doc.children(id) {
                write_html(doc, c, out, raw_text);
            }
        }
        NodeKind::Element { name, attributes } => {
            let lname = name.local().to_ascii_lowercase();
            out.push('<');
            out.push_str(&name.to_string());
            for a in attributes {
                out.push(' ');
                out.push_str(&a.name.to_string());
                out.push_str("=\"");
                out.push_str(&escape_attr(&a.value));
                out.push('"');
            }
            out.push('>');
            if VOID_ELEMENTS.contains(&lname.as_str()) {
                return; // no closing tag, children ignored
            }
            let raw = matches!(lname.as_str(), "script" | "style");
            for &c in doc.children(id) {
                write_html(doc, c, out, raw);
            }
            out.push_str("</");
            out.push_str(&name.to_string());
            out.push('>');
        }
        NodeKind::Text(t) => {
            if raw_text {
                out.push_str(t);
            } else {
                out.push_str(&escape_text(t));
            }
        }
        NodeKind::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        NodeKind::ProcessingInstruction { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use up2p_xml::ElementBuilder;

    #[test]
    fn void_elements_have_no_close_tag() {
        let doc = ElementBuilder::new("p")
            .text("a")
            .child(ElementBuilder::new("br"))
            .text("b")
            .build();
        assert_eq!(to_html(&doc), "<p>a<br>b</p>");
    }

    #[test]
    fn empty_non_void_elements_keep_close_tag() {
        let doc = ElementBuilder::new("div").build();
        assert_eq!(to_html(&doc), "<div></div>");
    }

    #[test]
    fn script_content_not_escaped() {
        let doc = ElementBuilder::new("script").text("if (a < b && c > d) {}").build();
        assert_eq!(to_html(&doc), "<script>if (a < b && c > d) {}</script>");
    }

    #[test]
    fn regular_text_is_escaped() {
        let doc = ElementBuilder::new("p").text("a < b").build();
        assert_eq!(to_html(&doc), "<p>a &lt; b</p>");
    }

    #[test]
    fn attributes_escaped() {
        let doc = ElementBuilder::new("input").attr("value", "say \"hi\"").build();
        assert_eq!(to_html(&doc), r#"<input value="say &quot;hi&quot;">"#);
    }
}
