//! Error type for stylesheet compilation and transformation.

use std::fmt;

/// Error produced while compiling or applying a stylesheet.
#[derive(Debug, Clone, PartialEq)]
pub struct XsltError {
    message: String,
}

impl XsltError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        XsltError { message: message.into() }
    }

    /// Human-readable description of the failure.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for XsltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xslt error: {}", self.message)
    }
}

impl std::error::Error for XsltError {}

impl From<up2p_xml::XPathError> for XsltError {
    fn from(e: up2p_xml::XPathError) -> Self {
        XsltError::new(e.to_string())
    }
}

impl From<up2p_xml::ParseXmlError> for XsltError {
    fn from(e: up2p_xml::ParseXmlError) -> Self {
        XsltError::new(format!("invalid stylesheet XML: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_prefixed() {
        assert_eq!(XsltError::new("boom").to_string(), "xslt error: boom");
    }

    #[test]
    fn converts_from_xpath_error() {
        let xe = up2p_xml::XPath::parse("|||").unwrap_err();
        let e: XsltError = xe.into();
        assert!(e.message().contains("xpath"));
    }
}
