//! # up2p-xslt
//!
//! XSLT 1.0 subset engine for the U-P2P reproduction — the Xalan role in
//! the paper's stack. U-P2P's generative pipeline (Fig. 2 of the paper)
//! turns a community's XML Schema into create/search/view HTML interfaces
//! by applying XSLT stylesheets; this crate executes those stylesheets.
//!
//! ```
//! use up2p_xslt::Stylesheet;
//! use up2p_xml::Document;
//!
//! let sheet = Stylesheet::parse(r#"
//!   <xsl:stylesheet version="1.0"
//!       xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
//!     <xsl:output method="html"/>
//!     <xsl:template match="/">
//!       <ul><xsl:apply-templates select="//name"/></ul>
//!     </xsl:template>
//!     <xsl:template match="name"><li><xsl:value-of select="."/></li></xsl:template>
//!   </xsl:stylesheet>"#)?;
//!
//! let src = Document::parse("<c><name>mp3</name><name>cml</name></c>")?;
//! assert_eq!(sheet.apply_to_string(&src)?, "<ul><li>mp3</li><li>cml</li></ul>");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod compiler;
mod engine;
mod error;
mod output;
mod pattern;

pub use compiler::{
    Avt, AvtPart, Instruction, OutputMethod, ParamBinding, SortSpec, Stylesheet, Template,
};
pub use error::XsltError;
pub use output::to_html;
pub use pattern::Pattern;
